//! Cache-blocked, register-tiled, multi-threaded single-precision GEMM.
//!
//! `C += op(A) · op(B)` in the classic three-level blocking scheme
//! (BLIS/GotoBLAS): the depth dimension is split into [`KC`] panels, B
//! panels are packed into contiguous `NR`-column strips and A blocks into
//! `MR`-row strips, and an `MR x NR` microkernel accumulates a C tile in
//! registers across the whole depth panel with a dense inner loop — no
//! per-element zero-skip branch, one C load/store per tile per depth panel
//! instead of one per scalar multiply.
//!
//! The microkernel is picked once at runtime: an AVX-512 14x16 kernel when
//! the CPU reports `avx512f` (one zmm B load plus fourteen
//! embedded-broadcast FMAs per depth step), else an AVX2+FMA 6x16 kernel
//! (two 8-lane FMAs per row per depth step), otherwise a portable 4x8
//! kernel that LLVM auto-vectorises for the baseline target. Transposed operands are handled by the packing
//! routines reading through `(row, col)` strides, so backward passes
//! (`dA = dC·Bᵀ`, `dB = Aᵀ·dC`) never materialise a transposed copy.
//!
//! Large products are sharded across [`super::pool`]: disjoint row (or
//! column) stripes of C go to different threads, each running the full
//! blocked loop on its stripe. Packing buffers are reused per thread via
//! [`super::scratch`].

use std::sync::OnceLock;

use super::config::{configured_threads, KC, MC, NC, PAR_FLOP_THRESHOLD};
use super::pool::parallel_for;
use super::scratch;

/// Whether an operand participates as stored (`N`) or transposed (`T`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trans {
    /// Use the matrix as stored (row-major `rows x cols`).
    N,
    /// Use the transpose of the stored matrix.
    T,
}

/// Row-major view of `op(X)` as `rows x cols` over stored data: element
/// `(r, c)` lives at `r*rs + c*cs`. Shared with the f16-storage GEMM in
/// [`super::f16`].
#[derive(Clone, Copy)]
pub(crate) struct View {
    pub(crate) rs: usize,
    pub(crate) cs: usize,
}

impl View {
    /// View of `op(X)` with logical shape `rows x cols`; when `trans` is
    /// `T` the storage holds `cols x rows` row-major.
    pub(crate) fn new(trans: Trans, rows: usize, cols: usize) -> View {
        match trans {
            Trans::N => View { rs: cols, cs: 1 },
            Trans::T => View { rs: 1, cs: rows },
        }
    }

    #[inline]
    pub(crate) fn at(&self, r: usize, c: usize) -> usize {
        r * self.rs + c * self.cs
    }
}

/// Upper bound on `MR * NR` across microkernels (accumulator staging).
const ACC_MAX: usize = 14 * 16;

/// One register microkernel: computes `acc[mr][nr] = Astrip · Bstrip` over
/// a packed depth panel of `kc` (A strip interleaved `kc x mr`, B strip
/// `kc x nr`, acc row-major with stride `nr`).
///
/// Safety contract: `astrip` holds `kc*mr` readable floats, `bstrip`
/// `kc*nr`, `acc` `mr*nr` writable floats, and the CPU supports the
/// kernel's ISA.
#[derive(Clone, Copy)]
struct Micro {
    name: &'static str,
    mr: usize,
    nr: usize,
    kernel: unsafe fn(kc: usize, astrip: *const f32, bstrip: *const f32, acc: *mut f32),
}

/// Portable 4x8 kernel; fixed bounds keep the accumulator tile in
/// registers and let LLVM vectorise for whatever the build target offers.
// SAFETY: unsafe fn — callers uphold the `Micro::kernel` contract (packed
// strip and accumulator sizes); no ISA requirement beyond the build target.
unsafe fn micro_portable_4x8(kc: usize, astrip: *const f32, bstrip: *const f32, acc: *mut f32) { // analysis: hot
    const MR: usize = 4;
    const NR: usize = 8;
    let mut tile = [[0.0f32; NR]; MR];
    for p in 0..kc {
        // SAFETY: the contract guarantees kc strips of MR / NR floats each.
        let a = unsafe { std::slice::from_raw_parts(astrip.add(p * MR), MR) };
        let b = unsafe { std::slice::from_raw_parts(bstrip.add(p * NR), NR) };
        for (r, row) in tile.iter_mut().enumerate() {
            let av = a[r];
            for (j, slot) in row.iter_mut().enumerate() {
                *slot += av * b[j];
            }
        }
    }
    for (r, row) in tile.iter().enumerate() {
        // SAFETY: acc holds MR*NR writable floats per the kernel contract.
        unsafe { std::ptr::copy_nonoverlapping(row.as_ptr(), acc.add(r * NR), NR) };
    }
}

/// AVX2+FMA 6x16 kernel: 12 ymm accumulators, two B loads and six
/// broadcast-FMAs per depth step (~2 FMA issues per cycle on one core).
#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
#[target_feature(enable = "avx2,fma")]
// SAFETY: unsafe fn — `Micro::kernel` contract plus a CPU with avx2+fma;
// detect_micro only selects this kernel after checking the feature bits.
unsafe fn micro_avx2_6x16(kc: usize, astrip: *const f32, bstrip: *const f32, acc: *mut f32) { // analysis: hot
    #[cfg(target_arch = "x86")]
    use std::arch::x86::*;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;
    const MR: usize = 6;
    // SAFETY: every load/store indexes below kc*16 (B), kc*MR (A) or 6*16
    // (acc), all guaranteed by the kernel contract; ISA is checked above.
    unsafe {
        let mut tile = [[_mm256_setzero_ps(); 2]; MR];
        for p in 0..kc {
            let b0 = _mm256_loadu_ps(bstrip.add(p * 16));
            let b1 = _mm256_loadu_ps(bstrip.add(p * 16 + 8));
            for (r, row) in tile.iter_mut().enumerate() {
                let av = _mm256_set1_ps(*astrip.add(p * MR + r));
                row[0] = _mm256_fmadd_ps(av, b0, row[0]);
                row[1] = _mm256_fmadd_ps(av, b1, row[1]);
            }
        }
        for (r, row) in tile.iter().enumerate() {
            _mm256_storeu_ps(acc.add(r * 16), row[0]);
            _mm256_storeu_ps(acc.add(r * 16 + 8), row[1]);
        }
    }
}

/// AVX-512 14x16 kernel: fourteen zmm accumulators fed by one B load per
/// depth step; each broadcast folds into its FMA as an embedded-broadcast
/// memory operand, so the inner loop issues ~15 instructions for fourteen
/// 512-bit FMAs. The tall 14-row tile keeps `nr` at 16 columns, matching
/// the AVX2 kernel's padding waste on narrow conv GEMMs while doubling
/// per-instruction width on the tall im2col products batching produces.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
// SAFETY: unsafe fn — `Micro::kernel` contract plus a CPU with avx512f;
// detect_micro only selects this kernel after checking the feature bit.
unsafe fn micro_avx512_14x16(kc: usize, astrip: *const f32, bstrip: *const f32, acc: *mut f32) { // analysis: hot
    use std::arch::x86_64::*;
    const MR: usize = 14;
    // SAFETY: every load/store indexes below kc*16 (B), kc*MR (A) or MR*16
    // (acc), all guaranteed by the kernel contract; ISA is checked above.
    unsafe {
        let mut tile = [_mm512_setzero_ps(); MR];
        for p in 0..kc {
            let b0 = _mm512_loadu_ps(bstrip.add(p * 16));
            for (r, slot) in tile.iter_mut().enumerate() {
                let av = _mm512_set1_ps(*astrip.add(p * MR + r));
                *slot = _mm512_fmadd_ps(av, b0, *slot);
            }
        }
        for (r, slot) in tile.iter().enumerate() {
            _mm512_storeu_ps(acc.add(r * 16), *slot);
        }
    }
}

fn detect_micro() -> Micro {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            return Micro { name: "avx512f_14x16", mr: 14, nr: 16, kernel: micro_avx512_14x16 };
        }
    }
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return Micro { name: "avx2_fma_6x16", mr: 6, nr: 16, kernel: micro_avx2_6x16 };
        }
    }
    Micro { name: "portable_4x8", mr: 4, nr: 8, kernel: micro_portable_4x8 }
}

fn active_micro() -> Micro {
    static MICRO: OnceLock<Micro> = OnceLock::new();
    *MICRO.get_or_init(detect_micro)
}

/// `(name, mr, nr)` of the microkernel selected for this CPU (recorded in
/// bench artifacts by [`super::KernelConfig`]).
pub fn microkernel_info() -> (&'static str, usize, usize) {
    let micro = active_micro();
    (micro.name, micro.mr, micro.nr)
}

/// Reference implementation: the seed repo's scalar `ikj` GEMM with the
/// per-element zero-skip branch, kept as the parity baseline for tests and
/// the naive side of `kernel_bench`.
pub fn gemm_naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
}

/// Pack the `mc x kc` block of `op(A)` starting at `(i0, p0)` into
/// `mr`-row strips: strip `ir` holds `panel[(ir*kc + p)*mr + r]`,
/// zero-padded past `mc`.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    panel: &mut [f32],
    mr: usize,
    a: &[f32],
    view: View,
    i0: usize,
    mc: usize,
    p0: usize,
    kc: usize,
) {
    let strips = mc.div_ceil(mr);
    debug_assert!(panel.len() >= strips * kc * mr);
    for ir in 0..strips {
        let row0 = ir * mr;
        let full = (mc - row0).min(mr);
        let strip = &mut panel[ir * kc * mr..(ir * kc + kc) * mr];
        for p in 0..kc {
            let dst = &mut strip[p * mr..p * mr + mr];
            let base = view.at(i0 + row0, p0 + p);
            for (r, d) in dst.iter_mut().enumerate() {
                *d = if r < full { a[base + r * view.rs] } else { 0.0 };
            }
        }
    }
}

/// Pack the `kc x nc` block of `op(B)` starting at `(p0, j0)` into
/// `nr`-column strips: strip `jr` holds `panel[(jr*kc + p)*nr + j]`,
/// zero-padded past `nc`.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    panel: &mut [f32],
    nr: usize,
    b: &[f32],
    view: View,
    p0: usize,
    kc: usize,
    j0: usize,
    nc: usize,
) {
    let strips = nc.div_ceil(nr);
    debug_assert!(panel.len() >= strips * kc * nr);
    for jr in 0..strips {
        let col0 = jr * nr;
        let full = (nc - col0).min(nr);
        let strip = &mut panel[jr * kc * nr..(jr * kc + kc) * nr];
        for p in 0..kc {
            let dst = &mut strip[p * nr..p * nr + nr];
            let base = view.at(p0 + p, j0 + col0);
            for (j, d) in dst.iter_mut().enumerate() {
                *d = if j < full { b[base + j * view.cs] } else { 0.0 };
            }
        }
    }
}

/// Run the full blocked loop for one C stripe: rows `i0..i0+ms`, columns
/// `j0..j0+ns` of the logical `m x n` product, writing into row-major `c`
/// with leading dimension `ldc`.
#[allow(clippy::too_many_arguments)]
fn gemm_stripe(
    micro: Micro,
    k: usize,
    a: &[f32],
    av: View,
    b: &[f32],
    bv: View,
    c: *mut f32,
    ldc: usize,
    i0: usize,
    ms: usize,
    j0: usize,
    ns: usize,
) {
    let (mr, nr) = (micro.mr, micro.nr);
    // The packing routines fully write every strip the microkernel reads,
    // so the panels can start dirty — zeroing them each call would cost
    // more than the small GEMMs the U-Net issues.
    let mut apanel = scratch::take_dirty(MC.div_ceil(mr) * KC * mr);
    let mut bpanel = scratch::take_dirty(NC.div_ceil(nr) * KC * nr);
    let mut acc = [0.0f32; ACC_MAX];
    for jc in (0..ns).step_by(NC) {
        let nc = (ns - jc).min(NC);
        for pc in (0..k).step_by(KC) {
            let kc = (k - pc).min(KC);
            pack_b(&mut bpanel, nr, b, bv, pc, kc, j0 + jc, nc);
            for ic in (0..ms).step_by(MC) {
                let mc = (ms - ic).min(MC);
                pack_a(&mut apanel, mr, a, av, i0 + ic, mc, pc, kc);
                for jr in 0..nc.div_ceil(nr) {
                    let bstrip = &bpanel[jr * kc * nr..(jr * kc + kc) * nr];
                    let ncols = (nc - jr * nr).min(nr);
                    for ir in 0..mc.div_ceil(mr) {
                        let astrip = &apanel[ir * kc * mr..(ir * kc + kc) * mr];
                        let nrows = (mc - ir * mr).min(mr);
                        // SAFETY: strips hold kc*mr / kc*nr packed floats,
                        // acc is ACC_MAX >= mr*nr, ISA checked at detection.
                        unsafe {
                            (micro.kernel)(kc, astrip.as_ptr(), bstrip.as_ptr(), acc.as_mut_ptr());
                        }
                        let crow0 = i0 + ic + ir * mr;
                        let ccol0 = j0 + jc + jr * nr;
                        for r in 0..nrows {
                            let accrow = &acc[r * nr..r * nr + ncols];
                            // SAFETY: disjoint stripe of C owned by this
                            // call; the row/col offsets stay inside it.
                            let dst = unsafe {
                                std::slice::from_raw_parts_mut(
                                    c.add((crow0 + r) * ldc + ccol0),
                                    ncols,
                                )
                            };
                            for (d, &v) in dst.iter_mut().zip(accrow) {
                                *d += v;
                            }
                        }
                    }
                }
            }
        }
    }
    scratch::put(bpanel);
    scratch::put(apanel);
}

/// Blocked, threaded GEMM: `C += op(A) · op(B)` where `op(A)` is `m x k`
/// and `op(B)` is `k x n`, all row-major, with the configured thread
/// budget ([`configured_threads`]).
///
/// # Panics
///
/// Panics if a slice length does not match its operand shape.
#[allow(clippy::too_many_arguments)]
pub fn sgemm(
    ta: Trans,
    tb: Trans,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    sgemm_with_threads(configured_threads(), ta, tb, m, k, n, a, b, c);
}

/// [`sgemm`] with an explicit thread budget (1 forces the single-threaded
/// blocked path; parity tests and benches sweep this).
///
/// # Panics
///
/// Panics if a slice length does not match its operand shape.
#[allow(clippy::too_many_arguments)]
pub fn sgemm_with_threads(
    threads: usize,
    ta: Trans,
    tb: Trans,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "A length must be m*k");
    assert_eq!(b.len(), k * n, "B length must be k*n");
    assert_eq!(c.len(), m * n, "C length must be m*n");
    if m == 0 || n == 0 || k == 0 {
        return; // C += 0 contribution
    }
    let micro = active_micro();
    let av = View::new(ta, m, k);
    let bv = View::new(tb, k, n);
    let flops = 2usize.saturating_mul(m).saturating_mul(k).saturating_mul(n);
    let budget = threads.max(1);
    // Shard the larger C axis; every stripe must be big enough to amortise
    // its redundant packing of the shared operand.
    let shards = if flops < PAR_FLOP_THRESHOLD || budget == 1 {
        1
    } else {
        budget
            .min(if m >= n { m.div_ceil(micro.mr) } else { n.div_ceil(micro.nr) })
            .max(1)
    };
    if shards == 1 {
        gemm_stripe(micro, k, a, av, b, bv, c.as_mut_ptr(), n, 0, m, 0, n);
        return;
    }
    let cptr = c.as_mut_ptr() as usize;
    if m >= n {
        // Row stripes, aligned to mr so no two shards share a C row.
        let rows_per = m.div_ceil(shards).div_ceil(micro.mr) * micro.mr;
        let tasks = m.div_ceil(rows_per);
        parallel_for(tasks, &|t| {
            let i0 = t * rows_per;
            let ms = (m - i0).min(rows_per);
            gemm_stripe(micro, k, a, av, b, bv, cptr as *mut f32, n, i0, ms, 0, n);
        });
    } else {
        // Column stripes, aligned to nr.
        let cols_per = n.div_ceil(shards).div_ceil(micro.nr) * micro.nr;
        let tasks = n.div_ceil(cols_per);
        parallel_for(tasks, &|t| {
            let j0 = t * cols_per;
            let ns = (n - j0).min(cols_per);
            gemm_stripe(micro, k, a, av, b, bv, cptr as *mut f32, n, 0, m, j0, ns);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(
        ta: Trans,
        tb: Trans,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
    ) -> Vec<f32> {
        let av = View::new(ta, m, k);
        let bv = View::new(tb, k, n);
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut dot = 0.0f32;
                for p in 0..k {
                    dot += a[av.at(i, p)] * b[bv.at(p, j)];
                }
                c[i * n + j] = dot;
            }
        }
        c
    }

    fn pattern(len: usize, seed: f32) -> Vec<f32> {
        (0..len).map(|i| (i as f32 * 0.37 + seed).sin() * 2.0).collect()
    }

    fn assert_close(got: &[f32], want: &[f32], what: &str) {
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            let rel = (g - w).abs() / (1.0 + w.abs());
            assert!(rel < 1e-4, "{what}[{i}]: got {g}, want {w}");
        }
    }

    #[test]
    fn matches_reference_across_trans_combinations() {
        let (m, k, n) = (13, 21, 17);
        for ta in [Trans::N, Trans::T] {
            for tb in [Trans::N, Trans::T] {
                let a = pattern(m * k, 1.0);
                let b = pattern(k * n, 2.0);
                let want = reference(ta, tb, m, k, n, &a, &b);
                let mut c = vec![0.0f32; m * n];
                sgemm_with_threads(1, ta, tb, m, k, n, &a, &b, &mut c);
                assert_close(&c, &want, "st");
                let mut ct = vec![0.0f32; m * n];
                sgemm_with_threads(3, ta, tb, m, k, n, &a, &b, &mut ct);
                assert_close(&ct, &want, "mt");
            }
        }
    }

    #[test]
    fn accumulates_into_existing_c() {
        let (m, k, n) = (5, 4, 6);
        let a = pattern(m * k, 0.1);
        let b = pattern(k * n, 0.2);
        let init = pattern(m * n, 0.3);
        let mut want = init.clone();
        gemm_naive(m, k, n, &a, &b, &mut want);
        let mut c = init.clone();
        sgemm(Trans::N, Trans::N, m, k, n, &a, &b, &mut c);
        assert_close(&c, &want, "accumulate");
    }

    #[test]
    fn spans_block_boundaries() {
        // Larger than MC/KC in at least one axis to cross packing edges.
        let (m, k, n) = (MC + 7, KC + 3, 37);
        let a = pattern(m * k, 0.7);
        let b = pattern(k * n, 0.9);
        let want = reference(Trans::N, Trans::N, m, k, n, &a, &b);
        let mut c = vec![0.0f32; m * n];
        sgemm_with_threads(2, Trans::N, Trans::N, m, k, n, &a, &b, &mut c);
        // fp association differs from the reference order; loose bound
        for (i, (g, w)) in c.iter().zip(&want).enumerate() {
            let rel = (g - w).abs() / (1.0 + w.abs());
            assert!(rel < 1e-3, "c[{i}]: got {g}, want {w}");
        }
    }

    #[test]
    fn degenerate_shapes_are_noops_or_tiny() {
        let a: Vec<f32> = vec![];
        let b: Vec<f32> = vec![];
        let mut c = vec![1.0f32, 2.0];
        sgemm(Trans::N, Trans::N, 2, 0, 1, &a, &b, &mut c);
        assert_eq!(c, vec![1.0, 2.0], "k=0 leaves C unchanged");
        let mut c1 = vec![0.0f32];
        sgemm(Trans::N, Trans::N, 1, 1, 1, &[3.0], &[4.0], &mut c1);
        assert_eq!(c1, vec![12.0]);
    }

    #[test]
    fn microkernel_info_is_coherent() {
        let (name, mr, nr) = microkernel_info();
        assert!(!name.is_empty());
        assert!(mr * nr <= ACC_MAX);
    }
}
