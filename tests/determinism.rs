//! Reproducibility: every stage of the experiment pipeline must be
//! bit-deterministic given its seeds, or the EXPERIMENTS.md numbers
//! could not be regenerated.

use dcdiff::baselines::{DcRecovery, Icip2022, SmartCom2019};
use dcdiff::core::{refine_dc_offsets, DcDiff, DcDiffConfig, RecoverOptions, TrainBudget};
use dcdiff::data::{AerialDataset, DatasetProfile, SceneGenerator, SceneKind};
use dcdiff::jpeg::{encode_coefficients, ChromaSampling, CoeffImage, DcDropMode};
use dcdiff::metrics::{psnr, PerceptualDistance};

#[test]
fn scene_generation_is_bit_deterministic() {
    for kind in [SceneKind::Natural, SceneKind::Urban, SceneKind::Aerial] {
        let a = SceneGenerator::new(kind, 64, 48).generate(123);
        let b = SceneGenerator::new(kind, 64, 48).generate(123);
        for c in 0..3 {
            assert_eq!(a.plane(c).as_slice(), b.plane(c).as_slice(), "{kind:?}");
        }
    }
    let p1 = DatasetProfile::kodak().generate(7);
    let p2 = DatasetProfile::kodak().generate(7);
    assert_eq!(p1.len(), p2.len());
    assert_eq!(p1[3].plane(0).as_slice(), p2[3].plane(0).as_slice());
    let d1 = AerialDataset::new(32, 2).generate(9);
    let d2 = AerialDataset::new(32, 2).generate(9);
    assert_eq!(d1[5].0.plane(1).as_slice(), d2[5].0.plane(1).as_slice());
}

#[test]
fn coding_and_recovery_are_deterministic() {
    let image = SceneGenerator::new(SceneKind::Natural, 64, 64).generate(5);
    let run = || {
        let coeffs = CoeffImage::from_image(&image, 50, ChromaSampling::Cs444);
        let dropped = coeffs.drop_dc(DcDropMode::KeepCorners);
        let bytes = encode_coefficients(&dropped).expect("encodable");
        let smart = SmartCom2019::new().recover(&dropped);
        let icip = Icip2022::new().recover(&dropped);
        let refined = refine_dc_offsets(&dropped, &dropped, 10.0, 5e-4, 100).to_image();
        (bytes, smart, icip, refined)
    };
    let (b1, s1, i1, r1) = run();
    let (b2, s2, i2, r2) = run();
    assert_eq!(b1, b2, "bitstream");
    assert_eq!(s1.plane(0).as_slice(), s2.plane(0).as_slice(), "smartcom");
    assert_eq!(i1.plane(0).as_slice(), i2.plane(0).as_slice(), "icip");
    assert_eq!(r1.plane(0).as_slice(), r2.plane(0).as_slice(), "refine");
}

#[test]
fn metrics_are_deterministic() {
    let a = SceneGenerator::new(SceneKind::Texture, 48, 48).generate(1);
    let b = SceneGenerator::new(SceneKind::Texture, 48, 48).generate(2);
    let p1 = psnr(&a, &b);
    let p2 = psnr(&a, &b);
    assert_eq!(p1, p2);
    let m = PerceptualDistance::default();
    assert_eq!(m.distance(&a, &b), m.distance(&a, &b));
}

#[test]
fn training_is_deterministic_given_seeds() {
    let config = DcDiffConfig {
        stage1_base: 8,
        latent_channels: 4,
        unet_base: 8,
        diffusion_steps: 20,
        ddim_steps: 3,
        ..DcDiffConfig::default()
    };
    let budget = TrainBudget {
        stage1_steps: 6,
        ldm_steps: 6,
        mld_steps: 2,
        fmpp_steps: 2,
        batch: 1,
    };
    let corpus = DatasetProfile::set5().with_dims(32, 32).generate(3);
    let train_once = || {
        let mut system = DcDiff::new(config.clone(), 42);
        let report = system.train(&corpus, budget, 77);
        (system, report)
    };
    let (sys1, rep1) = train_once();
    let (sys2, rep2) = train_once();
    assert_eq!(rep1.stage1_losses, rep2.stage1_losses, "stage-1 trajectory");
    assert_eq!(rep1.ldm_losses, rep2.ldm_losses, "stage-2 trajectory");
    assert_eq!(rep1.latent_scale, rep2.latent_scale);

    let image = SceneGenerator::new(SceneKind::Smooth, 32, 32).generate(8);
    let coeffs = CoeffImage::from_image(&image, 50, ChromaSampling::Cs444);
    let dropped = coeffs.drop_dc(DcDropMode::KeepCorners);
    let mut opts = RecoverOptions::from_config(&config);
    opts.ddim_steps = 3;
    let out1 = sys1.recover_with(&dropped, &opts);
    let out2 = sys2.recover_with(&dropped, &opts);
    assert_eq!(
        out1.plane(0).as_slice(),
        out2.plane(0).as_slice(),
        "end-to-end recovery"
    );
}
