//! The job model: what the runtime executes, and how outcomes are reported.
//!
//! A [`Job`] describes one unit of pipeline work over files on disk, mirroring
//! the `dcdiff` CLI sub-commands one-to-one so a manifest line and a CLI
//! invocation mean the same thing. A [`JobSpec`] adds the serving metadata —
//! deadline and retry budget — and the runtime stamps each accepted spec with
//! a stable [`JobId`].

use std::time::Duration;

use dcdiff_jpeg::ChromaSampling;

/// Stable identifier assigned at submission, unique per runtime instance.
pub type JobId = u64;

/// DC-recovery method selection, mirroring `dcdiff recover --method`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecoverMethod {
    /// Ahmed et al., TIP 2006 — gradient-based propagation.
    Tip2006,
    /// SmartCom 2019 — smoothness-driven estimation.
    SmartCom,
    /// ICIP 2022 — iterative sweep refinement.
    Icip,
    /// Masked-Laplacian refinement (the training-free DCDiff receiver core).
    Mld {
        /// Eq. 3 high-frequency mask threshold.
        threshold: f32,
        /// Number of refinement sweeps.
        sweeps: usize,
    },
    /// The diffusion estimator itself (`dcdiff_core::DcDiff`): latent DDIM
    /// sampling conditioned on FMPP features, then DC projection. The step
    /// count trades latency for fidelity and keys micro-batching — only
    /// identical step counts share a batch.
    Diffusion {
        /// DDIM steps per recovery (1..=the schedule's training steps).
        ddim_steps: usize,
    },
}

impl RecoverMethod {
    /// Manifest/CLI spelling of the method.
    pub fn name(&self) -> &'static str {
        match self {
            RecoverMethod::Tip2006 => "tip2006",
            RecoverMethod::SmartCom => "smartcom",
            RecoverMethod::Icip => "icip",
            RecoverMethod::Mld { .. } => "mld",
            RecoverMethod::Diffusion { .. } => "diffusion",
        }
    }

    /// Whether two selections share the same engine configuration, i.e. can
    /// be served by the same micro-batch without changing results.
    pub fn same_config(&self, other: &RecoverMethod) -> bool {
        self == other
    }
}

/// Encoder options shared by [`Job::Encode`] and [`Job::Transcode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CodingOpts {
    /// Zero DC coefficients (keeping corner anchors) before entropy coding.
    pub drop_dc: bool,
    /// Two-pass Huffman table optimisation.
    pub optimize: bool,
    /// Restart-marker interval in MCUs (0 = none).
    pub restart: usize,
}

/// One unit of pipeline work. Inputs and outputs are file paths, exactly as
/// the CLI sub-commands take them.
#[derive(Debug, Clone, PartialEq)]
pub enum Job {
    /// `dcdiff encode`: PPM/PGM in, JPEG out.
    Encode {
        /// Source image path (`.ppm`/`.pgm`).
        input: String,
        /// Destination JPEG path.
        output: String,
        /// JPEG quality 1..=100.
        quality: u8,
        /// Chroma subsampling mode.
        sampling: ChromaSampling,
        /// Entropy-coding options.
        opts: CodingOpts,
    },
    /// `dcdiff transcode`: lossless bitstream surgery, optionally DC-dropping.
    Transcode {
        /// Source JPEG path.
        input: String,
        /// Destination JPEG path.
        output: String,
        /// Entropy-coding options.
        opts: CodingOpts,
    },
    /// `dcdiff recover`: estimate dropped DC coefficients, write pixels.
    Recover {
        /// Source JPEG path (DC-dropped).
        input: String,
        /// Destination image path (`.ppm`/`.pgm`).
        output: String,
        /// Recovery method.
        method: RecoverMethod,
    },
    /// `dcdiff metrics`: compare two images.
    Metrics {
        /// Reference image path.
        reference: String,
        /// Test image path.
        test: String,
    },
}

impl Job {
    /// Short stage name used for per-stage accounting.
    pub fn stage(&self) -> Stage {
        match self {
            Job::Encode { .. } => Stage::Encode,
            Job::Transcode { .. } => Stage::Transcode,
            Job::Recover { .. } => Stage::Recover,
            Job::Metrics { .. } => Stage::Metrics,
        }
    }

    /// The recovery method when this is a [`Job::Recover`].
    pub fn recover_method(&self) -> Option<&RecoverMethod> {
        match self {
            Job::Recover { method, .. } => Some(method),
            _ => None,
        }
    }
}

/// Pipeline stage of a job, used as the per-stage counter index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// JPEG encoding.
    Encode,
    /// Bitstream transcode.
    Transcode,
    /// DC recovery.
    Recover,
    /// Quality metrics.
    Metrics,
}

impl Stage {
    /// All stages, in counter order.
    pub const ALL: [Stage; 4] = [Stage::Encode, Stage::Transcode, Stage::Recover, Stage::Metrics];

    /// Stable index into per-stage counter arrays.
    pub fn index(self) -> usize {
        match self {
            Stage::Encode => 0,
            Stage::Transcode => 1,
            Stage::Recover => 2,
            Stage::Metrics => 3,
        }
    }

    /// Lower-case stage name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Encode => "encode",
            Stage::Transcode => "transcode",
            Stage::Recover => "recover",
            Stage::Metrics => "metrics",
        }
    }
}

/// A job plus its serving contract.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// The work to perform.
    pub job: Job,
    /// Relative deadline, measured from submission. A job still queued (or
    /// retried) past its deadline fails with [`JobFailure::DeadlineExceeded`]
    /// instead of executing; execution already in flight is not preempted.
    pub deadline: Option<Duration>,
    /// How many times a *transient* failure may be retried.
    pub max_retries: u32,
    /// Simulated sender-link stall served before execution. DCDiff's sender
    /// is a low-power IoT device, so a receiver worker blocks this long — as
    /// if waiting on the device's uplink — before the job's bytes are
    /// available. Stalls on different workers overlap, which is what makes
    /// multi-worker serving pay off even for cheap jobs; used by the runtime
    /// benchmark and `--ingest-ms` manifest lines.
    pub ingest: Option<Duration>,
    /// Request-scoped trace context carried from the submitter (e.g. the
    /// serve front door's `traceparent`) across the queue to the worker
    /// thread, where it is re-installed so every span the job emits —
    /// queue wait, batch exec, recovery phases, DDIM steps — carries the
    /// request's trace id.
    pub trace: Option<dcdiff_telemetry::TraceCtx>,
}

impl JobSpec {
    /// Spec with no deadline, no retries, no ingest stall, no trace context.
    pub fn new(job: Job) -> Self {
        JobSpec { job, deadline: None, max_retries: 0, ingest: None, trace: None }
    }

    /// Set the relative deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Set the transient-failure retry budget.
    #[must_use]
    pub fn with_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Set the simulated sender-link ingest stall.
    #[must_use]
    pub fn with_ingest(mut self, ingest: Duration) -> Self {
        self.ingest = Some(ingest);
        self
    }

    /// Attach the submitting request's trace context.
    #[must_use]
    pub fn with_trace(mut self, trace: dcdiff_telemetry::TraceCtx) -> Self {
        self.trace = Some(trace);
        self
    }
}

impl From<Job> for JobSpec {
    fn from(job: Job) -> Self {
        JobSpec::new(job)
    }
}

/// Whether a failure is worth retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// Environmental hiccup (interrupted I/O, timeouts); retry may succeed.
    Transient,
    /// Deterministic failure (missing file, malformed stream, bad config);
    /// retrying cannot help.
    Permanent,
}

/// An execution error with its retry classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// Retry classification.
    pub class: ErrorClass,
    /// Human-readable description.
    pub message: String,
}

impl JobError {
    /// A permanent (non-retryable) error.
    pub fn permanent(message: impl Into<String>) -> Self {
        JobError { class: ErrorClass::Permanent, message: message.into() }
    }

    /// A transient (retryable) error.
    pub fn transient(message: impl Into<String>) -> Self {
        JobError { class: ErrorClass::Transient, message: message.into() }
    }

    /// Classify a JPEG codec error by the decoder's own taxonomy:
    /// [`dcdiff_jpeg::JpegErrorKind::Truncated`] streams are transient
    /// (the sender's uplink may still deliver the missing bytes — a retry
    /// can see a complete file), while malformed, unsupported and internal
    /// errors are deterministic and therefore permanent.
    pub fn from_jpeg(err: &dcdiff_jpeg::JpegError) -> Self {
        if err.is_transient() {
            JobError::transient(err.to_string())
        } else {
            JobError::permanent(err.to_string())
        }
    }

    /// Classify a `std::io` error: interruptions and timeouts are transient,
    /// everything else (not found, permissions, ...) is permanent.
    pub fn from_io(err: &std::io::Error) -> Self {
        use std::io::ErrorKind;
        match err.kind() {
            ErrorKind::Interrupted | ErrorKind::TimedOut | ErrorKind::WouldBlock => {
                JobError::transient(err.to_string())
            }
            _ => JobError::permanent(err.to_string()),
        }
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let class = match self.class {
            ErrorClass::Transient => "transient",
            ErrorClass::Permanent => "permanent",
        };
        write!(f, "{class}: {}", self.message)
    }
}

/// Success payload, one variant per job kind.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutput {
    /// Bytes written by an encode.
    Encoded {
        /// Output stream size.
        bytes: usize,
    },
    /// Before/after sizes of a transcode.
    Transcoded {
        /// Input stream size.
        bytes_in: usize,
        /// Output stream size.
        bytes_out: usize,
    },
    /// Path written by a recovery.
    Recovered {
        /// Output image path.
        output: String,
    },
    /// Quality metrics of a comparison.
    Metrics {
        /// Peak signal-to-noise ratio in dB.
        psnr: f64,
        /// Structural similarity in `[-1, 1]`.
        ssim: f64,
    },
}

/// Terminal, non-success dispositions of a job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobFailure {
    /// Execution failed (after exhausting any retry budget).
    Error(JobError),
    /// The deadline passed before the job could execute.
    DeadlineExceeded,
    /// The runtime was shut down in abort mode while the job was queued.
    /// Distinct from [`JobFailure::Error`] so callers can tell load-shedding
    /// from genuine failures.
    Rejected,
}

/// Final report for one submitted job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Identifier returned at submission.
    pub id: JobId,
    /// The job as submitted.
    pub job: Job,
    /// Success payload or failure disposition.
    pub outcome: Result<JobOutput, JobFailure>,
    /// Wall-clock time from submission to completion (includes queueing).
    pub wall: Duration,
    /// Execution time of the final attempt (zero if never executed).
    pub exec: Duration,
    /// Number of execution attempts (0 = never ran, 1 = no retries).
    pub attempts: u32,
}

impl JobResult {
    /// Whether the job completed successfully.
    pub fn is_ok(&self) -> bool {
        self.outcome.is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_error_classification() {
        let interrupted = std::io::Error::new(std::io::ErrorKind::Interrupted, "sig");
        assert_eq!(JobError::from_io(&interrupted).class, ErrorClass::Transient);
        let missing = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        assert_eq!(JobError::from_io(&missing).class, ErrorClass::Permanent);
    }

    #[test]
    fn jpeg_error_classification_follows_the_taxonomy() {
        use dcdiff_jpeg::JpegDecoder;
        // A cut-off header is the canonical transient case...
        let truncated = JpegDecoder::decode(&[0xFF, 0xD8, 0xFF]).unwrap_err();
        assert_eq!(JobError::from_jpeg(&truncated).class, ErrorClass::Transient);
        // ...while garbage bytes are deterministically malformed.
        let malformed = JpegDecoder::decode(b"not a jpeg").unwrap_err();
        assert_eq!(JobError::from_jpeg(&malformed).class, ErrorClass::Permanent);
    }

    #[test]
    fn recover_method_config_identity() {
        let a = RecoverMethod::Mld { threshold: 10.0, sweeps: 300 };
        let b = RecoverMethod::Mld { threshold: 10.0, sweeps: 300 };
        let c = RecoverMethod::Mld { threshold: 9.0, sweeps: 300 };
        assert!(a.same_config(&b));
        assert!(!a.same_config(&c));
        assert!(!a.same_config(&RecoverMethod::Tip2006));
        assert_eq!(a.name(), "mld");
        // Diffusion batches only with identical step counts.
        let d8 = RecoverMethod::Diffusion { ddim_steps: 8 };
        assert!(d8.same_config(&RecoverMethod::Diffusion { ddim_steps: 8 }));
        assert!(!d8.same_config(&RecoverMethod::Diffusion { ddim_steps: 16 }));
        assert_eq!(d8.name(), "diffusion");
    }

    #[test]
    fn spec_builder() {
        let job = Job::Metrics { reference: "a".into(), test: "b".into() };
        let spec = JobSpec::new(job.clone())
            .with_deadline(Duration::from_millis(50))
            .with_retries(3);
        assert_eq!(spec.deadline, Some(Duration::from_millis(50)));
        assert_eq!(spec.max_retries, 3);
        assert_eq!(spec.job.stage(), Stage::Metrics);
        assert_eq!(spec.trace, None);
        let ctx = dcdiff_telemetry::TraceCtx::generate();
        assert_eq!(spec.with_trace(ctx).trace, Some(ctx));
        assert_eq!(JobSpec::from(job).max_retries, 0);
    }
}
