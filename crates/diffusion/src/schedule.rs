use dcdiff_tensor::{Rng, Tensor};

/// A variance schedule for the forward diffusion process (Eq. 1 of the
/// paper): `q(z_t | z_{t-1}) = N(sqrt(1-β_t) z_{t-1}, β_t I)`.
///
/// Precomputes `α_t = 1 − β_t` and the cumulative products `ᾱ_t` so the
/// closed-form `q(z_t | z_0)` can be sampled directly.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseSchedule {
    betas: Vec<f32>,
    alpha_bars: Vec<f32>,
}

impl NoiseSchedule {
    /// Linear β schedule from `beta_start` to `beta_end` over `steps`
    /// timesteps (the DDPM default is `1e-4 → 2e-2` over 1000).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < beta_start <= beta_end < 1` and `steps > 0`.
    pub fn linear(steps: usize, beta_start: f32, beta_end: f32) -> Self {
        assert!(steps > 0, "schedule needs at least one step");
        assert!(
            0.0 < beta_start && beta_start <= beta_end && beta_end < 1.0,
            "betas must satisfy 0 < start <= end < 1"
        );
        let betas: Vec<f32> = (0..steps)
            .map(|t| {
                if steps == 1 {
                    beta_start
                } else {
                    beta_start + (beta_end - beta_start) * t as f32 / (steps - 1) as f32
                }
            })
            .collect();
        Self::from_betas(betas)
    }

    /// Cosine schedule (Nichol & Dhariwal) over `steps` timesteps.
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0`.
    pub fn cosine(steps: usize) -> Self {
        assert!(steps > 0, "schedule needs at least one step");
        let s = 0.008f32;
        let f = |t: f32| ((t / steps as f32 + s) / (1.0 + s) * std::f32::consts::FRAC_PI_2).cos().powi(2);
        let f0 = f(0.0);
        let betas: Vec<f32> = (0..steps)
            .map(|t| {
                let ab_t = f((t + 1) as f32) / f0;
                let ab_prev = f(t as f32) / f0;
                (1.0 - ab_t / ab_prev).clamp(1e-5, 0.999)
            })
            .collect();
        Self::from_betas(betas)
    }

    /// Build from explicit β values.
    ///
    /// # Panics
    ///
    /// Panics if any β is outside `(0, 1)` or the list is empty.
    pub fn from_betas(betas: Vec<f32>) -> Self {
        assert!(!betas.is_empty(), "schedule needs at least one step");
        assert!(
            betas.iter().all(|&b| 0.0 < b && b < 1.0),
            "betas must lie in (0, 1)"
        );
        let mut alpha_bars = Vec::with_capacity(betas.len());
        let mut prod = 1.0f32;
        for &b in &betas {
            prod *= 1.0 - b;
            alpha_bars.push(prod);
        }
        Self { betas, alpha_bars }
    }

    /// Number of diffusion timesteps `T`.
    pub fn steps(&self) -> usize {
        self.betas.len()
    }

    /// `β_t` for `t` in `0..T`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= T`.
    pub fn beta(&self, t: usize) -> f32 {
        self.betas[t]
    }

    /// Cumulative `ᾱ_t = Π (1 − β_i)`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= T`.
    pub fn alpha_bar(&self, t: usize) -> f32 {
        self.alpha_bars[t]
    }

    /// Sample `z_t ~ q(z_t | z_0)` in closed form:
    /// `z_t = sqrt(ᾱ_t) z_0 + sqrt(1 − ᾱ_t) ε`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= T` or shapes differ.
    pub fn q_sample(&self, z0: &Tensor, t: usize, eps: &Tensor) -> Tensor {
        let ab = self.alpha_bar(t);
        z0.scale(ab.sqrt()).add(&eps.scale((1.0 - ab).sqrt()))
    }

    /// Project `(z_t, ε̂)` back to an estimate of `z_0`:
    /// `ẑ_0 = (z_t − sqrt(1 − ᾱ_t) ε̂) / sqrt(ᾱ_t)`.
    ///
    /// Gradients flow through `ε̂`, which is what lets the masked
    /// Laplacian loss (computed on the decoded ẑ_0) train the noise
    /// prediction network (§III-E).
    ///
    /// # Panics
    ///
    /// Panics if `t >= T` or shapes differ.
    pub fn predict_z0(&self, zt: &Tensor, t: usize, eps_hat: &Tensor) -> Tensor {
        let ab = self.alpha_bar(t);
        zt.sub(&eps_hat.scale((1.0 - ab).sqrt()))
            .scale(1.0 / ab.sqrt())
    }

    /// Fresh Gaussian noise shaped like a `[n, c, h, w]` latent.
    pub fn noise_like(&self, shape: &[usize], rng: &mut Rng) -> Tensor {
        Tensor::randn(shape.to_vec(), 1.0, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcdiff_tensor::seeded_rng;

    #[test]
    fn linear_schedule_monotone() {
        let s = NoiseSchedule::linear(1000, 1e-4, 2e-2);
        assert_eq!(s.steps(), 1000);
        assert!(s.beta(0) < s.beta(999));
        // alpha_bar decreases monotonically towards ~0
        for t in 1..1000 {
            assert!(s.alpha_bar(t) < s.alpha_bar(t - 1));
        }
        assert!(s.alpha_bar(999) < 0.01, "terminal abar {}", s.alpha_bar(999));
        assert!(s.alpha_bar(0) > 0.99);
    }

    #[test]
    fn cosine_schedule_is_valid() {
        let s = NoiseSchedule::cosine(500);
        for t in 0..500 {
            assert!(s.beta(t) > 0.0 && s.beta(t) < 1.0);
        }
        assert!(s.alpha_bar(499) < 0.01);
    }

    #[test]
    fn q_sample_interpolates_between_signal_and_noise() {
        let s = NoiseSchedule::linear(100, 1e-4, 2e-2);
        let z0 = Tensor::full(vec![1, 1, 2, 2], 3.0);
        let eps = Tensor::full(vec![1, 1, 2, 2], 1.0);
        let early = s.q_sample(&z0, 0, &eps).to_vec()[0];
        let late = s.q_sample(&z0, 99, &eps).to_vec()[0];
        assert!((early - 3.0).abs() < 0.1, "early {early} ~ signal");
        assert!((late - 3.0).abs() > (early - 3.0).abs(), "late is noisier");
    }

    #[test]
    fn predict_z0_inverts_q_sample_exactly() {
        let s = NoiseSchedule::linear(50, 1e-3, 5e-2);
        let mut rng = seeded_rng(0);
        let z0 = Tensor::randn(vec![2, 3, 4, 4], 1.0, &mut rng);
        let eps = Tensor::randn(vec![2, 3, 4, 4], 1.0, &mut rng);
        for t in [0usize, 20, 49] {
            let zt = s.q_sample(&z0, t, &eps);
            let rec = s.predict_z0(&zt, t, &eps);
            for (a, b) in z0.to_vec().iter().zip(rec.to_vec()) {
                assert!((a - b).abs() < 1e-3, "t={t}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn predict_z0_propagates_gradients_to_eps() {
        let s = NoiseSchedule::linear(10, 1e-3, 2e-2);
        let zt = Tensor::full(vec![1, 1, 1, 1], 1.0);
        let eps = Tensor::param(vec![1, 1, 1, 1], vec![0.5]);
        s.predict_z0(&zt, 5, &eps).sum_all().backward();
        let ab = s.alpha_bar(5);
        let expected = -(1.0 - ab).sqrt() / ab.sqrt();
        assert!((eps.grad_vec()[0] - expected).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "betas must satisfy")]
    fn invalid_betas_rejected() {
        NoiseSchedule::linear(10, 0.5, 0.2);
    }
}
