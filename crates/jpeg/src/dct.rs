//! 8×8 forward and inverse discrete cosine transforms.
//!
//! Two implementations are provided:
//!
//! * [`fdct_ref`] / [`idct_ref`] — the textbook `O(N^4)` type-II/III DCT,
//!   used as the correctness oracle in tests;
//! * [`fdct`] / [`idct_scalar`] — a separable row/column transform with
//!   precomputed cosine tables (the practical encoder path; ~8× fewer
//!   multiplies than the reference);
//! * [`idct`] — the decode-path entry point: runtime-dispatched to an
//!   AVX2+FMA two-pass matrix kernel when [`crate::simd`] detects the
//!   features, falling back to [`idct_scalar`] otherwise.
//!
//! All operate on level-shifted samples (caller subtracts 128) and use
//! the orthonormal JPEG normalisation: `C(0) = 1/sqrt(2)`, scale `1/2`
//! per 1-D pass. The AVX2 kernel evaluates the same orthonormal basis,
//! so it matches the scalar transform to within a few ULP of f32 —
//! bounded by the SIMD parity tests, not assumed.

use crate::{BLOCK, BLOCK_AREA};

/// Precomputed `cos((2x+1) u pi / 16)` table, `COS[u][x]`.
fn cos_table() -> &'static [[f32; BLOCK]; BLOCK] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[[f32; BLOCK]; BLOCK]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [[0.0f32; BLOCK]; BLOCK];
        for (u, row) in t.iter_mut().enumerate() {
            for (x, v) in row.iter_mut().enumerate() {
                *v = ((2.0 * x as f32 + 1.0) * u as f32 * std::f32::consts::PI / 16.0).cos();
            }
        }
        t
    })
}

#[inline]
fn c(u: usize) -> f32 {
    if u == 0 {
        std::f32::consts::FRAC_1_SQRT_2
    } else {
        1.0
    }
}

/// Reference forward DCT (type II), `O(N^4)`.
///
/// Input and output are row-major 64-element blocks; the `(0,0)` output
/// is the DC coefficient, equal to `8 * mean(samples)` under this
/// normalisation.
pub fn fdct_ref(samples: &[f32; BLOCK_AREA]) -> [f32; BLOCK_AREA] {
    let mut out = [0.0f32; BLOCK_AREA];
    for v in 0..BLOCK {
        for u in 0..BLOCK {
            let mut sum = 0.0f32;
            for y in 0..BLOCK {
                for x in 0..BLOCK {
                    sum += samples[y * BLOCK + x]
                        * cos_table()[u][x]
                        * cos_table()[v][y];
                }
            }
            out[v * BLOCK + u] = 0.25 * c(u) * c(v) * sum;
        }
    }
    out
}

/// Reference inverse DCT (type III), `O(N^4)`.
pub fn idct_ref(coeffs: &[f32; BLOCK_AREA]) -> [f32; BLOCK_AREA] {
    let mut out = [0.0f32; BLOCK_AREA];
    for y in 0..BLOCK {
        for x in 0..BLOCK {
            let mut sum = 0.0f32;
            for v in 0..BLOCK {
                for u in 0..BLOCK {
                    sum += c(u)
                        * c(v)
                        * coeffs[v * BLOCK + u]
                        * cos_table()[u][x]
                        * cos_table()[v][y];
                }
            }
            out[y * BLOCK + x] = 0.25 * sum;
        }
    }
    out
}

/// 1-D 8-point forward DCT on a strided slice.
#[inline]
// analysis: hot
fn fdct_1d(data: &mut [f32; BLOCK_AREA], offset: usize, stride: usize) {
    let mut tmp = [0.0f32; BLOCK];
    let t = cos_table();
    for (u, out) in tmp.iter_mut().enumerate() {
        let mut sum = 0.0f32;
        for x in 0..BLOCK {
            sum += data[offset + x * stride] * t[u][x];
        }
        *out = 0.5 * c(u) * sum;
    }
    for (u, &v) in tmp.iter().enumerate() {
        data[offset + u * stride] = v;
    }
}

/// 1-D 8-point inverse DCT on a strided slice.
#[inline]
// analysis: hot
fn idct_1d(data: &mut [f32; BLOCK_AREA], offset: usize, stride: usize) {
    let mut tmp = [0.0f32; BLOCK];
    let t = cos_table();
    for (x, out) in tmp.iter_mut().enumerate() {
        let mut sum = 0.0f32;
        for u in 0..BLOCK {
            sum += c(u) * data[offset + u * stride] * t[u][x];
        }
        *out = 0.5 * sum;
    }
    for (x, &v) in tmp.iter().enumerate() {
        data[offset + x * stride] = v;
    }
}

/// Separable forward DCT (rows then columns).
///
/// Matches [`fdct_ref`] to floating-point precision while doing two 1-D
/// passes instead of a full 4-D sum.
pub fn fdct(samples: &[f32; BLOCK_AREA]) -> [f32; BLOCK_AREA] {
    let mut data = *samples;
    for row in 0..BLOCK {
        fdct_1d(&mut data, row * BLOCK, 1);
    }
    for col in 0..BLOCK {
        fdct_1d(&mut data, col, BLOCK);
    }
    data
}

/// Separable inverse DCT (columns then rows). Inverse of [`fdct`].
///
/// This is the portable scalar tier — always available, and the parity
/// oracle the AVX2 kernel is tested against. Decode paths should call
/// [`idct`], which dispatches here when no vector tier is active.
pub fn idct_scalar(coeffs: &[f32; BLOCK_AREA]) -> [f32; BLOCK_AREA] {
    let mut data = *coeffs;
    for col in 0..BLOCK {
        idct_1d(&mut data, col, BLOCK);
    }
    for row in 0..BLOCK {
        idct_1d(&mut data, row * BLOCK, 1);
    }
    data
}

/// Precomputed orthonormal iDCT basis `B[u][x] = 0.5 * C(u) * cos((2x+1)u pi/16)`.
///
/// With this matrix the 2-D inverse transform is `P = Bᵀ · (X · B)`,
/// which the AVX2 kernel evaluates as two broadcast-FMA passes over
/// whole 8-float rows (no transpose needed: both passes produce output
/// rows as sums of scaled input rows).
fn basis_table() -> &'static [[f32; BLOCK]; BLOCK] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[[f32; BLOCK]; BLOCK]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [[0.0f32; BLOCK]; BLOCK];
        for (u, row) in t.iter_mut().enumerate() {
            for (x, v) in row.iter_mut().enumerate() {
                *v = 0.5
                    * c(u)
                    * ((2.0 * x as f32 + 1.0) * u as f32 * std::f32::consts::PI / 16.0).cos();
            }
        }
        t
    })
}

/// AVX2+FMA 8×8 inverse DCT: `out = Bᵀ · (X · B)` as two row passes.
///
/// Pass 1 forms `T[v] = Σ_u X[v][u] · B[u]` (each output row is a sum of
/// broadcast-scaled basis rows); pass 2 forms `out[y] = Σ_v B[v][y] · T[v]`
/// the same way. 128 FMAs total on 8-lane vectors, no shuffles.
///
/// # Safety
///
/// The caller must ensure the CPU supports AVX2 and FMA
/// (`simd::active() == Tier::Avx2Fma` guarantees this — the tier is only
/// selected after `is_x86_feature_detected!` confirms both).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
// SAFETY: unsafe fn — requires avx2+fma; the dispatcher only calls this
// after `simd::active()` reports the Avx2Fma tier.
unsafe fn idct_avx2(coeffs: &[f32; BLOCK_AREA], out: &mut [f32; BLOCK_AREA]) {
    use std::arch::x86_64::{
        _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_set1_ps, _mm256_setzero_ps, _mm256_storeu_ps,
    };
    let b = basis_table();
    // SAFETY: `b` is a static [[f32; 8]; 8]; row pointers are valid for 8
    // f32 reads. Intrinsics are guarded by the enclosing `target_feature`
    // fn, whose contract requires AVX2+FMA (upheld by the dispatcher).
    let mut brows = [_mm256_setzero_ps(); BLOCK];
    for (u, row) in brows.iter_mut().enumerate() {
        *row = _mm256_loadu_ps(b[u].as_ptr());
    }
    let mut t = [_mm256_setzero_ps(); BLOCK];
    for (v, trow) in t.iter_mut().enumerate() {
        let mut acc = _mm256_setzero_ps();
        for (u, &brow) in brows.iter().enumerate() {
            acc = _mm256_fmadd_ps(_mm256_set1_ps(coeffs[v * BLOCK + u]), brow, acc);
        }
        *trow = acc;
    }
    for (y, orow) in out.chunks_exact_mut(BLOCK).enumerate() {
        let mut acc = _mm256_setzero_ps();
        for (v, &trow) in t.iter().enumerate() {
            acc = _mm256_fmadd_ps(_mm256_set1_ps(b[v][y]), trow, acc);
        }
        // SAFETY: `orow` is an exclusively borrowed 8-f32 row of `out`.
        _mm256_storeu_ps(orow.as_mut_ptr(), acc);
    }
}

/// Inverse DCT, runtime-dispatched per [`crate::simd::active`].
///
/// Selects the AVX2+FMA kernel when the CPU supports it (and no scalar
/// override is pinned), otherwise [`idct_scalar`]. Both tiers implement
/// the identical orthonormal transform; the SIMD parity tests bound the
/// cross-tier difference.
pub fn idct(coeffs: &[f32; BLOCK_AREA]) -> [f32; BLOCK_AREA] {
    #[cfg(target_arch = "x86_64")]
    {
        if crate::simd::active() == crate::simd::Tier::Avx2Fma {
            let mut out = [0.0f32; BLOCK_AREA];
            // SAFETY: the Avx2Fma tier is only ever reported after
            // `is_x86_feature_detected!` confirmed avx2 and fma.
            unsafe { idct_avx2(coeffs, &mut out) };
            return out;
        }
    }
    idct_scalar(coeffs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block(seed: u32) -> [f32; BLOCK_AREA] {
        let mut b = [0.0f32; BLOCK_AREA];
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        for v in &mut b {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            *v = (state >> 16) as f32 % 256.0 - 128.0;
        }
        b
    }

    #[test]
    fn dc_coefficient_is_scaled_mean() {
        let block = [10.0f32; BLOCK_AREA];
        let coeffs = fdct(&block);
        // DC = 1/4 * (1/sqrt2)^2 * sum = sum/8 = 80 for constant 10
        assert!((coeffs[0] - 80.0).abs() < 1e-3, "dc {}", coeffs[0]);
        for (i, &ac) in coeffs.iter().enumerate().skip(1) {
            assert!(ac.abs() < 1e-3, "ac[{i}] = {ac}");
        }
    }

    #[test]
    fn fast_matches_reference_forward() {
        for seed in 0..5 {
            let block = sample_block(seed);
            let fast = fdct(&block);
            let slow = fdct_ref(&block);
            for i in 0..BLOCK_AREA {
                assert!(
                    (fast[i] - slow[i]).abs() < 1e-2,
                    "coeff {i}: fast {} vs ref {}",
                    fast[i],
                    slow[i]
                );
            }
        }
    }

    #[test]
    fn fast_matches_reference_inverse() {
        for seed in 5..10 {
            let coeffs = sample_block(seed);
            let fast = idct(&coeffs);
            let slow = idct_ref(&coeffs);
            for i in 0..BLOCK_AREA {
                assert!((fast[i] - slow[i]).abs() < 1e-2);
            }
        }
    }

    #[test]
    fn round_trip_is_identity() {
        for seed in 10..15 {
            let block = sample_block(seed);
            let back = idct(&fdct(&block));
            for i in 0..BLOCK_AREA {
                assert!(
                    (block[i] - back[i]).abs() < 1e-2,
                    "sample {i}: {} vs {}",
                    block[i],
                    back[i]
                );
            }
        }
    }

    #[test]
    fn dispatched_idct_matches_scalar_tier() {
        // Covers the AVX2 kernel on hosts that have it; on scalar-only
        // hosts both sides take the same path and the test is vacuous.
        for seed in 20..40 {
            let coeffs = sample_block(seed);
            let fast = idct(&coeffs);
            let scalar = idct_scalar(&coeffs);
            for i in 0..BLOCK_AREA {
                assert!(
                    (fast[i] - scalar[i]).abs() < 1e-3,
                    "sample {i}: dispatched {} vs scalar {}",
                    fast[i],
                    scalar[i]
                );
            }
        }
    }

    #[test]
    fn dispatched_idct_matches_scalar_at_saturation() {
        // Extremes of the quantised-coefficient range (|level * qstep|
        // can reach ~16k): the tiers must stay within f32 noise of each
        // other so clamping to [0,255] after +128 cannot diverge.
        let mut coeffs = [0.0f32; BLOCK_AREA];
        for (i, v) in coeffs.iter_mut().enumerate() {
            *v = if i % 2 == 0 { 16320.0 } else { -16320.0 };
        }
        let fast = idct(&coeffs);
        let scalar = idct_scalar(&coeffs);
        for i in 0..BLOCK_AREA {
            let tol = 1e-2 * scalar[i].abs().max(1.0);
            assert!((fast[i] - scalar[i]).abs() < tol);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let block = sample_block(42);
        let coeffs = fdct(&block);
        let es: f32 = block.iter().map(|v| v * v).sum();
        let ec: f32 = coeffs.iter().map(|v| v * v).sum();
        assert!((es - ec).abs() / es < 1e-4, "{es} vs {ec}");
    }

    #[test]
    fn single_basis_function_round_trips() {
        // An impulse in coefficient space produces the basis image; IDCT
        // then FDCT must recover the impulse.
        let mut coeffs = [0.0f32; BLOCK_AREA];
        coeffs[3 * BLOCK + 5] = 100.0;
        let img = idct(&coeffs);
        let back = fdct(&img);
        for (i, &actual) in back.iter().enumerate() {
            let expect = if i == 3 * BLOCK + 5 { 100.0 } else { 0.0 };
            assert!((actual - expect).abs() < 1e-2);
        }
    }
}
