//! Batch-dimension verification for the U-Net stack: a row of a batched
//! forward must be **bit-identical** to the same sample run alone.
//!
//! This is the property the cross-request DDIM step batching rests on: the
//! cohort sampler stacks K lanes' latents into one forward per step and
//! promises each lane the result it would have gotten at width 1. The conv
//! path batches all N samples' im2col rows into a single GEMM whose
//! per-row reduction order is independent of the row count, and
//! normalisation/attention/pooling reduce strictly per sample — so equality
//! here is exact (`==` on the f32 bits), not approximate.

use dcdiff_nn::{ControlModule, UNet, UNetConfig};
use dcdiff_tensor::{seeded_rng, Tensor};

fn small_config() -> UNetConfig {
    UNetConfig {
        in_channels: 3,
        out_channels: 3,
        base_channels: 8,
        channel_mults: vec![1, 2],
        time_dim: 8,
        attention: true,
    }
}

/// Extract batch row `r` of a stacked `[N, …]` tensor as `[1, …]` data.
fn row(stacked: &Tensor, r: usize) -> Vec<f32> {
    let per: usize = stacked.shape().iter().skip(1).product();
    stacked.to_vec()[r * per..(r + 1) * per].to_vec()
}

#[test]
fn batched_unet_forward_rows_match_individual_forwards_bit_exactly() {
    let mut rng = seeded_rng(17);
    let unet = UNet::new(small_config(), &mut rng);
    let n = 4;
    let x = Tensor::randn(vec![n, 3, 8, 8], 1.0, &mut rng);
    // Distinct per-sample timesteps: the cohort always shares one t, but the
    // API is per-sample and must stay consistent in the general case too.
    let ts = [0usize, 3, 9, 27];
    let batched = unet.forward(&x, &ts, None, None);

    for i in 0..n {
        let xi = Tensor::from_vec(vec![1, 3, 8, 8], row(&x, i));
        let solo = unet.forward(&xi, &ts[i..=i], None, None);
        assert_eq!(
            row(&batched, i),
            solo.to_vec(),
            "sample {i} must be unaffected by its batch-mates"
        );
    }
}

#[test]
fn batched_forward_with_control_and_freeu_matches_rows_bit_exactly() {
    let mut rng = seeded_rng(23);
    let config = small_config();
    let unet = UNet::new(config.clone(), &mut rng);
    let control = ControlModule::new(&config, 3, &mut rng);
    let n = 3;
    let x = Tensor::randn(vec![n, 3, 8, 8], 1.0, &mut rng);
    let cond = Tensor::randn(vec![n, 3, 8, 8], 0.5, &mut rng);
    let s = Tensor::from_vec(vec![n], vec![0.7, 1.0, 1.4]);
    let b = Tensor::from_vec(vec![n], vec![1.2, 0.9, 1.0]);
    let feats = control.forward(&cond);
    let batched = unet.forward(&x, &[5, 5, 5], Some(&feats), Some((&s, &b)));

    for i in 0..n {
        let xi = Tensor::from_vec(vec![1, 3, 8, 8], row(&x, i));
        let ci = Tensor::from_vec(vec![1, 3, 8, 8], row(&cond, i));
        let si = Tensor::from_vec(vec![1], vec![s.to_vec()[i]]);
        let bi = Tensor::from_vec(vec![1], vec![b.to_vec()[i]]);
        let fi = control.forward(&ci);
        let solo = unet.forward(&xi, &[5], Some(&fi), Some((&si, &bi)));
        assert_eq!(
            row(&batched, i),
            solo.to_vec(),
            "control/freeu sample {i} must match its width-1 forward"
        );
    }
}

#[test]
fn control_module_rows_are_batch_independent() {
    let mut rng = seeded_rng(31);
    let config = small_config();
    let control = ControlModule::new(&config, 3, &mut rng);
    let n = 4;
    let cond = Tensor::randn(vec![n, 3, 8, 8], 1.0, &mut rng);
    let batched = control.forward(&cond);
    for i in 0..n {
        let ci = Tensor::from_vec(vec![1, 3, 8, 8], row(&cond, i));
        let solo = control.forward(&ci);
        for (site, (all, one)) in batched.iter().zip(&solo).enumerate() {
            assert_eq!(
                row(all, i),
                one.to_vec(),
                "control site {site}, sample {i} must be batch-independent"
            );
        }
    }
}
