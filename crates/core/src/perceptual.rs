//! Differentiable perceptual loss for stage-1 training (`L_per` in
//! Eq. 5).
//!
//! Like [`dcdiff_metrics::PerceptualDistance`] this uses frozen random
//! band-pass convolution features in place of a pretrained VGG (see
//! `DESIGN.md`), but operates on tensors so gradients reach the
//! reconstruction.

use dcdiff_tensor::{seeded_rng, Tensor};

/// Frozen random-feature perceptual loss.
#[derive(Debug, Clone)]
pub struct PerceptualLoss {
    /// Constant filter bank `[F, 3, 3, 3]`.
    filters: Tensor,
    scales: usize,
}

impl Default for PerceptualLoss {
    fn default() -> Self {
        Self::new(0xFEA7, 8, 2)
    }
}

impl PerceptualLoss {
    /// Build a loss with `num_filters` random 3×3 filters compared over
    /// `scales` dyadic scales.
    ///
    /// # Panics
    ///
    /// Panics if `num_filters` or `scales` is zero.
    pub fn new(seed: u64, num_filters: usize, scales: usize) -> Self {
        assert!(num_filters > 0 && scales > 0);
        let mut rng = seeded_rng(seed);
        let raw = Tensor::randn(vec![num_filters, 3, 3, 3], 1.0, &mut rng);
        // zero-mean each filter so features are band-pass
        let mut data = raw.to_vec();
        for f in data.chunks_mut(27) {
            let mean: f32 = f.iter().sum::<f32>() / 27.0;
            let mut norm = 0.0f32;
            for v in f.iter_mut() {
                *v -= mean;
                norm += *v * *v;
            }
            let norm = norm.sqrt().max(1e-6);
            for v in f.iter_mut() {
                *v /= norm;
            }
        }
        Self {
            filters: Tensor::from_vec(vec![num_filters, 3, 3, 3], data),
            scales,
        }
    }

    /// Perceptual loss between a reconstruction and a (constant) target,
    /// both `[N, 3, H, W]`. Returns a scalar; gradients flow into `x_hat`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or non-3-channel inputs.
    pub fn loss(&self, x_hat: &Tensor, target: &Tensor) -> Tensor {
        assert_eq!(x_hat.shape(), target.shape(), "shape mismatch");
        assert_eq!(x_hat.shape()[1], 3, "perceptual loss expects RGB");
        let mut a = x_hat.clone();
        let mut b = target.detach();
        let mut total = Tensor::zeros(vec![1]);
        for s in 0..self.scales {
            let fa = a.conv2d(&self.filters, 1, 1);
            let fb = b.conv2d(&self.filters, 1, 1);
            total = total.add(&fa.mse(&fb));
            if s + 1 < self.scales {
                a = a.avg_pool2();
                b = b.avg_pool2();
            }
        }
        total.scale(1.0 / self.scales as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_inputs_have_zero_loss() {
        let p = PerceptualLoss::default();
        let mut rng = seeded_rng(1);
        let x = Tensor::randn(vec![1, 3, 8, 8], 1.0, &mut rng);
        assert!(p.loss(&x, &x).item() < 1e-10);
    }

    #[test]
    fn loss_grows_with_structural_difference() {
        let p = PerceptualLoss::default();
        let mut rng = seeded_rng(2);
        let x = Tensor::randn(vec![1, 3, 16, 16], 1.0, &mut rng);
        let near = x.add(&Tensor::randn(vec![1, 3, 16, 16], 0.05, &mut rng));
        let far = x.add(&Tensor::randn(vec![1, 3, 16, 16], 0.5, &mut rng));
        assert!(p.loss(&x, &far).item() > p.loss(&x, &near).item());
    }

    #[test]
    fn gradients_flow_to_reconstruction() {
        let p = PerceptualLoss::default();
        let mut rng = seeded_rng(3);
        let x = Tensor::param(vec![1, 3, 8, 8], vec![0.1; 192]);
        let t = Tensor::randn(vec![1, 3, 8, 8], 1.0, &mut rng);
        p.loss(&x, &t).backward();
        assert!(x.grad_vec().iter().any(|&g| g != 0.0));
    }

    #[test]
    fn constant_offset_is_cheap() {
        // band-pass filters ignore DC shifts: offset costs ~nothing
        let p = PerceptualLoss::default();
        let mut rng = seeded_rng(4);
        let x = Tensor::randn(vec![1, 3, 16, 16], 1.0, &mut rng);
        let shifted = x.add_scalar(0.3);
        let blurred = x.avg_pool2().upsample_nearest2();
        assert!(p.loss(&shifted, &x).item() < p.loss(&blurred, &x).item());
    }
}
