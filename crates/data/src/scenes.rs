//! Procedural scene generation with natural-image statistics.
//!
//! Scenes are built from layered primitives — smooth multi-octave value
//! noise, gradients, filled rectangles/ellipses with soft or hard edges,
//! periodic textures and rectilinear grids — so that adjacent-pixel
//! differences are mostly Laplacian-small with a heavy tail at object
//! boundaries, exactly the structure the DC-recovery literature assumes.

use dcdiff_image::{ColorSpace, Image, Plane};
use rand::Rng;

type StdRng = rand::rngs::StdRng;

/// Content class of a generated scene.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SceneKind {
    /// Large smooth regions with a few soft blobs (Set5-like).
    Smooth,
    /// Mixed smooth regions and moderate texture (Set14/Kodak-like).
    Natural,
    /// Dense stochastic texture with many sharp transitions (BSDS-like).
    Texture,
    /// Rectilinear buildings, windows, hard edges (Urban100-like).
    Urban,
    /// Aerial view: road grids, roof rectangles, field patches
    /// (Inria-like).
    Aerial,
}

/// Deterministic scene generator.
///
/// # Example
///
/// ```
/// use dcdiff_data::{SceneGenerator, SceneKind};
///
/// let gen = SceneGenerator::new(SceneKind::Urban, 64, 64);
/// let a = gen.generate(7);
/// let b = gen.generate(7);
/// assert_eq!(a.plane(0).as_slice(), b.plane(0).as_slice());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SceneGenerator {
    kind: SceneKind,
    width: usize,
    height: usize,
}

impl SceneGenerator {
    /// Create a generator producing `width × height` RGB scenes.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(kind: SceneKind, width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "scene dimensions must be nonzero");
        Self {
            kind,
            width,
            height,
        }
    }

    /// The content class.
    pub fn kind(&self) -> SceneKind {
        self.kind
    }

    /// Scene dimensions `(width, height)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Generate the scene for `seed` (deterministic).
    pub fn generate(&self, seed: u64) -> Image {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed ^ (self.kind as u64) << 32);
        let (w, h) = (self.width, self.height);
        match self.kind {
            SceneKind::Smooth => smooth_scene(w, h, &mut rng),
            SceneKind::Natural => natural_scene(w, h, &mut rng),
            SceneKind::Texture => texture_scene(w, h, &mut rng),
            SceneKind::Urban => urban_scene(w, h, &mut rng),
            SceneKind::Aerial => aerial_scene(w, h, &mut rng),
        }
    }
}

/// Multi-octave value noise in `[0, 1]` (bilinear interpolation of coarse
/// random grids).
pub(crate) fn value_noise(w: usize, h: usize, octaves: usize, rng: &mut StdRng) -> Plane {
    let mut out = Plane::new(w, h);
    let mut amplitude = 1.0f32;
    let mut total_amp = 0.0f32;
    for octave in 0..octaves {
        let cells = 2usize << octave; // 2, 4, 8, ...
        let gw = cells + 2;
        let gh = cells + 2;
        let grid: Vec<f32> = (0..gw * gh).map(|_| rng.gen::<f32>()).collect();
        let fx = cells as f32 / w as f32;
        let fy = cells as f32 / h as f32;
        for y in 0..h {
            for x in 0..w {
                let gx = x as f32 * fx;
                let gy = y as f32 * fy;
                let x0 = gx as usize;
                let y0 = gy as usize;
                let tx = gx - x0 as f32;
                let ty = gy - y0 as f32;
                // smoothstep interpolation weights
                let sx = tx * tx * (3.0 - 2.0 * tx);
                let sy = ty * ty * (3.0 - 2.0 * ty);
                let v00 = grid[y0 * gw + x0];
                let v10 = grid[y0 * gw + x0 + 1];
                let v01 = grid[(y0 + 1) * gw + x0];
                let v11 = grid[(y0 + 1) * gw + x0 + 1];
                let v = v00 * (1.0 - sx) * (1.0 - sy)
                    + v10 * sx * (1.0 - sy)
                    + v01 * (1.0 - sx) * sy
                    + v11 * sx * sy;
                out.set(x, y, out.get(x, y) + amplitude * v);
            }
        }
        total_amp += amplitude;
        amplitude *= 0.5;
    }
    out.map(|v| v / total_amp)
}

fn base_gradient(w: usize, h: usize, rng: &mut StdRng) -> [Plane; 3] {
    let dir = rng.gen::<f32>() * std::f32::consts::TAU;
    let (dx, dy) = (dir.cos(), dir.sin());
    let base: [f32; 3] = [
        60.0 + rng.gen::<f32>() * 140.0,
        60.0 + rng.gen::<f32>() * 140.0,
        60.0 + rng.gen::<f32>() * 140.0,
    ];
    let slope: [f32; 3] = [
        (rng.gen::<f32>() - 0.5) * 180.0,
        (rng.gen::<f32>() - 0.5) * 180.0,
        (rng.gen::<f32>() - 0.5) * 180.0,
    ];
    std::array::from_fn(|c| {
        Plane::from_fn(w, h, |x, y| {
            let t = (x as f32 * dx + y as f32 * dy) / (w + h) as f32;
            base[c] + slope[c] * t * 2.0
        })
    })
}

fn paint_ellipse(planes: &mut [Plane; 3], rng: &mut StdRng, soft: bool) {
    let (w, h) = planes[0].dims();
    let cx = rng.gen::<f32>() * w as f32;
    let cy = rng.gen::<f32>() * h as f32;
    let rx = (0.08 + rng.gen::<f32>() * 0.25) * w as f32;
    let ry = (0.08 + rng.gen::<f32>() * 0.25) * h as f32;
    let color: [f32; 3] = [
        rng.gen::<f32>() * 255.0,
        rng.gen::<f32>() * 255.0,
        rng.gen::<f32>() * 255.0,
    ];
    let edge = if soft { 0.35 } else { 0.03 };
    for y in 0..h {
        for x in 0..w {
            let nx = (x as f32 - cx) / rx;
            let ny = (y as f32 - cy) / ry;
            let d = (nx * nx + ny * ny).sqrt();
            if d < 1.0 + edge {
                let alpha = ((1.0 + edge - d) / edge).clamp(0.0, 1.0);
                for (c, plane) in planes.iter_mut().enumerate() {
                    let old = plane.get(x, y);
                    plane.set(x, y, old * (1.0 - alpha) + color[c] * alpha);
                }
            }
        }
    }
}

fn paint_rect(planes: &mut [Plane; 3], rng: &mut StdRng, color: [f32; 3]) -> (usize, usize, usize, usize) {
    let (w, h) = planes[0].dims();
    let rw = rng.gen_range(w / 10..w / 2).max(2);
    let rh = rng.gen_range(h / 10..h / 2).max(2);
    let x0 = rng.gen_range(0..w - rw.min(w - 1));
    let y0 = rng.gen_range(0..h - rh.min(h - 1));
    for y in y0..(y0 + rh).min(h) {
        for x in x0..(x0 + rw).min(w) {
            for (c, plane) in planes.iter_mut().enumerate() {
                plane.set(x, y, color[c]);
            }
        }
    }
    (x0, y0, rw, rh)
}

fn add_noise(planes: &mut [Plane; 3], amp: f32, rng: &mut StdRng) {
    for plane in planes.iter_mut() {
        for v in plane.as_mut_slice() {
            *v += (rng.gen::<f32>() - 0.5) * amp;
        }
    }
}

fn finish(mut planes: [Plane; 3]) -> Image {
    for p in &mut planes {
        p.clamp_in_place(0.0, 255.0);
    }
    Image::from_planes(planes.to_vec(), ColorSpace::Rgb).expect("planes share dimensions")
}

fn smooth_scene(w: usize, h: usize, rng: &mut StdRng) -> Image {
    let mut planes = base_gradient(w, h, rng);
    let blobs = rng.gen_range(2..5);
    for _ in 0..blobs {
        paint_ellipse(&mut planes, rng, true);
    }
    // low-frequency brightness variation (large-scale contrast is what
    // gives natural photos their costly DC differentials)
    let noise = value_noise(w, h, 2, rng);
    for plane in planes.iter_mut() {
        for (v, &n) in plane.as_mut_slice().iter_mut().zip(noise.as_slice()) {
            *v += (n - 0.5) * 70.0;
        }
    }
    add_noise(&mut planes, 2.0, rng);
    finish(planes)
}

fn natural_scene(w: usize, h: usize, rng: &mut StdRng) -> Image {
    let mut planes = base_gradient(w, h, rng);
    // horizon split: sky above, textured ground below
    let horizon = (h as f32 * (0.3 + rng.gen::<f32>() * 0.4)) as usize;
    let ground = value_noise(w, h, 4, rng);
    let tint: [f32; 3] = [
        40.0 + rng.gen::<f32>() * 120.0,
        60.0 + rng.gen::<f32>() * 120.0,
        30.0 + rng.gen::<f32>() * 80.0,
    ];
    for y in horizon..h {
        for x in 0..w {
            let n = ground.get(x, y);
            for (c, plane) in planes.iter_mut().enumerate() {
                plane.set(x, y, tint[c] * (0.5 + n));
            }
        }
    }
    for _ in 0..rng.gen_range(2..6) {
        let soft = rng.gen_bool(0.5);
        paint_ellipse(&mut planes, rng, soft);
    }
    // large-scale illumination variation
    let glow = value_noise(w, h, 2, rng);
    for plane in planes.iter_mut() {
        for (v, &n) in plane.as_mut_slice().iter_mut().zip(glow.as_slice()) {
            *v += (n - 0.5) * 60.0;
        }
    }
    add_noise(&mut planes, 2.0, rng);
    finish(planes)
}

fn texture_scene(w: usize, h: usize, rng: &mut StdRng) -> Image {
    let mut planes = base_gradient(w, h, rng);
    let fine = value_noise(w, h, 5, rng);
    let coarse = value_noise(w, h, 2, rng);
    let freq_x = 0.3 + rng.gen::<f32>() * 1.2;
    let freq_y = 0.3 + rng.gen::<f32>() * 1.2;
    for y in 0..h {
        for x in 0..w {
            let t = (x as f32 * freq_x).sin() * (y as f32 * freq_y).cos();
            let n = fine.get(x, y) - 0.5;
            let c0 = coarse.get(x, y);
            for plane in planes.iter_mut() {
                let old = plane.get(x, y);
                plane.set(x, y, old * 0.4 + 110.0 * c0 + 30.0 * n + 18.0 * t + 40.0);
            }
        }
    }
    add_noise(&mut planes, 3.0, rng);
    finish(planes)
}

fn urban_scene(w: usize, h: usize, rng: &mut StdRng) -> Image {
    let mut planes = base_gradient(w, h, rng);
    // buildings: stacked rectangles with window grids
    let buildings = rng.gen_range(3..7);
    for b in 0..buildings {
        // alternate dark and light facades so block boundaries are crisp
        let shade = if b % 2 == 0 {
            35.0 + rng.gen::<f32>() * 50.0
        } else {
            160.0 + rng.gen::<f32>() * 70.0
        };
        let color = [shade, shade * 0.95, shade * 1.05];
        let (x0, y0, rw, rh) = paint_rect(&mut planes, rng, color);
        // window grid with guaranteed contrast against the facade
        let win = if shade > 128.0 { shade - 95.0 } else { shade + 95.0 };
        let step_x = rng.gen_range(4..9);
        let step_y = rng.gen_range(4..9);
        for y in (y0 + 2..(y0 + rh).min(h)).step_by(step_y) {
            for x in (x0 + 2..(x0 + rw).min(w)).step_by(step_x) {
                for dy in 0..2usize {
                    for dx in 0..2usize {
                        let (px, py) = (x + dx, y + dy);
                        if px < w.min(x0 + rw) && py < h.min(y0 + rh) {
                            for plane in planes.iter_mut() {
                                plane.set(px, py, win);
                            }
                        }
                    }
                }
            }
        }
    }
    add_noise(&mut planes, 2.0, rng);
    finish(planes)
}

fn aerial_scene(w: usize, h: usize, rng: &mut StdRng) -> Image {
    // field base
    let field = value_noise(w, h, 3, rng);
    let mut planes: [Plane; 3] = std::array::from_fn(|c| {
        let tint = match c {
            0 => 90.0,
            1 => 120.0,
            _ => 70.0,
        };
        Plane::from_fn(w, h, |x, y| tint * (0.6 + field.get(x, y) * 0.8))
    });
    // road grid
    let road = 60.0 + rng.gen::<f32>() * 40.0;
    let spacing_x = rng.gen_range(w / 6..w / 3).max(4);
    let spacing_y = rng.gen_range(h / 6..h / 3).max(4);
    let road_w = rng.gen_range(2..4);
    let off_x = rng.gen_range(0..spacing_x);
    let off_y = rng.gen_range(0..spacing_y);
    for y in 0..h {
        for x in 0..w {
            let on_v = (x + off_x) % spacing_x < road_w;
            let on_h = (y + off_y) % spacing_y < road_w;
            if on_v || on_h {
                for plane in planes.iter_mut() {
                    plane.set(x, y, road);
                }
            }
        }
    }
    // roofs inside the grid cells
    let roofs = rng.gen_range(4..10);
    for _ in 0..roofs {
        let shade = 130.0 + rng.gen::<f32>() * 110.0;
        paint_rect(&mut planes, rng, [shade, shade * 0.8, shade * 0.7]);
    }
    add_noise(&mut planes, 2.0, rng);
    finish(planes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcdiff_metrics::laplacian::{laplacian_fit_distance, laplacian_scale};

    #[test]
    fn generation_is_deterministic() {
        for kind in [
            SceneKind::Smooth,
            SceneKind::Natural,
            SceneKind::Texture,
            SceneKind::Urban,
            SceneKind::Aerial,
        ] {
            let gen = SceneGenerator::new(kind, 48, 48);
            assert_eq!(
                gen.generate(3).plane(1).as_slice(),
                gen.generate(3).plane(1).as_slice(),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let gen = SceneGenerator::new(SceneKind::Natural, 48, 48);
        let a = gen.generate(1);
        let b = gen.generate(2);
        assert!(a.mean_abs_diff(&b) > 1.0);
    }

    #[test]
    fn scenes_stay_in_pixel_range() {
        for kind in [
            SceneKind::Smooth,
            SceneKind::Natural,
            SceneKind::Texture,
            SceneKind::Urban,
            SceneKind::Aerial,
        ] {
            let img = SceneGenerator::new(kind, 64, 64).generate(11);
            for c in 0..3 {
                assert!(img.plane(c).min() >= 0.0);
                assert!(img.plane(c).max() <= 255.0);
            }
        }
    }

    #[test]
    fn smooth_scenes_have_smaller_laplacian_scale_than_texture() {
        let smooth: f32 = (0..4)
            .map(|s| {
                laplacian_scale(
                    &SceneGenerator::new(SceneKind::Smooth, 64, 64).generate(s),
                    None,
                )
            })
            .sum::<f32>()
            / 4.0;
        let texture: f32 = (0..4)
            .map(|s| {
                laplacian_scale(
                    &SceneGenerator::new(SceneKind::Texture, 64, 64).generate(s),
                    None,
                )
            })
            .sum::<f32>()
            / 4.0;
        assert!(
            smooth < texture,
            "smooth scale {smooth} must be below texture {texture}"
        );
    }

    #[test]
    fn scenes_have_natural_image_statistics() {
        // adjacent-pixel differences should be roughly Laplacian
        for kind in [SceneKind::Smooth, SceneKind::Natural, SceneKind::Urban] {
            let img = SceneGenerator::new(kind, 96, 96).generate(5);
            let d = laplacian_fit_distance(&img);
            assert!(d < 0.45, "{kind:?} fit distance {d}");
        }
    }

    #[test]
    fn urban_scenes_contain_hard_edges() {
        let img = SceneGenerator::new(SceneKind::Urban, 64, 64).generate(9);
        let luma = img.to_gray();
        let p = luma.plane(0);
        let mut big_jumps = 0;
        for y in 0..64 {
            for x in 1..64 {
                if (p.get(x, y) - p.get(x - 1, y)).abs() > 40.0 {
                    big_jumps += 1;
                }
            }
        }
        assert!(big_jumps > 20, "urban scene needs hard edges, got {big_jumps}");
    }

    #[test]
    fn value_noise_is_normalised() {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(1);
        let n = value_noise(32, 32, 4, &mut rng);
        assert!(n.min() >= 0.0 && n.max() <= 1.0);
        assert!(n.variance() > 1e-4, "noise must not be constant");
    }
}
