//! Batched 3-D operations used by the attention block: batched matrix
//! multiply, batched transpose and a softmax over the last axis.

use std::time::Instant;

use super::matmul::transpose;
use crate::kernels::{self, sgemm, Trans};
use crate::Tensor;

impl Tensor {
    /// Batched matrix product `[N, M, K] x [N, K, P] -> [N, M, P]` on the
    /// blocked [`kernels::sgemm`]; backward reads the transposed operands
    /// through stride views (`dAᵢ = dCᵢ·Bᵢᵀ`, `dBᵢ = Aᵢᵀ·dCᵢ`) instead of
    /// materialising per-sample transposes.
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are 3-D with matching batch and inner
    /// dimensions.
    pub fn bmm(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape().len(), 3, "bmm lhs must be 3-D");
        assert_eq!(other.shape().len(), 3, "bmm rhs must be 3-D");
        let (n, m, k) = (self.shape()[0], self.shape()[1], self.shape()[2]);
        let (n2, k2, p) = (other.shape()[0], other.shape()[1], other.shape()[2]);
        assert_eq!(n, n2, "bmm batch mismatch");
        assert_eq!(k, k2, "bmm inner dimensions differ: {k} vs {k2}");
        let a = self.to_vec();
        let b = other.to_vec();
        let mut out = vec![0.0f32; n * m * p];
        let t0 = Instant::now();
        for i in 0..n {
            sgemm(
                Trans::N,
                Trans::N,
                m,
                k,
                p,
                &a[i * m * k..(i + 1) * m * k],
                &b[i * k * p..(i + 1) * k * p],
                &mut out[i * m * p..(i + 1) * m * p],
            );
        }
        kernels::metrics::record_gemm(t0.elapsed(), 2 * (n * m * k * p) as u64);
        Tensor::from_op(
            vec![n, m, p],
            out,
            vec![self.clone(), other.clone()],
            Box::new(move |g, parents| {
                let t0 = Instant::now();
                let mut flops = 0u64;
                if parents[0].tracks_grad() {
                    let mut ga = vec![0.0f32; n * m * k];
                    for i in 0..n {
                        sgemm(
                            Trans::N,
                            Trans::T,
                            m,
                            p,
                            k,
                            &g[i * m * p..(i + 1) * m * p],
                            &b[i * k * p..(i + 1) * k * p],
                            &mut ga[i * m * k..(i + 1) * m * k],
                        );
                    }
                    flops += 2 * (n * m * p * k) as u64;
                    parents[0].accumulate_grad(&ga);
                }
                if parents[1].tracks_grad() {
                    let mut gb = vec![0.0f32; n * k * p];
                    for i in 0..n {
                        sgemm(
                            Trans::T,
                            Trans::N,
                            k,
                            m,
                            p,
                            &a[i * m * k..(i + 1) * m * k],
                            &g[i * m * p..(i + 1) * m * p],
                            &mut gb[i * k * p..(i + 1) * k * p],
                        );
                    }
                    flops += 2 * (n * k * m * p) as u64;
                    parents[1].accumulate_grad(&gb);
                }
                if flops > 0 {
                    kernels::metrics::record_gemm(t0.elapsed(), flops);
                }
            }),
        )
    }

    /// Swap the last two axes of a 3-D tensor: `[N, M, K] -> [N, K, M]`.
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is 3-D.
    pub fn transpose_last2(&self) -> Tensor {
        assert_eq!(self.shape().len(), 3, "transpose_last2 expects 3-D");
        let (n, m, k) = (self.shape()[0], self.shape()[1], self.shape()[2]);
        let a = self.to_vec();
        let mut out = vec![0.0f32; n * m * k];
        for i in 0..n {
            let t = transpose(m, k, &a[i * m * k..(i + 1) * m * k]);
            out[i * m * k..(i + 1) * m * k].copy_from_slice(&t);
        }
        Tensor::from_op(
            vec![n, k, m],
            out,
            vec![self.clone()],
            Box::new(move |g, parents| {
                if parents[0].tracks_grad() {
                    let mut ga = vec![0.0f32; n * m * k];
                    for i in 0..n {
                        let t = transpose(k, m, &g[i * m * k..(i + 1) * m * k]);
                        ga[i * m * k..(i + 1) * m * k].copy_from_slice(&t);
                    }
                    parents[0].accumulate_grad(&ga);
                }
            }),
        )
    }

    /// Softmax over the last axis of a 3-D tensor (attention weights).
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is 3-D.
    pub fn softmax_last(&self) -> Tensor {
        assert_eq!(self.shape().len(), 3, "softmax_last expects 3-D");
        let shape = self.shape().to_vec();
        let k = shape[2];
        let a = self.to_vec();
        let mut out = vec![0.0f32; a.len()];
        for (row_in, row_out) in a.chunks(k).zip(out.chunks_mut(k)) {
            let max = row_in.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for (o, &v) in row_out.iter_mut().zip(row_in) {
                *o = (v - max).exp();
                sum += *o;
            }
            for o in row_out.iter_mut() {
                *o /= sum;
            }
        }
        let saved = out.clone();
        Tensor::from_op(
            shape,
            out,
            vec![self.clone()],
            Box::new(move |g, parents| {
                if parents[0].tracks_grad() {
                    // dx = s * (g - sum(g * s)) per row
                    let mut ga = vec![0.0f32; g.len()];
                    for ((grow, srow), garow) in
                        g.chunks(k).zip(saved.chunks(k)).zip(ga.chunks_mut(k))
                    {
                        let dot: f32 = grow.iter().zip(srow).map(|(&gv, &sv)| gv * sv).sum();
                        for ((ga_i, &g_i), &s_i) in garow.iter_mut().zip(grow).zip(srow) {
                            *ga_i = s_i * (g_i - dot);
                        }
                    }
                    parents[0].accumulate_grad(&ga);
                }
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::gradcheck::check_gradient;
    use crate::Tensor;

    #[test]
    fn bmm_matches_per_sample_matmul() {
        let a = Tensor::from_vec(vec![2, 2, 3], (0..12).map(|v| v as f32).collect());
        let b = Tensor::from_vec(vec![2, 3, 2], (0..12).map(|v| (v as f32) * 0.5).collect());
        let c = a.bmm(&b);
        assert_eq!(c.shape(), &[2, 2, 2]);
        // sample 0 equals plain matmul of the first slices
        let a0 = Tensor::from_vec(vec![2, 3], (0..6).map(|v| v as f32).collect());
        let b0 = Tensor::from_vec(vec![3, 2], (0..6).map(|v| (v as f32) * 0.5).collect());
        assert_eq!(&c.to_vec()[..4], a0.matmul(&b0).to_vec().as_slice());
    }

    #[test]
    fn transpose_last2_round_trip() {
        let a = Tensor::from_vec(vec![2, 2, 3], (0..12).map(|v| v as f32).collect());
        let back = a.transpose_last2().transpose_last2();
        assert_eq!(back.shape(), a.shape());
        assert_eq!(back.to_vec(), a.to_vec());
    }

    #[test]
    fn softmax_rows_sum_to_one_per_row() {
        let a = Tensor::from_vec(vec![1, 2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 5.0]);
        let s = a.softmax_last().to_vec();
        assert!((s[0..3].iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!((s[3..6].iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(s[5] > s[4] && s[2] > s[1]);
    }

    #[test]
    fn bmm_gradients_match_finite_difference() {
        let b = Tensor::from_vec(vec![2, 3, 2], (0..12).map(|v| (v as f32) * 0.3 - 1.0).collect());
        let x0: Vec<f32> = (0..12).map(|v| (v as f32) * 0.1 - 0.5).collect();
        let report = check_gradient(&[2, 2, 3], &x0, &[], 1e-3, |x| {
            x.bmm(&b).square().sum_all()
        });
        assert!(report.passes(2e-2), "{report:?}");
    }

    #[test]
    fn softmax_gradients_match_finite_difference() {
        let x0 = vec![0.5f32, -0.3, 1.2, 0.0, 0.7, -1.1];
        let w = Tensor::from_vec(vec![1, 2, 3], vec![0.3, -0.8, 0.5, 1.0, 0.2, -0.4]);
        let report = check_gradient(&[1, 2, 3], &x0, &[], 1e-3, |x| {
            x.softmax_last().mul(&w).sum_all()
        });
        assert!(report.passes(2e-2), "{report:?}");
    }

    #[test]
    fn attention_composition_gradcheck() {
        // softmax(QK^T/sqrt(d)) V through all three ops
        let k = Tensor::from_vec(vec![1, 4, 2], (0..8).map(|v| (v as f32) * 0.2 - 0.7).collect());
        let v = Tensor::from_vec(vec![1, 4, 2], (0..8).map(|v| (v as f32) * 0.1).collect());
        let x0: Vec<f32> = (0..8).map(|v| (v as f32) * 0.15 - 0.5).collect();
        let report = check_gradient(&[1, 4, 2], &x0, &[], 1e-3, |q| {
            q.bmm(&k.transpose_last2())
                .scale(1.0 / (2.0f32).sqrt())
                .softmax_last()
                .bmm(&v)
                .square()
                .sum_all()
        });
        assert!(report.passes(3e-2), "{report:?}");
    }
}
