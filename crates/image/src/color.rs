//! JPEG (JFIF) full-range BT.601 colour conversion.
//!
//! These are the exact affine transforms used by baseline JPEG: luma and
//! chroma all span `0..=255`, with chroma centred at 128.
//!
//! Two granularities are provided: the per-pixel helpers
//! ([`rgb_to_ycbcr_pixel`] / [`ycbcr_to_rgb_pixel`]) and whole-row
//! planar kernels ([`rgb_to_ycbcr_rows`] / [`ycbcr_to_rgb_rows`]) that
//! runtime-dispatch to AVX2+FMA on CPUs that support it (mirroring the
//! GEMM dispatch in `dcdiff-tensor`), falling back to the scalar pixel
//! helpers otherwise. [`simd_force_scalar`] pins the scalar tier for
//! benchmarking and parity testing.

/// Convert one RGB pixel to full-range YCbCr.
///
/// Inputs are nominally in `[0, 255]`; outputs are clamped to that range.
///
/// # Example
///
/// ```
/// use dcdiff_image::rgb_to_ycbcr_pixel;
/// let (y, cb, cr) = rgb_to_ycbcr_pixel(255.0, 255.0, 255.0);
/// assert!((y - 255.0).abs() < 0.5);
/// assert!((cb - 128.0).abs() < 0.5);
/// assert!((cr - 128.0).abs() < 0.5);
/// ```
#[inline]
pub fn rgb_to_ycbcr_pixel(r: f32, g: f32, b: f32) -> (f32, f32, f32) {
    let y = 0.299 * r + 0.587 * g + 0.114 * b;
    let cb = -0.168_735_9 * r - 0.331_264_1 * g + 0.5 * b + 128.0;
    let cr = 0.5 * r - 0.418_687_6 * g - 0.081_312_4 * b + 128.0;
    (clamp255(y), clamp255(cb), clamp255(cr))
}

/// Convert one full-range YCbCr pixel back to RGB.
///
/// Outputs are clamped to `[0, 255]`.
///
/// # Example
///
/// ```
/// use dcdiff_image::{rgb_to_ycbcr_pixel, ycbcr_to_rgb_pixel};
/// let (y, cb, cr) = rgb_to_ycbcr_pixel(10.0, 200.0, 50.0);
/// let (r, g, b) = ycbcr_to_rgb_pixel(y, cb, cr);
/// assert!((r - 10.0).abs() < 1.0 && (g - 200.0).abs() < 1.0 && (b - 50.0).abs() < 1.0);
/// ```
#[inline]
pub fn ycbcr_to_rgb_pixel(y: f32, cb: f32, cr: f32) -> (f32, f32, f32) {
    let cb = cb - 128.0;
    let cr = cr - 128.0;
    let r = y + 1.402 * cr;
    let g = y - 0.344_136_3 * cb - 0.714_136_3 * cr;
    let b = y + 1.772 * cb;
    (clamp255(r), clamp255(g), clamp255(b))
}

#[inline]
fn clamp255(v: f32) -> f32 {
    v.clamp(0.0, 255.0)
}

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// When set, the row kernels take the scalar tier regardless of CPU
/// support. Only forces *down*; there is no way to force a tier the CPU
/// did not pass detection for.
static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

fn avx2_available() -> bool {
    static DETECTED: OnceLock<bool> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

#[inline]
fn use_avx2() -> bool {
    avx2_available() && !FORCE_SCALAR.load(Ordering::Relaxed)
}

/// Pin (or unpin) the scalar colour-conversion tier for the process.
///
/// Used by `kernel_bench` to measure scalar-vs-SIMD conversion in one
/// run and by the parity tests; affects every thread.
pub fn simd_force_scalar(on: bool) {
    FORCE_SCALAR.store(on, Ordering::Relaxed);
}

/// Label of the colour-conversion tier currently dispatched to
/// (`"avx2_fma"` or `"scalar"`), for bench JSON and logs.
pub fn simd_tier_name() -> &'static str {
    if use_avx2() {
        "avx2_fma"
    } else {
        "scalar"
    }
}

/// Convert planar YCbCr rows to planar RGB, element `i` of each input
/// mapping to element `i` of each output (the planar form of
/// [`ycbcr_to_rgb_pixel`], runtime-dispatched).
///
/// # Panics
///
/// Panics if the six slices do not all share one length.
pub fn ycbcr_to_rgb_rows(
    y: &[f32],
    cb: &[f32],
    cr: &[f32],
    r: &mut [f32],
    g: &mut [f32],
    b: &mut [f32],
) {
    let n = y.len();
    assert!(
        cb.len() == n && cr.len() == n && r.len() == n && g.len() == n && b.len() == n,
        "planar rows must share one length"
    );
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: avx2+fma were confirmed by `is_x86_feature_detected!`
        // (the only way `use_avx2` returns true).
        unsafe { ycbcr_to_rgb_rows_avx2(y, cb, cr, r, g, b) };
        return;
    }
    ycbcr_to_rgb_rows_scalar(y, cb, cr, r, g, b);
}

/// Scalar tier of [`ycbcr_to_rgb_rows`]; also the parity oracle.
pub fn ycbcr_to_rgb_rows_scalar(
    y: &[f32],
    cb: &[f32],
    cr: &[f32],
    r: &mut [f32],
    g: &mut [f32],
    b: &mut [f32],
) {
    for ((((&py, &pcb), &pcr), pr), (pg, pb)) in y
        .iter()
        .zip(cb)
        .zip(cr)
        .zip(r.iter_mut())
        .zip(g.iter_mut().zip(b.iter_mut()))
    {
        let (vr, vg, vb) = ycbcr_to_rgb_pixel(py, pcb, pcr);
        *pr = vr;
        *pg = vg;
        *pb = vb;
    }
}

/// Convert planar RGB rows to planar YCbCr (the planar form of
/// [`rgb_to_ycbcr_pixel`], runtime-dispatched).
///
/// # Panics
///
/// Panics if the six slices do not all share one length.
pub fn rgb_to_ycbcr_rows(
    r: &[f32],
    g: &[f32],
    b: &[f32],
    y: &mut [f32],
    cb: &mut [f32],
    cr: &mut [f32],
) {
    let n = r.len();
    assert!(
        g.len() == n && b.len() == n && y.len() == n && cb.len() == n && cr.len() == n,
        "planar rows must share one length"
    );
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: avx2+fma were confirmed by `is_x86_feature_detected!`
        // (the only way `use_avx2` returns true).
        unsafe { rgb_to_ycbcr_rows_avx2(r, g, b, y, cb, cr) };
        return;
    }
    rgb_to_ycbcr_rows_scalar(r, g, b, y, cb, cr);
}

/// Scalar tier of [`rgb_to_ycbcr_rows`]; also the parity oracle.
pub fn rgb_to_ycbcr_rows_scalar(
    r: &[f32],
    g: &[f32],
    b: &[f32],
    y: &mut [f32],
    cb: &mut [f32],
    cr: &mut [f32],
) {
    for ((((&pr, &pg), &pb), py), (pcb, pcr)) in r
        .iter()
        .zip(g)
        .zip(b)
        .zip(y.iter_mut())
        .zip(cb.iter_mut().zip(cr.iter_mut()))
    {
        let (vy, vcb, vcr) = rgb_to_ycbcr_pixel(pr, pg, pb);
        *py = vy;
        *pcb = vcb;
        *pcr = vcr;
    }
}

/// AVX2+FMA tier of [`ycbcr_to_rgb_rows`]: 8 pixels per iteration, the
/// tail handled by the scalar helper. Uses FMA contractions of the same
/// BT.601 constants; the cross-tier difference is a few f32 ULP and is
/// bounded by the parity tests.
///
/// # Safety
///
/// Caller must ensure the CPU supports AVX2 and FMA, and that all six
/// slices have equal length (checked by the public wrapper).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
// SAFETY: unsafe fn — requires avx2+fma and six equal-length slices; the
// public wrapper checks both before calling.
unsafe fn ycbcr_to_rgb_rows_avx2(
    y: &[f32],
    cb: &[f32],
    cr: &[f32],
    r: &mut [f32],
    g: &mut [f32],
    b: &mut [f32],
) {
    use std::arch::x86_64::{
        _mm256_fmadd_ps, _mm256_fnmadd_ps, _mm256_loadu_ps, _mm256_max_ps, _mm256_min_ps,
        _mm256_set1_ps, _mm256_storeu_ps, _mm256_sub_ps,
    };
    let n = y.len();
    let c128 = _mm256_set1_ps(128.0);
    let zero = _mm256_set1_ps(0.0);
    let cmax = _mm256_set1_ps(255.0);
    let k_r_cr = _mm256_set1_ps(1.402);
    let k_g_cb = _mm256_set1_ps(0.344_136_3);
    let k_g_cr = _mm256_set1_ps(0.714_136_3);
    let k_b_cb = _mm256_set1_ps(1.772);
    let chunks = n / 8;
    for i in 0..chunks {
        let off = i * 8;
        // All six slices have length `n` (wrapper contract).
        // SAFETY: `off + 8 <= chunks * 8 <= n` keeps every 8-float
        // load/store in bounds; intrinsics are guarded by this fn's ISA.
        unsafe {
            let yv = _mm256_loadu_ps(y.as_ptr().add(off));
            let cbv = _mm256_sub_ps(_mm256_loadu_ps(cb.as_ptr().add(off)), c128);
            let crv = _mm256_sub_ps(_mm256_loadu_ps(cr.as_ptr().add(off)), c128);
            let rv = _mm256_fmadd_ps(k_r_cr, crv, yv);
            let gv = _mm256_fnmadd_ps(k_g_cr, crv, _mm256_fnmadd_ps(k_g_cb, cbv, yv));
            let bv = _mm256_fmadd_ps(k_b_cb, cbv, yv);
            _mm256_storeu_ps(
                r.as_mut_ptr().add(off),
                _mm256_min_ps(_mm256_max_ps(rv, zero), cmax),
            );
            _mm256_storeu_ps(
                g.as_mut_ptr().add(off),
                _mm256_min_ps(_mm256_max_ps(gv, zero), cmax),
            );
            _mm256_storeu_ps(
                b.as_mut_ptr().add(off),
                _mm256_min_ps(_mm256_max_ps(bv, zero), cmax),
            );
        }
    }
    let done = chunks * 8;
    ycbcr_to_rgb_rows_scalar(
        &y[done..],
        &cb[done..],
        &cr[done..],
        &mut r[done..],
        &mut g[done..],
        &mut b[done..],
    );
}

/// AVX2+FMA tier of [`rgb_to_ycbcr_rows`]; see
/// [`ycbcr_to_rgb_rows_avx2`] for the tiering/precision notes.
///
/// # Safety
///
/// Caller must ensure the CPU supports AVX2 and FMA, and that all six
/// slices have equal length (checked by the public wrapper).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
// SAFETY: unsafe fn — requires avx2+fma and six equal-length slices; the
// public wrapper checks both before calling.
unsafe fn rgb_to_ycbcr_rows_avx2(
    r: &[f32],
    g: &[f32],
    b: &[f32],
    y: &mut [f32],
    cb: &mut [f32],
    cr: &mut [f32],
) {
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_fmadd_ps, _mm256_fnmadd_ps, _mm256_loadu_ps, _mm256_max_ps,
        _mm256_min_ps, _mm256_mul_ps, _mm256_set1_ps, _mm256_storeu_ps,
    };
    let n = r.len();
    let c128 = _mm256_set1_ps(128.0);
    let zero = _mm256_set1_ps(0.0);
    let cmax = _mm256_set1_ps(255.0);
    let k_y_r = _mm256_set1_ps(0.299);
    let k_y_g = _mm256_set1_ps(0.587);
    let k_y_b = _mm256_set1_ps(0.114);
    let k_cb_r = _mm256_set1_ps(0.168_735_9);
    let k_cb_g = _mm256_set1_ps(0.331_264_1);
    let k_half = _mm256_set1_ps(0.5);
    let k_cr_g = _mm256_set1_ps(0.418_687_6);
    let k_cr_b = _mm256_set1_ps(0.081_312_4);
    let chunks = n / 8;
    for i in 0..chunks {
        let off = i * 8;
        // All six slices have length `n` (wrapper contract).
        // SAFETY: `off + 8 <= chunks * 8 <= n` keeps every 8-float
        // load/store in bounds; intrinsics are guarded by this fn's ISA.
        unsafe {
            let rv = _mm256_loadu_ps(r.as_ptr().add(off));
            let gv = _mm256_loadu_ps(g.as_ptr().add(off));
            let bv = _mm256_loadu_ps(b.as_ptr().add(off));
            let yv = _mm256_fmadd_ps(k_y_b, bv, _mm256_fmadd_ps(k_y_g, gv, _mm256_mul_ps(k_y_r, rv)));
            let cbv = _mm256_add_ps(
                _mm256_fnmadd_ps(
                    k_cb_r,
                    rv,
                    _mm256_fnmadd_ps(k_cb_g, gv, _mm256_mul_ps(k_half, bv)),
                ),
                c128,
            );
            let crv = _mm256_add_ps(
                _mm256_fnmadd_ps(
                    k_cr_b,
                    bv,
                    _mm256_fnmadd_ps(k_cr_g, gv, _mm256_mul_ps(k_half, rv)),
                ),
                c128,
            );
            _mm256_storeu_ps(
                y.as_mut_ptr().add(off),
                _mm256_min_ps(_mm256_max_ps(yv, zero), cmax),
            );
            _mm256_storeu_ps(
                cb.as_mut_ptr().add(off),
                _mm256_min_ps(_mm256_max_ps(cbv, zero), cmax),
            );
            _mm256_storeu_ps(
                cr.as_mut_ptr().add(off),
                _mm256_min_ps(_mm256_max_ps(crv, zero), cmax),
            );
        }
    }
    let done = chunks * 8;
    rgb_to_ycbcr_rows_scalar(
        &r[done..],
        &g[done..],
        &b[done..],
        &mut y[done..],
        &mut cb[done..],
        &mut cr[done..],
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primaries_map_to_standard_luma() {
        let (y, _, _) = rgb_to_ycbcr_pixel(255.0, 0.0, 0.0);
        assert!((y - 76.245).abs() < 0.1);
        let (y, _, _) = rgb_to_ycbcr_pixel(0.0, 255.0, 0.0);
        assert!((y - 149.685).abs() < 0.1);
        let (y, _, _) = rgb_to_ycbcr_pixel(0.0, 0.0, 255.0);
        assert!((y - 29.07).abs() < 0.1);
    }

    #[test]
    fn black_and_white_are_neutral() {
        assert_eq!(rgb_to_ycbcr_pixel(0.0, 0.0, 0.0), (0.0, 128.0, 128.0));
        let (y, cb, cr) = rgb_to_ycbcr_pixel(255.0, 255.0, 255.0);
        assert!((y - 255.0).abs() < 1e-3);
        assert!((cb - 128.0).abs() < 1e-3);
        assert!((cr - 128.0).abs() < 1e-3);
    }

    #[test]
    fn row_kernels_match_pixel_helpers_including_tail() {
        // 37 is deliberately not a multiple of 8: exercises the vector
        // body and the scalar tail in one call.
        let n = 37;
        let mut state = 0x9E37_79B9u32;
        let mut next = move || {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            (state >> 16) as f32 % 256.0
        };
        let y: Vec<f32> = (0..n).map(|_| next()).collect();
        let cb: Vec<f32> = (0..n).map(|_| next()).collect();
        let cr: Vec<f32> = (0..n).map(|_| next()).collect();
        let (mut r, mut g, mut b) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
        ycbcr_to_rgb_rows(&y, &cb, &cr, &mut r, &mut g, &mut b);
        for i in 0..n {
            let (er, eg, eb) = ycbcr_to_rgb_pixel(y[i], cb[i], cr[i]);
            assert!((r[i] - er).abs() < 5e-3, "r[{i}] {} vs {er}", r[i]);
            assert!((g[i] - eg).abs() < 5e-3, "g[{i}] {} vs {eg}", g[i]);
            assert!((b[i] - eb).abs() < 5e-3, "b[{i}] {} vs {eb}", b[i]);
        }
        let (mut y2, mut cb2, mut cr2) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
        rgb_to_ycbcr_rows(&r, &g, &b, &mut y2, &mut cb2, &mut cr2);
        for i in 0..n {
            let (ey, ecb, ecr) = rgb_to_ycbcr_pixel(r[i], g[i], b[i]);
            assert!((y2[i] - ey).abs() < 5e-3);
            assert!((cb2[i] - ecb).abs() < 5e-3);
            assert!((cr2[i] - ecr).abs() < 5e-3);
        }
    }

    #[test]
    fn row_kernels_saturate_like_the_scalar_path() {
        // Out-of-gamut YCbCr combinations drive R/G/B past [0,255]; both
        // tiers must clamp identically (modulo f32 noise around the rail).
        let y = [0.0f32, 255.0, 255.0, 0.0, 128.0, 255.0, 0.0, 128.0, 255.0];
        let cb = [0.0f32, 255.0, 0.0, 255.0, 255.0, 128.0, 0.0, 0.0, 255.0];
        let cr = [255.0f32, 255.0, 0.0, 0.0, 255.0, 128.0, 128.0, 255.0, 0.0];
        let n = y.len();
        let (mut r, mut g, mut b) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
        let (mut rs, mut gs, mut bs) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
        ycbcr_to_rgb_rows(&y, &cb, &cr, &mut r, &mut g, &mut b);
        ycbcr_to_rgb_rows_scalar(&y, &cb, &cr, &mut rs, &mut gs, &mut bs);
        for i in 0..n {
            assert!((r[i] - rs[i]).abs() < 5e-3);
            assert!((g[i] - gs[i]).abs() < 5e-3);
            assert!((b[i] - bs[i]).abs() < 5e-3);
            for v in [r[i], g[i], b[i]] {
                assert!((0.0..=255.0).contains(&v), "unclamped {v}");
            }
        }
    }

    #[test]
    fn force_scalar_pins_the_scalar_tier() {
        simd_force_scalar(true);
        assert_eq!(simd_tier_name(), "scalar");
        simd_force_scalar(false);
    }

    #[test]
    fn round_trip_all_grid() {
        for r in (0..=255).step_by(51) {
            for g in (0..=255).step_by(51) {
                for b in (0..=255).step_by(51) {
                    let (y, cb, cr) = rgb_to_ycbcr_pixel(r as f32, g as f32, b as f32);
                    let (r2, g2, b2) = ycbcr_to_rgb_pixel(y, cb, cr);
                    assert!((r as f32 - r2).abs() < 1.0, "r {r} {g} {b}");
                    assert!((g as f32 - g2).abs() < 1.0, "g {r} {g} {b}");
                    assert!((b as f32 - b2).abs() < 1.0, "b {r} {g} {b}");
                }
            }
        }
    }
}
