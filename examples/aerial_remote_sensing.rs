//! Aerial remote sensing: the downstream-task scenario of Table V.
//!
//! A classifier is trained on clean synthetic aerial tiles; the example
//! then measures how accuracy changes when tiles pass through the
//! DC-drop channel and are reconstructed by a statistical recovery
//! method — demonstrating that enhanced JPEG compression barely affects
//! downstream analytics.
//!
//! Run: `cargo run --release --example aerial_remote_sensing`

use dcdiff::baselines::{DcRecovery, Icip2022, SmartCom2019};
use dcdiff::data::AerialDataset;
use dcdiff::downstream::Classifier;
use dcdiff::jpeg::{ChromaSampling, CoeffImage, DcDropMode};

fn main() {
    let dataset = AerialDataset::new(32, 12);
    let train = dataset.generate(0);
    let test = dataset.generate(50_000);

    println!("training the remote-sensing classifier on {} tiles...", train.len());
    let mut clf = Classifier::new(32, dataset.num_classes(), 3);
    clf.train(&train, 10, 4);
    let clean = clf.accuracy(&test);
    println!("clean accuracy: {:.1}%", clean * 100.0);

    let methods: Vec<Box<dyn DcRecovery>> =
        vec![Box::new(SmartCom2019::new()), Box::new(Icip2022::new())];
    for method in &methods {
        let acc = clf.accuracy_under(&test, |img| {
            let coeffs = CoeffImage::from_image(img, 50, ChromaSampling::Cs444);
            method.recover(&coeffs.drop_dc(DcDropMode::KeepCorners))
        });
        println!(
            "{:<16} accuracy {:.1}% (drop {:.1} pp)",
            method.name(),
            acc * 100.0,
            (clean - acc) * 100.0
        );
    }

    // the raw channel without any recovery, for contrast
    let none = clf.accuracy_under(&test, |img| {
        let coeffs = CoeffImage::from_image(img, 50, ChromaSampling::Cs444);
        coeffs.drop_dc(DcDropMode::KeepCorners).to_image()
    });
    println!(
        "{:<16} accuracy {:.1}% (drop {:.1} pp)",
        "no recovery",
        none * 100.0,
        (clean - none) * 100.0
    );
}
