//! Cross-crate integration tests: the full sender → channel → receiver
//! pipeline, exercised through the umbrella crate's public API.

use dcdiff::baselines::{DcRecovery, Icip2022, SmartCom2019, Tip2006};
use dcdiff::core::{DcDiff, DcDiffConfig, RecoverOptions, TrainBudget};
use dcdiff::data::{DatasetProfile, SceneGenerator, SceneKind};
use dcdiff::jpeg::{
    encode_coefficients, ChromaSampling, CoeffImage, DcDropMode, JpegDecoder, JpegEncoder,
};
use dcdiff::metrics::{psnr, ssim, PerceptualDistance};

/// The sender's byte stream survives a real entropy-coded round trip and
/// the receiver recovers the exact coefficients the sender produced.
#[test]
fn bitstream_round_trip_end_to_end() {
    let image = SceneGenerator::new(SceneKind::Natural, 96, 96).generate(1);
    let encoder = JpegEncoder::new(50);
    let coeffs = encoder.to_coefficients(&image);
    let dropped = coeffs.drop_dc(DcDropMode::KeepCorners);
    let bytes = encode_coefficients(&dropped).expect("encodable");
    let received = JpegDecoder::decode_coefficients(&bytes).expect("decodable");
    for c in 0..3 {
        assert_eq!(received.plane(c), dropped.plane(c), "component {c}");
    }
}

/// Recovery methods improve on the unrecovered reconstruction where the
/// Laplacian prior holds (smooth/natural content); on hard-edged urban
/// content the *sequential* methods may lose to no-recovery — the error
/// propagation the paper targets — but the global ICIP-2022 solve must
/// still win.
#[test]
fn all_methods_beat_no_recovery_on_all_scene_kinds() {
    let methods: Vec<Box<dyn DcRecovery>> = vec![
        Box::new(Tip2006::new()),
        Box::new(SmartCom2019::new()),
        Box::new(Icip2022::new()),
    ];
    for kind in [SceneKind::Smooth, SceneKind::Natural] {
        let image = SceneGenerator::new(kind, 64, 64).generate(11);
        let coeffs = CoeffImage::from_image(&image, 50, ChromaSampling::Cs444);
        let dropped = coeffs.drop_dc(DcDropMode::KeepCorners);
        let reference = coeffs.to_image();
        let baseline = psnr(&reference, &dropped.to_image());
        for method in &methods {
            let p = psnr(&reference, &method.recover(&dropped));
            assert!(
                p > baseline,
                "{} on {kind:?}: {p} dB vs no-recovery {baseline} dB",
                method.name()
            );
        }
    }
    // urban: the global method must still beat no-recovery
    let image = SceneGenerator::new(SceneKind::Urban, 64, 64).generate(11);
    let coeffs = CoeffImage::from_image(&image, 50, ChromaSampling::Cs444);
    let dropped = coeffs.drop_dc(DcDropMode::KeepCorners);
    let reference = coeffs.to_image();
    let baseline = psnr(&reference, &dropped.to_image());
    let p = psnr(&reference, &Icip2022::new().recover(&dropped));
    assert!(p > baseline, "ICIP on Urban: {p} vs {baseline}");
}

/// Dropping DC always shrinks the coded stream — the bandwidth claim
/// behind the whole pipeline (Table II).
#[test]
fn dc_drop_always_saves_bytes() {
    for profile in dcdiff::data::all_profiles() {
        let image = &profile.with_count(1).generate(3)[0];
        let coeffs = CoeffImage::from_image(image, 50, ChromaSampling::Cs444);
        let full = encode_coefficients(&coeffs).expect("encodable").len();
        let dropped = encode_coefficients(&coeffs.drop_dc(DcDropMode::KeepCorners))
            .expect("encodable")
            .len();
        assert!(
            dropped < full,
            "{}: dropped {dropped} >= full {full}",
            profile.name()
        );
    }
}

/// The trained DCDiff system outperforms the strongest statistical
/// baseline on smooth content and is competitive elsewhere — a scaled
/// version of the Table I headline.
#[test]
fn dcdiff_recovers_better_than_baselines_on_smooth_content() {
    let config = DcDiffConfig {
        stage1_base: 8,
        latent_channels: 4,
        unet_base: 8,
        diffusion_steps: 50,
        ddim_steps: 5,
        ..DcDiffConfig::default()
    };
    let mut system = DcDiff::new(config, 3);
    let corpus = DatasetProfile::set5().with_dims(48, 48).generate(500);
    system.train(
        &corpus,
        TrainBudget {
            stage1_steps: 50,
            ldm_steps: 40,
            mld_steps: 15,
            fmpp_steps: 5,
            batch: 2,
        },
        4,
    );
    let mut options = RecoverOptions::from_config(system.config());
    options.ddim_steps = 5;

    let mut dcdiff_total = 0.0f32;
    let mut icip_total = 0.0f32;
    for seed in 0..3u64 {
        let image = SceneGenerator::new(SceneKind::Smooth, 48, 48).generate(7_000 + seed);
        let coeffs = CoeffImage::from_image(&image, 50, ChromaSampling::Cs444);
        let dropped = coeffs.drop_dc(DcDropMode::KeepCorners);
        let reference = coeffs.to_image();
        dcdiff_total += psnr(&reference, &system.recover_with(&dropped, &options));
        icip_total += psnr(&reference, &Icip2022::new().recover(&dropped));
    }
    assert!(
        dcdiff_total > icip_total - 1.5,
        "dcdiff {dcdiff_total} must be competitive with icip {icip_total}"
    );
}

/// Recovered images keep structural similarity high even when pixel
/// values drift (the SSIM column of Table I).
#[test]
fn recovery_preserves_structure() {
    let image = SceneGenerator::new(SceneKind::Aerial, 64, 64).generate(21);
    let coeffs = CoeffImage::from_image(&image, 50, ChromaSampling::Cs444);
    let dropped = coeffs.drop_dc(DcDropMode::KeepCorners);
    let reference = coeffs.to_image();
    let recovered = Icip2022::new().recover(&dropped);
    assert!(ssim(&reference, &recovered) > 0.8);
}

/// The perceptual metric ranks an over-smoothed reconstruction worse than
/// a detail-preserving one (the LPIPS story of Table I).
#[test]
fn perceptual_metric_prefers_detail_preservation() {
    let image = SceneGenerator::new(SceneKind::Texture, 64, 64).generate(30);
    let coeffs = CoeffImage::from_image(&image, 50, ChromaSampling::Cs444);
    let reference = coeffs.to_image();
    let dropped = coeffs.drop_dc(DcDropMode::KeepCorners);
    // detail-preserving: statistical recovery keeps AC exactly
    let preserved = Icip2022::new().recover(&dropped);
    // over-smoothing: box blur of the recovered image
    let blurred = {
        let planes: Vec<_> = preserved
            .planes()
            .iter()
            .map(|p| {
                dcdiff::image::Plane::from_fn(p.width(), p.height(), |x, y| {
                    let mut acc = 0.0;
                    for dy in -1isize..=1 {
                        for dx in -1isize..=1 {
                            acc += p.get_clamped(x as isize + dx, y as isize + dy);
                        }
                    }
                    acc / 9.0
                })
            })
            .collect();
        dcdiff::image::Image::from_planes(planes, preserved.color_space()).expect("same dims")
    };
    let metric = PerceptualDistance::default();
    assert!(
        metric.distance(&reference, &blurred) > metric.distance(&reference, &preserved),
        "smoothing must cost perceptual quality"
    );
}

/// Checkpointing a whole DCDiff system preserves its behaviour across a
/// fresh process (save → load → identical recovery).
#[test]
fn full_system_checkpoint_round_trip() {
    let config = DcDiffConfig {
        stage1_base: 8,
        latent_channels: 4,
        unet_base: 8,
        diffusion_steps: 20,
        ddim_steps: 4,
        ..DcDiffConfig::default()
    };
    let mut a = DcDiff::new(config.clone(), 8);
    let corpus = DatasetProfile::set5().with_dims(32, 32).generate(2);
    a.train(
        &corpus,
        TrainBudget {
            stage1_steps: 4,
            ldm_steps: 4,
            mld_steps: 2,
            fmpp_steps: 1,
            batch: 1,
        },
        5,
    );
    let ckpt = a.save();
    let mut b = DcDiff::new(config, 12345);
    b.load(&ckpt).expect("compatible checkpoint");
    let image = SceneGenerator::new(SceneKind::Smooth, 32, 32).generate(2);
    let coeffs = CoeffImage::from_image(&image, 50, ChromaSampling::Cs444);
    let dropped = coeffs.drop_dc(DcDropMode::KeepCorners);
    let mut options = RecoverOptions::from_config(a.config());
    options.ddim_steps = 3;
    assert!(
        a.recover_with(&dropped, &options)
            .mean_abs_diff(&b.recover_with(&dropped, &options))
            < 1e-3
    );
}
