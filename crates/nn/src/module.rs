use dcdiff_tensor::serial::{Checkpoint, CheckpointError};
use dcdiff_tensor::Tensor;

/// A trainable network component.
///
/// Modules expose their parameters for optimizers and serialise into a
/// [`Checkpoint`] under a hierarchical name prefix
/// (`"unet.down0.conv1"` …).
pub trait Module {
    /// All trainable parameters, in a stable order.
    fn params(&self) -> Vec<Tensor>;

    /// Record every parameter into `ckpt` under `prefix`.
    fn save(&self, prefix: &str, ckpt: &mut Checkpoint);

    /// Restore every parameter from `ckpt` under `prefix`.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Mismatch`] when a parameter is missing
    /// or has the wrong shape.
    fn load(&self, prefix: &str, ckpt: &Checkpoint) -> Result<(), CheckpointError>;

    /// Total number of scalar parameters (for reporting).
    fn param_count(&self) -> usize {
        self.params().iter().map(Tensor::len).sum()
    }
}

/// Join a prefix and a leaf name with `.`, eliding empty prefixes.
pub(crate) fn scoped(prefix: &str, name: &str) -> String {
    if prefix.is_empty() {
        name.to_string()
    } else {
        format!("{prefix}.{name}")
    }
}
