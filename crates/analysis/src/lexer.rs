//! A std-only Rust lexer sufficient for lint-grade analysis.
//!
//! The rules in this crate must never fire inside comments or string
//! literals (a doc example containing `unwrap()` is not a violation), and
//! must never *miss* code because of surrounding syntax. That forces the
//! lexer to get the genuinely tricky parts of Rust's lexical grammar right:
//!
//! * raw strings `r"…"` / `r#"…"#` with arbitrarily many `#`s (and their
//!   byte-string variants `br#"…"#`) — a raw string may contain `"` and
//!   even `unsafe fn` without ending;
//! * nested block comments `/* /* … */ */`, which C-family lexers get
//!   wrong;
//! * the `'` ambiguity: `'a'` is a char literal, `'a` is a lifetime, and
//!   `'\n'`, `b'x'`, `'\u{1F600}'` are chars again;
//! * raw identifiers `r#type` (not a raw string).
//!
//! Comments are not tokens: they are collected into a side list with line
//! numbers, because two rules read them (`// analysis: allow(...)`
//! annotations and `// SAFETY:` justifications).

/// Classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, prefix stripped).
    Ident,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`, `br"…"`).
    Str,
    /// Character or byte literal (`'x'`, `b'\xFF'`).
    Char,
    /// Lifetime (`'a`, `'_`, `'static`).
    Lifetime,
    /// Numeric literal.
    Num,
    /// A single punctuation byte (`.`, `(`, `[`, `{`, `!`, …).
    Punct,
}

/// One token: kind, byte span into the source, and 1-based line number.
#[derive(Debug, Clone)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
}

/// One comment (line or block), with the lines it spans.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line of `//` or `/*`.
    pub line: u32,
    /// 1-based line the comment ends on (same as `line` for `//`).
    pub line_end: u32,
    /// Full comment text including the delimiters.
    pub text: String,
}

/// Token stream plus comment side-list for one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order; comments and whitespace removed.
    pub tokens: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// Text of token `i` within `src`.
    pub fn text<'a>(&self, src: &'a str, i: usize) -> &'a str {
        let t = &self.tokens[i];
        &src[t.start..t.end]
    }
}

/// Lex `src` into tokens and comments.
///
/// The lexer is total: any byte sequence produces *some* token stream (an
/// unterminated string simply runs to end of file), so a syntactically
/// broken file degrades to weaker analysis instead of an error.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(self.pos),
                b'\'' => self.quote(),
                b'0'..=b'9' => self.number(),
                c if ident_start(c) => self.ident_or_prefixed(),
                _ => {
                    self.push(TokKind::Punct, self.pos, self.pos + 1);
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, start: usize, end: usize) {
        self.out.tokens.push(Tok {
            kind,
            start,
            end,
            line: self.line,
        });
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
            self.pos += 1;
        }
        self.out.comments.push(Comment {
            line: self.line,
            line_end: self.line,
            text: String::from_utf8_lossy(&self.src[start..self.pos]).into_owned(),
        });
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        let line_start = self.line;
        self.pos += 2;
        let mut depth = 1u32;
        while self.pos < self.src.len() && depth > 0 {
            match (self.src[self.pos], self.peek(1)) {
                (b'/', Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (b'*', Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (b'\n', _) => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.out.comments.push(Comment {
            line: line_start,
            line_end: self.line,
            text: String::from_utf8_lossy(&self.src[start..self.pos]).into_owned(),
        });
    }

    /// Cooked string starting at `"`; `tok_start` may precede it (`b"…"`).
    fn string(&mut self, tok_start: usize) {
        let line = self.line;
        self.pos += 1; // opening quote
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => self.pos += 2,
                b'"' => {
                    self.pos += 1;
                    break;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.out.tokens.push(Tok {
            kind: TokKind::Str,
            start: tok_start,
            end: self.pos,
            line,
        });
    }

    /// Raw string starting at `r`'s hashes: `pos` sits on the first `#` or
    /// the `"`. `tok_start` covers the `r`/`br` prefix.
    fn raw_string(&mut self, tok_start: usize) {
        let line = self.line;
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        let closer: Vec<u8> = std::iter::once(b'"')
            .chain(std::iter::repeat_n(b'#', hashes))
            .collect();
        while self.pos < self.src.len() {
            if self.src[self.pos] == b'\n' {
                self.line += 1;
                self.pos += 1;
                continue;
            }
            if self.src[self.pos] == b'"' && self.src[self.pos..].starts_with(&closer) {
                self.pos += closer.len();
                break;
            }
            self.pos += 1;
        }
        self.out.tokens.push(Tok {
            kind: TokKind::Str,
            start: tok_start,
            end: self.pos,
            line,
        });
    }

    /// `'` — lifetime or char literal. A lifetime is `'` + ident not
    /// followed by a closing `'`; everything else is a char literal.
    fn quote(&mut self) {
        let start = self.pos;
        let line = self.line;
        // `'` + ident-start + (ident-continue)* not ending in `'` = lifetime.
        if let Some(c1) = self.peek(1) {
            if ident_start(c1) {
                // scan the would-be lifetime body
                let mut j = self.pos + 2;
                while j < self.src.len() && ident_continue(self.src[j]) {
                    j += 1;
                }
                if self.src.get(j) != Some(&b'\'') {
                    self.push(TokKind::Lifetime, start, j);
                    self.pos = j;
                    return;
                }
            }
        }
        // Char literal: consume until closing quote, honouring escapes.
        self.pos += 1;
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => self.pos += 2,
                b'\'' => {
                    self.pos += 1;
                    break;
                }
                b'\n' => break, // stray quote; don't swallow the file
                _ => self.pos += 1,
            }
        }
        self.out.tokens.push(Tok {
            kind: TokKind::Char,
            start,
            end: self.pos,
            line,
        });
    }

    fn number(&mut self) {
        let start = self.pos;
        // Good enough for lint purposes: digits, hex/bin/oct letters,
        // underscores, one dot (not `..`), and type suffixes.
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            let fraction_dot = c == b'.'
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                && !self.src[start..self.pos].contains(&b'.');
            if c.is_ascii_alphanumeric() || c == b'_' || fraction_dot {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.push(TokKind::Num, start, self.pos);
    }

    fn ident_or_prefixed(&mut self) {
        let start = self.pos;
        while self.pos < self.src.len() && ident_continue(self.src[self.pos]) {
            self.pos += 1;
        }
        let word = &self.src[start..self.pos];
        match self.peek(0) {
            // r"…", br"…", r#"…"#, br#"…"#  — raw (byte) strings.
            Some(b'"') if word == b"r" || word == b"br" => self.raw_string(start),
            Some(b'#') if word == b"r" || word == b"br" => {
                // distinguish raw string `r#"` from raw identifier `r#type`
                let mut j = self.pos;
                while self.src.get(j) == Some(&b'#') {
                    j += 1;
                }
                if self.src.get(j) == Some(&b'"') {
                    self.raw_string(start);
                } else if word == b"r" {
                    // raw identifier: consume `#` + ident
                    self.pos += 1;
                    while self.pos < self.src.len() && ident_continue(self.src[self.pos]) {
                        self.pos += 1;
                    }
                    self.push(TokKind::Ident, start, self.pos);
                } else {
                    self.push(TokKind::Ident, start, self.pos);
                }
            }
            // b"…" cooked byte string, b'…' byte char.
            Some(b'"') if word == b"b" => self.string(start),
            Some(b'\'') if word == b"b" => {
                self.pos += 1; // consume the quote; then reuse char logic
                while self.pos < self.src.len() {
                    match self.src[self.pos] {
                        b'\\' => self.pos += 2,
                        b'\'' => {
                            self.pos += 1;
                            break;
                        }
                        b'\n' => break,
                        _ => self.pos += 1,
                    }
                }
                self.push(TokKind::Char, start, self.pos);
            }
            _ => self.push(TokKind::Ident, start, self.pos),
        }
    }
}

fn ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        let lexed = lex(src);
        lexed
            .tokens
            .iter()
            .map(|t| (t.kind, src[t.start..t.end].to_string()))
            .collect()
    }

    #[test]
    fn raw_string_containing_unsafe_is_one_token() {
        let src = r##"let s = r#"unsafe fn panic!() { unwrap() }"#;"##;
        let toks = kinds(src);
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].1.contains("unsafe fn"));
        // no `unsafe` / `unwrap` identifier leaked out of the string
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && (t == "unsafe" || t == "unwrap")));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let src = "/* outer /* inner */ still comment */ fn f() {}";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("still comment"));
        let idents: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| &src[t.start..t.end])
            .collect();
        assert_eq!(idents, vec!["fn", "f"]);
    }

    #[test]
    fn commented_out_panic_is_not_a_token() {
        let src = "// panic!(\"nope\")\nlet x = 1; /* unwrap() */";
        let lexed = lex(src);
        assert!(!lexed
            .tokens
            .iter()
            .any(|t| src[t.start..t.end].contains("panic") || src[t.start..t.end] == *"unwrap"));
        assert_eq!(lexed.comments.len(), 2);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }  let nl = '\\n'; let u = '\\u{1F600}';";
        let toks = kinds(src);
        let lifetimes: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).collect();
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Char).collect();
        assert_eq!(lifetimes.len(), 2, "{toks:?}");
        assert_eq!(chars.len(), 3, "{toks:?}");
        assert_eq!(chars[0].1, "'x'");
    }

    #[test]
    fn static_lifetime_and_underscore() {
        let toks = kinds("&'static str, &'_ T");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(lifetimes, vec!["'static", "'_"]);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds(r##"let a = b"bytes"; let c = b'\xFF'; let r = br#"raw"#;"##);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Str && t.starts_with("b\"")));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Char && t.starts_with("b'")));
    }

    #[test]
    fn raw_identifier_is_not_a_raw_string() {
        let toks = kinds("let r#type = 1;");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "r#type"));
        assert!(!toks.iter().any(|(k, _)| *k == TokKind::Str));
    }

    #[test]
    fn strings_with_escaped_quotes() {
        let toks = kinds(r#"let s = "he said \"hi\" // not a comment";"#);
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].1.contains("not a comment"));
        let lexed = lex(r#"let s = "he said \"hi\" // not a comment";"#);
        assert!(lexed.comments.is_empty());
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "let a = 1;\nlet s = \"two\nlines\";\nlet b = 2;";
        let lexed = lex(src);
        let b_tok = lexed
            .tokens
            .iter()
            .find(|t| &src[t.start..t.end] == "b")
            .unwrap();
        assert_eq!(b_tok.line, 4);
    }

    #[test]
    fn shift_operators_and_generic_closes_keep_idents_intact() {
        let src = "let x = a >> 2; let v: Vec<Vec<u8>> = Vec::new();";
        let toks = kinds(src);
        let idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(
            idents,
            vec!["let", "x", "a", "let", "v", "Vec", "Vec", "u8", "Vec", "new"]
        );
    }

    #[test]
    fn multi_hash_raw_strings() {
        let src = r###"let s = r##"contains "# inside"##;"###;
        let toks = kinds(src);
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].1.contains("inside"));
    }
}
