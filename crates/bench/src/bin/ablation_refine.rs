//! Design ablation — the masked-Laplacian refinement energy.
//!
//! `DESIGN.md` §2b claims the refinement's edge statistics need all
//! three mechanisms (adaptive trend, activity weighting, masked
//! consensus) to dominate the ICIP-2022 convex relaxation everywhere.
//! This binary toggles each mechanism individually over the five scene
//! classes and prints the PSNR each variant reaches with a neutral
//! prior, alongside the ICIP reference.
//!
//! Usage: `cargo run --release -p dcdiff-bench --bin ablation_refine [-- --quick]`

use dcdiff_baselines::{DcRecovery, Icip2022};
use dcdiff_bench::{quick_mode, render_table, QUALITY};
use dcdiff_core::{refine_dc_offsets_with, RefineConfig};
use dcdiff_data::{SceneGenerator, SceneKind};
use dcdiff_jpeg::{ChromaSampling, CoeffImage, DcDropMode};
use dcdiff_metrics::psnr;

fn main() {
    let quick = quick_mode();
    let per_kind = if quick { 2 } else { 5 };
    let variants: [(&str, RefineConfig); 5] = [
        ("full", RefineConfig::default()),
        (
            "w/o trend",
            RefineConfig {
                trend: false,
                ..RefineConfig::default()
            },
        ),
        (
            "w/o activity",
            RefineConfig {
                activity: false,
                ..RefineConfig::default()
            },
        ),
        (
            "w/o consensus",
            RefineConfig {
                consensus: false,
                ..RefineConfig::default()
            },
        ),
        (
            "none (plain LS)",
            RefineConfig {
                trend: false,
                activity: false,
                consensus: false,
            },
        ),
    ];

    let kinds = [
        ("Smooth", SceneKind::Smooth),
        ("Natural", SceneKind::Natural),
        ("Texture", SceneKind::Texture),
        ("Urban", SceneKind::Urban),
        ("Aerial", SceneKind::Aerial),
    ];

    let mut rows = Vec::new();
    for (kind_name, kind) in kinds {
        let mut scores = vec![0.0f64; variants.len() + 1];
        for seed in 0..per_kind as u64 {
            let image = SceneGenerator::new(kind, 96, 96).generate(seed * 37 + 11);
            let coeffs = CoeffImage::from_image(&image, QUALITY, ChromaSampling::Cs444);
            let dropped = coeffs.drop_dc(DcDropMode::KeepCorners);
            let reference = coeffs.to_image();
            for (vi, (_, config)) in variants.iter().enumerate() {
                let refined =
                    refine_dc_offsets_with(&dropped, &dropped, 10.0, 5e-4, 300, *config);
                scores[vi] += psnr(&reference, &refined.to_image()) as f64;
            }
            scores[variants.len()] +=
                psnr(&reference, &Icip2022::new().recover(&dropped)) as f64;
        }
        let mut row = vec![kind_name.to_string()];
        for s in &scores {
            row.push(format!("{:.2}", s / per_kind as f64));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            &format!(
                "Refinement-energy ablation (PSNR dB, neutral prior, {per_kind} scenes/class)"
            ),
            &[
                "Content",
                "full",
                "w/o trend",
                "w/o activity",
                "w/o consensus",
                "plain LS",
                "ICIP 2022",
            ],
            &rows,
        )
    );
}
