//! dcdiff-analysis: the workspace's own static-analysis engine.
//!
//! `cargo clippy` checks general Rust hygiene; this crate checks the
//! *project's* contracts — the invariants this workspace commits to that
//! no generic linter knows about:
//!
//! * **`no-panic`** — the crates that parse untrusted bytes or execute
//!   jobs must be panic-free: no `unwrap`/`expect`, no panicking macros.
//! * **`no-unchecked-index`** — the entropy-decode hot path must not use
//!   `x[i]` indexing; malformed input must surface as a `JpegError`.
//! * **`unsafe-audit`** — every `unsafe` site carries an adjacent
//!   `// SAFETY:` justification.
//! * **`unsafe-ledger`** — every `unsafe` site is reconciled against the
//!   committed [`UNSAFE_LEDGER.md`] by content hash, so edited unsafe code
//!   forces a re-review.
//! * **`lock-hygiene`** — no `.lock().unwrap()`: poisoned locks are
//!   recovered, not re-panicked.
//! * **`condvar-wait-loop`** — `Condvar::wait` happens inside a loop.
//! * **`telemetry-names`** — span/metric name literals come from the
//!   registry in [`dcdiff_telemetry::names`].
//! * **`bad-allow`** — the escape hatch itself is checked: an exemption
//!   comment must name a real rule and give a reason.
//!
//! The engine is built from scratch on a hand-written lexer ([`lexer`])
//! and a lightweight structural scanner ([`parse`]) — no rustc internals,
//! no external parser — so it runs anywhere the workspace builds and adds
//! nothing to the dependency tree. Entry point: [`analyze_workspace`];
//! the `dcdiff lint` subcommand is a thin shell around it.
//!
//! [`UNSAFE_LEDGER.md`]: https://github.com/dcdiff/dcdiff/blob/main/UNSAFE_LEDGER.md

pub mod config;
pub mod diag;
pub mod ledger;
pub mod lexer;
pub mod parse;
pub mod rules;

use std::path::{Path, PathBuf};

pub use config::{Config, RULES};
pub use diag::{Diagnostic, Report};

/// Name of the committed ledger file at the workspace root.
pub const LEDGER_FILE: &str = "UNSAFE_LEDGER.md";

/// Lint the workspace rooted at `root` under `cfg`.
///
/// Scans every `.rs` file (skipping `target/` and dot-directories), runs
/// the in-scope rules per file, then reconciles the collected unsafe
/// sites against `UNSAFE_LEDGER.md`.
///
/// # Errors
///
/// Returns a message when the root cannot be walked or a source file
/// cannot be read; individual non-UTF-8 files are skipped silently (the
/// workspace has none).
pub fn analyze_workspace(root: &Path, cfg: &Config) -> Result<Report, String> {
    let files = walk(root)?;
    let mut report = Report::default();
    let mut sites: Vec<(String, parse::UnsafeSite)> = Vec::new();
    for path in &files {
        let rel = relative(root, path);
        let Ok(src) = std::fs::read_to_string(path) else {
            continue; // non-UTF-8 (none in this workspace)
        };
        report.files += 1;
        let mut findings = rules::check_file(&rel, &src, cfg);
        report.diagnostics.append(&mut findings.diagnostics);
        report.allows_used += findings.allows_used;
        sites.extend(findings.unsafe_sites.into_iter().map(|s| (rel.clone(), s)));
    }

    if cfg.rule_enabled("unsafe-ledger") {
        match std::fs::read_to_string(root.join(LEDGER_FILE)) {
            Ok(text) => ledger::reconcile(&sites, &ledger::parse(&text), &mut report.diagnostics),
            Err(_) if sites.is_empty() => {}
            Err(_) => report.diagnostics.push(Diagnostic {
                rule: "unsafe-ledger",
                file: LEDGER_FILE.to_string(),
                line: 1,
                message: format!(
                    "{LEDGER_FILE} not found but the workspace has {} unsafe site(s)",
                    sites.len()
                ),
                snippet: String::new(),
                hint: "seed it with `dcdiff lint --update-ledger`".to_string(),
            }),
        }
    }

    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

/// Render a fresh `UNSAFE_LEDGER.md` for the workspace at `root`,
/// preserving justifications of unchanged sites from the existing ledger.
///
/// # Errors
///
/// Returns a message when the root cannot be walked.
pub fn generate_ledger(root: &Path, cfg: &Config) -> Result<String, String> {
    let mut sites = Vec::new();
    for path in walk(root)? {
        let rel = relative(root, &path);
        if !cfg.in_scope("unsafe-ledger", &rel) {
            continue;
        }
        let Ok(src) = std::fs::read_to_string(&path) else {
            continue;
        };
        let model = parse::FileModel::build(&src);
        sites.extend(model.unsafe_sites.into_iter().map(|s| (rel.clone(), s)));
    }
    let existing = std::fs::read_to_string(root.join(LEDGER_FILE))
        .map(|t| ledger::parse(&t))
        .unwrap_or_default();
    Ok(ledger::generate(&sites, &existing))
}

/// Workspace-relative path with forward slashes.
fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// All `.rs` files under `root`, sorted, skipping `target` and
/// dot-directories.
fn walk(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = std::fs::read_dir(&dir)
            .map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("walk error under {}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    /// Build a throwaway workspace under the target-adjacent temp dir.
    struct TempWs {
        root: PathBuf,
    }

    impl TempWs {
        fn new(tag: &str) -> TempWs {
            let root = std::env::temp_dir().join(format!(
                "dcdiff-analysis-{tag}-{}",
                std::process::id()
            ));
            let _ = fs::remove_dir_all(&root);
            fs::create_dir_all(&root).unwrap();
            TempWs { root }
        }

        fn write(&self, rel: &str, content: &str) {
            let path = self.root.join(rel);
            fs::create_dir_all(path.parent().unwrap()).unwrap();
            fs::write(path, content).unwrap();
        }
    }

    impl Drop for TempWs {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.root);
        }
    }

    #[test]
    fn seeded_violation_fixture_fails_the_lint() {
        let ws = TempWs::new("seeded");
        ws.write(
            "crates/jpeg/src/codec.rs",
            "pub fn decode(b: &[u8]) -> u8 { b.first().copied().unwrap() }\n",
        );
        let report = analyze_workspace(&ws.root, &Config::default_workspace()).unwrap();
        assert!(!report.is_clean());
        assert_eq!(report.diagnostics[0].rule, "no-panic");
        assert!(report.to_json().contains("\"violations\":1"));
    }

    #[test]
    fn clean_fixture_passes_and_counts_files() {
        let ws = TempWs::new("clean");
        ws.write(
            "crates/jpeg/src/codec.rs",
            "pub fn decode(b: &[u8]) -> u8 { b.first().copied().unwrap_or(0) }\n",
        );
        ws.write("crates/cli/src/main.rs", "fn main() { None::<u8>.unwrap(); }\n");
        let report = analyze_workspace(&ws.root, &Config::default_workspace()).unwrap();
        assert!(report.is_clean(), "{:?}", report.diagnostics);
        assert_eq!(report.files, 2);
    }

    #[test]
    fn missing_ledger_with_unsafe_sites_is_a_violation() {
        let ws = TempWs::new("noledger");
        ws.write(
            "crates/tensor/src/kernels/x.rs",
            "pub fn f(p: *const u8) -> u8 {\n    // SAFETY: caller contract\n    unsafe { *p }\n}\n",
        );
        let report = analyze_workspace(&ws.root, &Config::default_workspace()).unwrap();
        assert_eq!(report.diagnostics.len(), 1, "{:?}", report.diagnostics);
        assert_eq!(report.diagnostics[0].rule, "unsafe-ledger");
        assert!(report.diagnostics[0].message.contains("not found"));
    }

    #[test]
    fn generated_ledger_reconciles_clean() {
        let ws = TempWs::new("ledger");
        ws.write(
            "crates/tensor/src/kernels/x.rs",
            "pub fn f(p: *const u8) -> u8 {\n    // SAFETY: caller contract\n    unsafe { *p }\n}\n",
        );
        let cfg = Config::default_workspace();
        let ledger = generate_ledger(&ws.root, &cfg).unwrap();
        fs::write(ws.root.join(LEDGER_FILE), ledger).unwrap();
        let report = analyze_workspace(&ws.root, &cfg).unwrap();
        assert!(report.is_clean(), "{:?}", report.diagnostics);
    }

    #[test]
    fn rule_filter_runs_only_the_named_rule() {
        let ws = TempWs::new("filter");
        ws.write(
            "crates/jpeg/src/codec.rs",
            "pub fn f(b: &[u8]) -> u8 { b.first().copied().unwrap() }\n",
        );
        ws.write(
            "crates/tensor/src/kernels/x.rs",
            "pub fn g(p: *const u8) -> u8 { unsafe { *p } }\n",
        );
        let mut cfg = Config::default_workspace();
        cfg.only = Some("no-panic".to_string());
        let report = analyze_workspace(&ws.root, &cfg).unwrap();
        assert!(report.diagnostics.iter().all(|d| d.rule == "no-panic"));
        assert_eq!(report.diagnostics.len(), 1);
    }
}
