//! Bitstream surgery: losslessly transform an existing JPEG file into its
//! DC-dropped form — no pixel re-encode, no generation loss.
//!
//! This is exactly what a bandwidth-constrained relay (or the camera's
//! own firmware) would do: decode the entropy layer only, zero the DC
//! levels, re-code. The AC coefficients are bit-identical before and
//! after; a DC thumbnail shows what information left the stream.
//!
//! Run: `cargo run --release --example bitstream_surgery`

use dcdiff::data::{SceneGenerator, SceneKind};
use dcdiff::image::write_ppm;
use dcdiff::jpeg::{
    encode_coefficients, encode_coefficients_optimized, DcDropMode, JpegDecoder, JpegEncoder,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // stand-in for "an existing JPEG file on disk"
    let scene = SceneGenerator::new(SceneKind::Natural, 128, 96).generate(2024);
    let original_file = JpegEncoder::new(50).encode(&scene)?;
    println!("input JPEG: {} bytes", original_file.len());

    // --- the surgery: entropy-decode, drop DC, entropy-encode ---
    let coeffs = JpegDecoder::decode_coefficients(&original_file)?;
    let dropped = coeffs.drop_dc(DcDropMode::KeepCorners);
    let surgered = encode_coefficients(&dropped)?;
    let surgered_opt = encode_coefficients_optimized(&dropped)?;
    println!(
        "DC-dropped:  {} bytes ({:.1}% of input)",
        surgered.len(),
        100.0 * surgered.len() as f64 / original_file.len() as f64
    );
    println!(
        "  + optimised Huffman tables: {} bytes ({:.1}%)",
        surgered_opt.len(),
        100.0 * surgered_opt.len() as f64 / original_file.len() as f64
    );

    // --- verify the surgery was lossless on AC ---
    let reparsed = JpegDecoder::decode_coefficients(&surgered)?;
    let mut ac_mismatch = 0usize;
    for c in 0..3 {
        for by in 0..coeffs.plane(c).blocks_y() {
            for bx in 0..coeffs.plane(c).blocks_x() {
                if coeffs.plane(c).block(bx, by)[1..] != reparsed.plane(c).block(bx, by)[1..] {
                    ac_mismatch += 1;
                }
            }
        }
    }
    println!("AC blocks altered by the surgery: {ac_mismatch} (must be 0)");
    assert_eq!(ac_mismatch, 0);

    // --- what a relay sees when the uplink dies mid-transfer ---
    // The decoder never panics on damaged input; it returns a typed error
    // whose kind drives the runtime's retry decision (truncated streams are
    // transient — the rest of the bytes may still arrive).
    let cut = &surgered[..surgered.len() * 2 / 3];
    let err = JpegDecoder::decode_coefficients(cut).expect_err("cut stream cannot parse");
    println!(
        "truncated upload: kind={:?}, retryable={} ({err})",
        err.kind(),
        err.is_transient()
    );
    assert!(err.is_transient());

    // --- what left the stream: the DC thumbnail ---
    let out_dir = std::env::temp_dir().join("dcdiff-bitstream-surgery");
    std::fs::create_dir_all(&out_dir)?;
    write_ppm(out_dir.join("dc-thumbnail.ppm"), &coeffs.dc_thumbnail())?;
    write_ppm(out_dir.join("x-tilde.ppm"), &dropped.to_image())?;
    println!("wrote dc-thumbnail.ppm and x-tilde.ppm to {}", out_dir.display());
    Ok(())
}
