//! Integration tests for dcdiff-telemetry: concurrent recording loses no
//! samples, histogram quantile edge cases and regression pins, and span
//! nesting produces well-formed parent/child JSONL.

use std::str::FromStr as _;
use std::sync::Arc;
use std::thread;

use dcdiff_telemetry::{EventKind, Telemetry, TraceEvent, TraceReport};

const THREADS: usize = 8;
const RECORDS: usize = 5_000;

#[test]
fn concurrent_counters_and_histograms_lose_no_samples() {
    let tel = Arc::new(Telemetry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let tel = Arc::clone(&tel);
            thread::spawn(move || {
                let counter = tel.counter("test.ops");
                let histogram = tel.histogram("test.latency_us");
                for i in 0..RECORDS {
                    counter.inc();
                    histogram.record((t * RECORDS + i) as u64);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let n = (THREADS * RECORDS) as u64;
    assert_eq!(tel.counter("test.ops").get(), n);
    let snap = tel.histogram("test.latency_us").snapshot();
    assert_eq!(snap.count, n);
    // Sum of 0..n-1.
    assert_eq!(snap.sum, n * (n - 1) / 2);
    assert_eq!(snap.min, 0);
    assert_eq!(snap.max, n - 1);
}

#[test]
fn quantile_edge_cases() {
    let tel = Telemetry::new();

    // Empty histogram has no quantiles.
    let empty = tel.histogram("edge.empty");
    assert_eq!(empty.quantile(0.5), None);

    // A single sample is reported exactly at every p.
    let single = tel.histogram("edge.single");
    single.record(123);
    for p in [0.0, 0.5, 0.99, 1.0] {
        assert_eq!(single.quantile(p), Some(123));
    }

    // All-equal samples are reported exactly at every p (clamped to the
    // observed min == max despite bucket interpolation).
    let equal = tel.histogram("edge.equal");
    for _ in 0..1000 {
        equal.record(700);
    }
    for p in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
        assert_eq!(equal.quantile(p), Some(700));
    }

    // Out-of-range p is clamped, not a panic.
    assert_eq!(equal.quantile(-1.0), Some(700));
    assert_eq!(equal.quantile(2.0), Some(700));
}

/// Regression pin for the shared quantile math that `runtime_bench` and the
/// metrics export rely on (replacing the old ad-hoc `sort + round(rank)`
/// percentile). Values are exact outputs of the log₂-bucket interpolation —
/// if the algorithm changes, these change, and that must be a conscious
/// decision.
#[test]
fn quantile_regression_pins_on_known_samples() {
    let tel = Telemetry::new();
    let h = tel.histogram("pin.uniform");
    for v in 1..=1000u64 {
        h.record(v);
    }
    // target rank 499.5 inside bucket [256, 511] -> 256 + (499.5-255)/256 * 255
    assert_eq!(h.quantile(0.50), Some(499));
    // p90: rank 899.1 inside bucket [512, 1023], clamped by nothing.
    assert_eq!(h.quantile(0.90), Some(917));
    // p99: rank 989.01 interpolates past the observed max -> clamped to 1000.
    assert_eq!(h.quantile(0.99), Some(1000));
    assert_eq!(h.quantile(0.0), Some(1));
    assert_eq!(h.quantile(1.0), Some(1000));

    let small = tel.histogram("pin.small");
    for v in [10u64, 20, 30, 40] {
        small.record(v);
    }
    // rank 1.5 inside bucket [16, 31] holding {20, 30}.
    assert_eq!(small.quantile(0.50), Some(19));
    // rank 2.97 still interpolates inside that bucket (one-bucket error
    // bound); the exact extremes come from p = 0/1.
    assert_eq!(small.quantile(0.99), Some(30));
    assert_eq!(small.quantile(1.0), Some(40));
}

#[test]
fn span_nesting_produces_well_formed_parent_child_jsonl() {
    let tel = Telemetry::builder().trace_to_vec().build();
    {
        let _batch = tel.span("batch.exec");
        for _ in 0..3 {
            let _job = tel.span("job.recover");
            let _stage = tel.span("recover.estimate");
        }
    }
    let text = tel.take_trace_vec().unwrap();

    // Every line parses, and begin/end events pair one-to-one.
    let events: Vec<TraceEvent> = text
        .lines()
        .map(|l| TraceEvent::parse_line(l).expect("well-formed JSONL"))
        .collect();
    assert_eq!(events.len(), 14); // 7 spans x (B + E)
    let begins: Vec<&TraceEvent> = events.iter().filter(|e| e.kind == EventKind::Begin).collect();
    assert_eq!(begins.len(), 7);

    // Parent links: batch.exec is the root; each job.recover's parent is
    // batch.exec; each recover.estimate's parent is a job.recover.
    let find = |name: &str| -> Vec<&&TraceEvent> {
        begins.iter().filter(|e| e.name == name).collect()
    };
    let batch = find("batch.exec");
    assert_eq!(batch.len(), 1);
    assert_eq!(batch[0].parent, 0);
    for job in find("job.recover") {
        assert_eq!(job.parent, batch[0].id);
    }
    let job_ids: Vec<u64> = find("job.recover").iter().map(|e| e.id).collect();
    for stage in find("recover.estimate") {
        assert!(job_ids.contains(&stage.parent), "stage parent must be a job");
    }

    // The offline report agrees: no unclosed spans, full nesting.
    let report = TraceReport::from_str(&text).unwrap();
    assert_eq!(report.unclosed, 0);
    assert_eq!(report.span_count(), 7);
    assert_eq!(report.spans["job.recover"].count, 3);
    assert_eq!(report.spans["job.recover"].roots, 0);
    assert_eq!(report.spans["batch.exec"].roots, 1);
}

#[test]
fn spans_on_multiple_threads_carry_distinct_thread_ids() {
    let tel = Arc::new(Telemetry::builder().trace_to_vec().build());
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let tel = Arc::clone(&tel);
            thread::spawn(move || {
                let _span = tel.span("worker.tick");
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let text = tel.take_trace_vec().unwrap();
    let threads: std::collections::BTreeSet<u64> = text
        .lines()
        .map(|l| TraceEvent::parse_line(l).unwrap())
        .filter(|e| e.kind == EventKind::Begin)
        .map(|e| e.thread)
        .collect();
    assert_eq!(threads.len(), 4, "each thread gets its own index");
}
