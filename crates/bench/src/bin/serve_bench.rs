//! Open-loop arrival-rate benchmark of `dcdiff serve`: offered load is
//! swept upward and each level reports goodput, shed rate and whether the
//! p99 response latency stayed inside the interactive deadline class.
//!
//! Usage: `cargo run --release -p dcdiff-bench --bin serve_bench`
//!
//! Open loop means the sender does NOT wait for responses before issuing
//! the next request — arrivals are paced purely by the offered rate, like
//! a fleet of independent IoT senders. That makes overload visible as shed
//! responses (503) and deadline misses instead of the silent slowdown a
//! closed-loop client would show (coordinated omission).
//!
//! The headline number is `max_rps_p99_compliant`: the highest offered
//! load at which p99 latency of completed requests still met the 500 ms
//! interactive deadline. Writes `BENCH_serve.json` to the current
//! directory, alongside `BENCH_runtime.json`/`BENCH_kernels.json`.

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dcdiff_data::{SceneGenerator, SceneKind};
use dcdiff_image::Image;
use dcdiff_jpeg::{encode_coefficients, DcDropMode, JpegEncoder};
use dcdiff_runtime::{RecoverMethod, RuntimeConfig};
use dcdiff_serve::{Client, ServeConfig, Server};

const IMAGE_SIZE: usize = 64;
const SWEEP_SECS: f64 = 2.0;
const OFFERED_RPS: &[f64] = &[10.0, 25.0, 50.0, 100.0, 200.0];
const DEADLINE_MS: f64 = 500.0;
/// Simulated sender-uplink stall per job (`x-ingest-stall-ms`), matching
/// `runtime_bench`'s IoT model; it pins per-worker capacity near
/// `1000 / INGEST_STALL_MS` jobs/s so the upper sweeps genuinely overload
/// the queue and exercise shedding.
const INGEST_STALL_MS: u64 = 20;

struct SweepResult {
    offered_rps: f64,
    sent: usize,
    completed: usize,
    shed: usize,
    failed: usize,
    goodput_rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    p99_compliant: bool,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[rank.min(sorted_ms.len() - 1)]
}

fn sweep(addr: &str, jpeg: Arc<Vec<u8>>, offered_rps: f64) -> SweepResult {
    let total = (offered_rps * SWEEP_SECS).round() as usize;
    let interval = Duration::from_secs_f64(1.0 / offered_rps);
    let outcomes: Arc<Mutex<Vec<(u16, f64)>>> = Arc::new(Mutex::new(Vec::with_capacity(total)));
    let client = Client::new(addr).with_timeout(Duration::from_secs(30));

    let started = Instant::now();
    let mut senders = Vec::with_capacity(total);
    for i in 0..total {
        // Open loop: pace by the schedule, never by responses.
        let due = started + interval.mul_f64(i as f64);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let client = client.clone();
        let jpeg = Arc::clone(&jpeg);
        let outcomes = Arc::clone(&outcomes);
        senders.push(std::thread::spawn(move || {
            let t0 = Instant::now();
            let status = client
                .recover_opts(
                    &jpeg,
                    Some("interactive"),
                    false,
                    Some(Duration::from_millis(INGEST_STALL_MS)),
                )
                .map_or(0, |resp| resp.status);
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            if let Ok(mut o) = outcomes.lock() {
                o.push((status, wall_ms));
            }
        }));
    }
    for s in senders {
        let _ = s.join();
    }

    let outcomes = outcomes.lock().map(|o| o.clone()).unwrap_or_default();
    let completed: Vec<f64> = outcomes
        .iter()
        .filter(|(status, _)| *status == 200)
        .map(|(_, ms)| *ms)
        .collect();
    let shed = outcomes
        .iter()
        .filter(|(status, _)| *status == 503 || *status == 429)
        .count();
    let failed = outcomes.len() - completed.len() - shed;
    let mut sorted = completed.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let p99 = percentile(&sorted, 0.99);
    SweepResult {
        offered_rps,
        sent: total,
        completed: completed.len(),
        shed,
        failed,
        goodput_rps: completed.len() as f64 / started.elapsed().as_secs_f64(),
        p50_ms: percentile(&sorted, 0.50),
        p99_ms: p99,
        p99_compliant: !completed.is_empty() && p99 <= DEADLINE_MS,
    }
}

fn main() {
    // One DC-dropped natural scene as the canonical request payload.
    let image: Image = SceneGenerator::new(SceneKind::Natural, IMAGE_SIZE, IMAGE_SIZE).generate(7);
    let coeffs = JpegEncoder::new(50)
        .to_coefficients(&image)
        .drop_dc(DcDropMode::KeepCorners);
    let jpeg = Arc::new(encode_coefficients(&coeffs).expect("encode payload"));

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        // The sweep measures admission + queueing, not one client's quota.
        per_client_inflight: 4096,
        max_connections: 4096,
        method: RecoverMethod::Tip2006,
        ..ServeConfig::default()
    };
    cfg.spool_dir =
        std::env::temp_dir().join(format!("dcdiff-serve-bench-{}", std::process::id()));
    cfg.runtime = RuntimeConfig {
        workers: cores,
        queue_cap: 64,
        ..RuntimeConfig::default()
    };
    let server = Server::bind(cfg).expect("bind loopback server");
    let addr = server.local_addr().to_string();
    println!(
        "serve_bench: {IMAGE_SIZE}x{IMAGE_SIZE} dropped scene ({} bytes), {cores} worker(s), \
         {INGEST_STALL_MS} ms uplink stall, interactive deadline {DEADLINE_MS} ms",
        jpeg.len()
    );

    let mut results = Vec::new();
    for &rps in OFFERED_RPS {
        let result = sweep(&addr, Arc::clone(&jpeg), rps);
        println!(
            "  offered {:6.0} rps: goodput {:6.1} rps  completed {:4}/{:>4}  shed {:4}  \
             p50 {:6.1} ms  p99 {:6.1} ms  {}",
            result.offered_rps,
            result.goodput_rps,
            result.completed,
            result.sent,
            result.shed,
            result.p50_ms,
            result.p99_ms,
            if result.p99_compliant { "p99 within deadline" } else { "p99 MISSED deadline" },
        );
        results.push(result);
    }
    let report = server.drain();

    let best_compliant = results
        .iter()
        .filter(|r| r.p99_compliant)
        .map(|r| r.goodput_rps)
        .fold(0.0f64, f64::max);
    println!("  max goodput at p99 deadline compliance: {best_compliant:.1} jobs/s");

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"dcdiff-serve open-loop arrival sweep\",");
    let _ = writeln!(json, "  \"image_size\": \"{IMAGE_SIZE}x{IMAGE_SIZE}\",");
    let _ = writeln!(json, "  \"payload_bytes\": {},", jpeg.len());
    let _ = writeln!(json, "  \"method\": \"tip2006\",");
    let _ = writeln!(json, "  \"deadline_class\": \"interactive\",");
    let _ = writeln!(json, "  \"deadline_ms\": {DEADLINE_MS},");
    let _ = writeln!(json, "  \"ingest_stall_ms\": {INGEST_STALL_MS},");
    let _ = writeln!(json, "  \"sweep_secs\": {SWEEP_SECS},");
    let _ = writeln!(json, "  \"cpu_cores\": {cores},");
    let _ = writeln!(
        json,
        "  \"note\": \"open-loop senders pace by offered rate, not responses, so overload \
         shows up as shed (503) and deadline misses instead of coordinated omission; \
         max_rps_p99_compliant is the goodput ceiling with p99 latency inside the \
         interactive deadline\","
    );
    json.push_str("  \"sweeps\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"offered_rps\": {:.1}, \"sent\": {}, \"completed\": {}, \"shed\": {}, \
             \"failed\": {}, \"goodput_rps\": {:.2}, \"p50_ms\": {:.2}, \"p99_ms\": {:.2}, \
             \"p99_within_deadline\": {}}}{}",
            r.offered_rps,
            r.sent,
            r.completed,
            r.shed,
            r.failed,
            r.goodput_rps,
            r.p50_ms,
            r.p99_ms,
            r.p99_compliant,
            if i + 1 < results.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"max_rps_p99_compliant\": {best_compliant:.2},");
    if let Some(stats) = report.stats {
        let _ = writeln!(
            json,
            "  \"runtime_totals\": {{\"submitted\": {}, \"completed\": {}, \"failed\": {}, \
             \"rejected\": {}, \"deadline_missed\": {}}}",
            stats.submitted, stats.completed, stats.failed, stats.rejected, stats.deadline_missed
        );
    } else {
        json.push_str("  \"runtime_totals\": null\n");
    }
    json.push_str("}\n");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}
