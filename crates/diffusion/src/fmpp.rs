use dcdiff_nn::{Module, ResNet, ResNetConfig};
use dcdiff_tensor::serial::{Checkpoint, CheckpointError};
use dcdiff_tensor::{Rng, Tensor};

/// Frequency-modulation parameter predictor (§III-D).
///
/// A small ResNet takes the DC-less image `x̃` and predicts two scale
/// factors per sample, `(s, b)`, squashed into `(0, 2)` by a scaled
/// sigmoid as in the paper ("we constrain the scale factor between 0 and
/// 2"). During DDIM sampling, `s` re-weights the U-Net's backbone
/// features and `b` its skip features at decoder concatenations —
/// adapting the FreeU re-weighting to each image's frequency content
/// instead of using fixed manual hyperparameters.
#[derive(Debug)]
pub struct Fmpp {
    net: ResNet,
}

impl Fmpp {
    /// Build a predictor for conditioning images with `in_channels`.
    pub fn new(in_channels: usize, rng: &mut Rng) -> Self {
        let config = ResNetConfig {
            in_channels,
            base_channels: 12,
            stage_mults: vec![1, 2],
            out_dim: 2,
        };
        Self {
            net: ResNet::new(config, rng),
        }
    }

    /// Predict `(s, b)` scale vectors (each `[N]`, values in `(0, 2)`)
    /// from the conditioning image `x̃` of shape `[N, C, H, W]`.
    pub fn predict(&self, x_tilde: &Tensor) -> (Tensor, Tensor) {
        let n = x_tilde.shape()[0];
        let raw = self.net.forward(x_tilde).sigmoid().scale(2.0);
        // differentiable column split via constant selectors, so FMPP
        // training can backpropagate through the sampled reconstruction
        let sel_s = Tensor::from_vec(vec![2, 1], vec![1.0, 0.0]);
        let sel_b = Tensor::from_vec(vec![2, 1], vec![0.0, 1.0]);
        let s = raw.matmul(&sel_s).reshape(vec![n]);
        let b = raw.matmul(&sel_b).reshape(vec![n]);
        (s, b)
    }

    /// Trainable parameters (for the FMPP training stage).
    pub fn params(&self) -> Vec<Tensor> {
        self.net.params()
    }

    /// Save weights under the `fmpp` prefix.
    pub fn save(&self, ckpt: &mut Checkpoint) {
        self.net.save("fmpp", ckpt);
    }

    /// Load weights written by [`Fmpp::save`].
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] on missing or mis-shaped tensors.
    pub fn load(&self, ckpt: &Checkpoint) -> Result<(), CheckpointError> {
        self.net.load("fmpp", ckpt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcdiff_tensor::seeded_rng;

    #[test]
    fn predictions_are_in_range() {
        let mut rng = seeded_rng(0);
        let fmpp = Fmpp::new(3, &mut rng);
        let x = Tensor::randn(vec![3, 3, 16, 16], 1.0, &mut rng);
        let (s, b) = fmpp.predict(&x);
        assert_eq!(s.shape(), &[3]);
        assert_eq!(b.shape(), &[3]);
        for v in s.to_vec().iter().chain(b.to_vec().iter()) {
            assert!((0.0..2.0).contains(v), "scale {v} outside (0, 2)");
        }
    }

    #[test]
    fn different_inputs_give_different_scales() {
        let mut rng = seeded_rng(1);
        let fmpp = Fmpp::new(1, &mut rng);
        let flat = Tensor::zeros(vec![1, 1, 16, 16]);
        let busy = Tensor::randn(vec![1, 1, 16, 16], 2.0, &mut rng);
        let (s1, _) = fmpp.predict(&flat);
        let (s2, _) = fmpp.predict(&busy);
        assert!(
            (s1.to_vec()[0] - s2.to_vec()[0]).abs() > 1e-5,
            "FMPP must adapt to image content"
        );
    }

    #[test]
    fn scales_are_trainable() {
        // push s towards 1.5 for a fixed input
        let mut rng = seeded_rng(2);
        let fmpp = Fmpp::new(1, &mut rng);
        let x = Tensor::randn(vec![1, 1, 16, 16], 1.0, &mut rng);
        let mut opt = dcdiff_tensor::optim::Adam::new(fmpp.params(), 0.003);
        for _ in 0..300 {
            opt.zero_grad();
            let (s, _) = fmpp.predict(&x);
            s.add_scalar(-1.5).square().mean_all().backward();
            opt.step();
        }
        let (s, _) = fmpp.predict(&x);
        assert!((s.to_vec()[0] - 1.5).abs() < 0.1, "s = {}", s.to_vec()[0]);
    }

    #[test]
    fn checkpoint_round_trip() {
        let mut rng = seeded_rng(3);
        let a = Fmpp::new(3, &mut rng);
        let b = Fmpp::new(3, &mut rng);
        let mut ckpt = Checkpoint::new();
        a.save(&mut ckpt);
        b.load(&ckpt).unwrap();
        let x = Tensor::randn(vec![2, 3, 16, 16], 1.0, &mut rng);
        let (sa, _) = a.predict(&x);
        let (sb, _) = b.predict(&x);
        assert_eq!(sa.to_vec(), sb.to_vec());
    }
}
