//! Offline aggregation of a JSONL trace — the engine behind `dcdiff report`.
//!
//! Rebuilds spans from begin/end/complete events, checks the pairing is
//! well-formed, aggregates durations per span name (count, total, mean,
//! p50/p99/max via the shared log₂ [`Histogram`]), and measures how much of
//! the trace's wall time the root spans cover (merged-interval union, so
//! overlapping spans from parallel workers are not double-counted).

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt::Write as _;

use crate::metrics::Histogram;
use crate::trace::{EventKind, TraceEvent};

/// Aggregated statistics for one span name.
#[derive(Debug)]
pub struct SpanStats {
    /// Completed spans with this name.
    pub count: u64,
    /// Sum of durations in microseconds.
    pub total_us: u64,
    /// Duration histogram (for quantiles).
    pub histogram: Histogram,
    /// How many of these spans are roots (no parent).
    pub roots: u64,
}

/// A parsed, aggregated trace.
#[derive(Debug)]
pub struct TraceReport {
    /// Per-name statistics, sorted by name.
    pub spans: BTreeMap<String, SpanStats>,
    /// Completed span intervals of root spans: `(start_us, end_us)`.
    root_intervals: Vec<(u64, u64)>,
    /// Earliest event timestamp.
    pub first_us: u64,
    /// Latest event end timestamp.
    pub last_us: u64,
    /// Distinct thread indices seen.
    pub threads: usize,
    /// Spans left open at end of trace (e.g. an aborted run).
    pub unclosed: u64,
    /// Total events parsed.
    pub events: u64,
}

/// Fold one completed span into the per-name stats and root intervals.
fn record(
    spans: &mut BTreeMap<String, SpanStats>,
    root_intervals: &mut Vec<(u64, u64)>,
    name: &str,
    parent: u64,
    start: u64,
    dur: u64,
) {
    let stats = spans.entry(name.to_string()).or_insert_with(|| SpanStats {
        count: 0,
        total_us: 0,
        histogram: Histogram::new(),
        roots: 0,
    });
    stats.count += 1;
    stats.total_us += dur;
    stats.histogram.record(dur);
    if parent == 0 {
        stats.roots += 1;
        root_intervals.push((start, start + dur));
    }
}

impl std::str::FromStr for TraceReport {
    type Err = String;

    /// Parse and aggregate a JSONL trace.
    ///
    /// # Errors
    ///
    /// Returns `line N: <reason>` for a malformed line, an end event whose
    /// id was never begun, or a duplicated span id.
    fn from_str(text: &str) -> Result<TraceReport, String> {
        TraceReport::from_texts(&[text])
    }
}

impl TraceReport {
    /// Parse and aggregate one or more JSONL traces into a single report
    /// (`dcdiff report a.jsonl b.jsonl …`).
    ///
    /// Each file keeps its own span-id space and open-span pairing (ids
    /// restart per run, so they must not collide across files). Timestamps
    /// of the first file pass through unchanged — a one-element call is
    /// identical to [`std::str::FromStr`] — and every later file is laid
    /// end-to-end after the previous one (`t − file_first + merged_last`),
    /// so wall time and root coverage aggregate sensibly across runs that
    /// each started their clock at zero.
    ///
    /// # Errors
    ///
    /// Same per-line errors as single-file parsing, prefixed with
    /// `file N: ` when more than one text is given; an empty file set or a
    /// set with no events at all is an error.
    pub fn from_texts(texts: &[&str]) -> Result<TraceReport, String> {
        let mut spans: BTreeMap<String, SpanStats> = BTreeMap::new();
        let mut root_intervals: Vec<(u64, u64)> = Vec::new();
        let mut threads = std::collections::BTreeSet::new();
        let mut first_us = u64::MAX;
        let mut last_us = 0u64;
        let mut events = 0u64;
        let mut unclosed = 0u64;

        for (f, text) in texts.iter().enumerate() {
            let fail = |i: usize, reason: String| {
                if texts.len() > 1 {
                    format!("file {}: line {}: {reason}", f + 1, i + 1)
                } else {
                    format!("line {}: {reason}", i + 1)
                }
            };
            let mut parsed: Vec<TraceEvent> = Vec::new();
            let mut lines: Vec<usize> = Vec::new();
            for (i, line) in text.lines().enumerate() {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                parsed.push(TraceEvent::parse_line(line).map_err(|e| fail(i, e))?);
                lines.push(i);
            }
            // Lay this file after everything merged so far; the first file
            // keeps its native timeline.
            let file_first = parsed.iter().map(|e| e.t_us).min().unwrap_or(0);
            let rebase = |t: u64| {
                if f == 0 {
                    t
                } else {
                    t.saturating_sub(file_first).saturating_add(last_us)
                }
            };

            let mut open: HashMap<u64, TraceEvent> = HashMap::new();
            let mut file_last = last_us;
            for (ev, &i) in parsed.into_iter().zip(&lines) {
                events += 1;
                let t_us = rebase(ev.t_us);
                first_us = first_us.min(t_us);
                // An end event's `t_us` already is the span's end; begin and
                // complete events extend by their (possibly zero) duration.
                let end = match ev.kind {
                    EventKind::End => t_us,
                    EventKind::Begin | EventKind::Complete => t_us.saturating_add(ev.dur_us),
                };
                file_last = file_last.max(end);
                match ev.kind {
                    EventKind::Begin => {
                        threads.insert(ev.thread);
                        if open.insert(ev.id, ev).is_some() {
                            return Err(fail(i, "duplicate span id".to_string()));
                        }
                    }
                    EventKind::End => {
                        let begin = open.remove(&ev.id).ok_or_else(|| {
                            fail(i, format!("end event for unknown span id {}", ev.id))
                        })?;
                        let name = if ev.name.is_empty() { &begin.name } else { &ev.name };
                        record(
                            &mut spans,
                            &mut root_intervals,
                            name,
                            begin.parent,
                            rebase(begin.t_us),
                            ev.dur_us,
                        );
                    }
                    EventKind::Complete => {
                        threads.insert(ev.thread);
                        record(
                            &mut spans,
                            &mut root_intervals,
                            &ev.name,
                            ev.parent,
                            t_us,
                            ev.dur_us,
                        );
                    }
                }
            }
            unclosed += open.len() as u64;
            last_us = file_last;
        }
        if events == 0 {
            return Err("trace contains no events".to_string());
        }
        Ok(TraceReport {
            spans,
            root_intervals,
            first_us,
            last_us,
            threads: threads.len(),
            unclosed,
            events,
        })
    }
    /// Trace wall time: first event to last event end, in microseconds.
    pub fn wall_us(&self) -> u64 {
        self.last_us.saturating_sub(self.first_us)
    }

    /// Microseconds of wall time covered by at least one root span
    /// (merged-interval union, immune to double counting by parallel
    /// workers).
    pub fn covered_us(&self) -> u64 {
        let mut intervals = self.root_intervals.clone();
        intervals.sort_unstable();
        let mut covered = 0u64;
        let mut current: Option<(u64, u64)> = None;
        for (start, end) in intervals {
            match &mut current {
                Some((_, cur_end)) if start <= *cur_end => *cur_end = (*cur_end).max(end),
                _ => {
                    if let Some((s, e)) = current.take() {
                        covered += e - s;
                    }
                    current = Some((start, end));
                }
            }
        }
        if let Some((s, e)) = current {
            covered += e - s;
        }
        covered
    }

    /// Fraction of the trace wall time covered by root spans, in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        let wall = self.wall_us();
        if wall == 0 {
            return 1.0;
        }
        self.covered_us() as f64 / wall as f64
    }

    /// Total completed spans.
    pub fn span_count(&self) -> u64 {
        self.spans.values().map(|s| s.count).sum()
    }

    /// Render the human-readable per-span breakdown and histogram table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace: {} events, {} spans, {} thread(s), wall {:.1} ms",
            self.events,
            self.span_count(),
            self.threads,
            self.wall_us() as f64 / 1e3,
        );
        let _ = writeln!(
            out,
            "root spans cover {:.1} ms ({:.1}% of wall)",
            self.covered_us() as f64 / 1e3,
            100.0 * self.coverage(),
        );
        if self.unclosed > 0 {
            let _ = writeln!(out, "warning: {} span(s) never closed", self.unclosed);
        }
        let _ = writeln!(
            out,
            "{:<24} {:>7} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>6}",
            "span", "count", "total ms", "mean ms", "min ms", "p50 ms", "p99 ms", "max ms", "wall%"
        );
        // Largest total first: the breakdown reads as "where did time go".
        let mut names: Vec<&String> = self.spans.keys().collect();
        names.sort_by_key(|n| std::cmp::Reverse(self.spans[*n].total_us));
        let wall = self.wall_us().max(1);
        let mut unregistered = Vec::new();
        for name in names {
            let s = &self.spans[name];
            let snap = s.histogram.snapshot();
            let known = crate::names::is_registered(name);
            if !known {
                unregistered.push(name.clone());
            }
            let _ = writeln!(
                out,
                "{:<24} {:>7} {:>10.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>5.1}%{}",
                name,
                s.count,
                s.total_us as f64 / 1e3,
                snap.mean() / 1e3,
                if snap.count == 0 { 0.0 } else { snap.min as f64 / 1e3 },
                snap.quantile(0.50).unwrap_or(0) as f64 / 1e3,
                snap.quantile(0.99).unwrap_or(0) as f64 / 1e3,
                snap.max as f64 / 1e3,
                100.0 * s.total_us as f64 / wall as f64,
                if known { "" } else { "  (?)" },
            );
        }
        if !unregistered.is_empty() {
            let _ = writeln!(
                out,
                "warning: {} span name(s) not in the telemetry registry \
                 (dcdiff_telemetry::names) — dashboards keyed on registered \
                 names will not see them: {}",
                unregistered.len(),
                unregistered.join(", "),
            );
        }
        out
    }

    /// Span names in this trace that are not in the telemetry name registry
    /// ([`crate::names`]) — producers emitting these have drifted from the
    /// registered namespaces dashboards key on.
    pub fn unregistered_names(&self) -> Vec<&str> {
        self.spans
            .keys()
            .map(String::as_str)
            .filter(|n| !crate::names::is_registered(n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use std::str::FromStr as _;

    use super::*;

    fn line(s: &str) -> String {
        s.to_string()
    }

    #[test]
    fn aggregates_nested_and_complete_spans() {
        let trace = [
            line(r#"{"ev":"B","id":1,"parent":0,"name":"batch.exec","thread":1,"t_us":0}"#),
            line(r#"{"ev":"B","id":2,"parent":1,"name":"job.recover","thread":1,"t_us":10}"#),
            line(r#"{"ev":"E","id":2,"name":"job.recover","t_us":60,"dur_us":50}"#),
            line(r#"{"ev":"E","id":1,"name":"batch.exec","t_us":100,"dur_us":100}"#),
            line(r#"{"ev":"X","id":3,"parent":0,"name":"queue.wait","thread":2,"t_us":100,"dur_us":40}"#),
        ]
        .join("\n");
        let report = TraceReport::from_str(&trace).unwrap();
        assert_eq!(report.span_count(), 3);
        assert_eq!(report.threads, 2);
        assert_eq!(report.unclosed, 0);
        assert_eq!(report.wall_us(), 140);
        // Roots: batch.exec [0,100] + queue.wait [100,140] -> full coverage.
        assert_eq!(report.covered_us(), 140);
        assert!((report.coverage() - 1.0).abs() < 1e-9);
        // job.recover is nested, so it is not part of root coverage.
        assert_eq!(report.spans["job.recover"].roots, 0);
        let rendered = report.render();
        assert!(rendered.contains("batch.exec"));
        assert!(rendered.contains("queue.wait"));
    }

    #[test]
    fn overlapping_roots_are_not_double_counted() {
        let trace = [
            line(r#"{"ev":"X","id":1,"parent":0,"name":"a","thread":1,"t_us":0,"dur_us":100}"#),
            line(r#"{"ev":"X","id":2,"parent":0,"name":"a","thread":2,"t_us":50,"dur_us":100}"#),
        ]
        .join("\n");
        let report = TraceReport::from_str(&trace).unwrap();
        assert_eq!(report.wall_us(), 150);
        assert_eq!(report.covered_us(), 150);
    }

    #[test]
    fn rejects_malformed_pairings() {
        let orphan_end = r#"{"ev":"E","id":7,"name":"x","t_us":5,"dur_us":5}"#;
        let err = TraceReport::from_str(orphan_end).unwrap_err();
        assert!(err.contains("unknown span id"), "{err}");
        assert!(TraceReport::from_str("").is_err());
        let dup = [
            r#"{"ev":"B","id":1,"parent":0,"name":"a","thread":1,"t_us":0}"#,
            r#"{"ev":"B","id":1,"parent":0,"name":"b","thread":1,"t_us":1}"#,
        ]
        .join("\n");
        assert!(TraceReport::from_str(&dup).unwrap_err().contains("duplicate"));
    }

    #[test]
    fn unclosed_spans_are_reported_not_fatal() {
        let trace = r#"{"ev":"B","id":1,"parent":0,"name":"a","thread":1,"t_us":0}"#;
        let report = TraceReport::from_str(trace).unwrap();
        assert_eq!(report.unclosed, 1);
        assert!(report.render().contains("never closed"));
    }

    #[test]
    fn multi_file_merge_lays_runs_end_to_end() {
        // Two runs whose clocks both start near zero, with colliding span
        // ids — exactly what two `dcdiff batch --trace` files look like.
        let run_a = [
            line(r#"{"ev":"X","id":1,"parent":0,"name":"a","thread":1,"t_us":0,"dur_us":100}"#),
            line(r#"{"ev":"X","id":2,"parent":0,"name":"b","thread":1,"t_us":100,"dur_us":50}"#),
        ]
        .join("\n");
        let run_b = [
            line(r#"{"ev":"B","id":1,"parent":0,"name":"a","thread":2,"t_us":10}"#),
            line(r#"{"ev":"E","id":1,"name":"a","t_us":90,"dur_us":80}"#),
        ]
        .join("\n");
        let merged = TraceReport::from_texts(&[&run_a, &run_b]).unwrap();
        assert_eq!(merged.events, 4);
        assert_eq!(merged.span_count(), 3);
        assert_eq!(merged.unclosed, 0);
        assert_eq!(merged.threads, 2);
        // Per-span aggregation spans both runs.
        assert_eq!(merged.spans["a"].count, 2);
        assert_eq!(merged.spans["a"].total_us, 180);
        // Run B is rebased after run A: its span [10,90] lands at [150,230].
        assert_eq!(merged.wall_us(), 230);
        assert_eq!(merged.covered_us(), 230);
        // One-element from_texts is exactly from_str.
        let single = TraceReport::from_str(&run_a).unwrap();
        assert_eq!(single.wall_us(), 150);
        assert_eq!(single.first_us, 0);
    }

    #[test]
    fn multi_file_errors_name_the_file() {
        let good = r#"{"ev":"X","id":1,"parent":0,"name":"a","thread":1,"t_us":0,"dur_us":1}"#;
        let err = TraceReport::from_texts(&[good, "not json"]).unwrap_err();
        assert!(err.starts_with("file 2: line 1:"), "{err}");
        // Single-file errors keep the unprefixed shape callers match on.
        let err = TraceReport::from_str("not json").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
    }

    #[test]
    fn render_includes_min_column() {
        let trace = [
            line(r#"{"ev":"X","id":1,"parent":0,"name":"a","thread":1,"t_us":0,"dur_us":2000}"#),
            line(r#"{"ev":"X","id":2,"parent":0,"name":"a","thread":1,"t_us":0,"dur_us":8000}"#),
        ]
        .join("\n");
        let report = TraceReport::from_str(&trace).unwrap();
        let rendered = report.render();
        assert!(rendered.contains("min ms"), "{rendered}");
        // min 2 ms and max 8 ms both appear on the span row.
        let row = rendered.lines().find(|l| l.starts_with('a')).unwrap();
        assert!(row.contains("2.00") && row.contains("8.00"), "{row}");
    }
}
