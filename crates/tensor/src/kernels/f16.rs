//! f16-storage / f32-accumulate GEMM for quantised U-Net inference.
//!
//! [`hgemm`] is the half-precision sibling of [`super::sgemm`]: the same
//! BLIS-style blocked loop and stripe sharding, but the packed A/B panels
//! hold IEEE 754 binary16 (`u16` bit patterns) instead of f32 — halving
//! packed-panel bandwidth, which is what bounds the narrow U-Net GEMMs —
//! while every multiply-accumulate still runs in f32 registers, so error
//! only enters through the one storage rounding per operand element.
//!
//! The microkernel is picked once at runtime (mirroring
//! [`super::gemm::microkernel_info`]): an AVX2+FMA+F16C 6x16 kernel that
//! widens halves with `vcvtph2ps` in-register, else a portable 4x8 kernel
//! that converts through [`f16_to_f32`]. There is deliberately **no**
//! f16 accumulation tier — binary16 addition loses ~3 decimal digits and
//! would not pass the accuracy gate (see `PERFORMANCE.md`).
//!
//! Callers do not quantise anything themselves: inputs and outputs stay
//! `&[f32]`, and the rounding happens during panel packing. The tensor
//! ops route their forward GEMMs here when quantised inference is
//! enabled and autograd is off — see [`super::gemm_infer`].

use std::cell::RefCell;
use std::sync::OnceLock;

use super::config::{configured_threads, KC, MC, NC, PAR_FLOP_THRESHOLD};
use super::gemm::View;
use super::pool::parallel_for;
use super::{scratch, Trans};

/// Convert an `f32` to its IEEE 754 binary16 bit pattern with
/// round-to-nearest-even, handling subnormals, overflow (→ ±inf) and
/// NaN (payload truncated, quietened).
pub fn f32_to_f16(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mant = bits & 0x7F_FFFF;
    if exp == 255 {
        // Inf or NaN; keep NaNs NaN by forcing a mantissa bit.
        return if mant == 0 {
            sign | 0x7C00
        } else {
            sign | 0x7E00 | ((mant >> 13) as u16 & 0x1FF)
        };
    }
    let unbiased = exp - 127;
    if unbiased >= 16 {
        return sign | 0x7C00; // overflows binary16 -> inf
    }
    if unbiased < -14 {
        // Subnormal half (or zero): shift the implicit-1 mantissa down.
        if unbiased < -25 {
            return sign; // rounds to zero even at the halfway point
        }
        let m = mant | 0x80_0000;
        let drop = (-unbiased - 1) as u32; // 14..=24 mantissa bits shifted out
        let half = m >> drop;
        let rem = m & ((1u32 << drop) - 1);
        let halfway = 1u32 << (drop - 1);
        let rounded =
            half + u32::from(rem > halfway || (rem == halfway && (half & 1) == 1));
        return sign | rounded as u16;
    }
    let half = (((unbiased + 15) as u32) << 10) | (mant >> 13);
    let rem = mant & 0x1FFF;
    let rounded = half + u32::from(rem > 0x1000 || (rem == 0x1000 && (half & 1) == 1));
    // A mantissa carry walks into the exponent; 0x7C00 (inf) is then the
    // correct overflow result.
    sign | rounded as u16
}

/// Convert an IEEE 754 binary16 bit pattern to `f32` (exact — every
/// binary16 value is representable in binary32).
pub fn f16_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let mant = (h & 0x3FF) as u32;
    let bits = if exp == 31 {
        sign | 0x7F80_0000 | (mant << 13)
    } else if exp == 0 {
        if mant == 0 {
            sign
        } else {
            // Subnormal half: renormalise into binary32.
            let mut e = 113u32; // f32 exponent of 2^-14
            let mut m = mant;
            while m & 0x400 == 0 {
                m <<= 1;
                e -= 1;
            }
            sign | (e << 23) | ((m & 0x3FF) << 13)
        }
    } else {
        sign | ((exp + 112) << 23) | (mant << 13)
    };
    f32::from_bits(bits)
}

/// Round every element of `src` through binary16 storage into `dst`
/// (`dst[i] = f16_to_f32(f32_to_f16(src[i]))`) — the exact value the
/// hgemm panels see; used by tests and accuracy probes.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn quantize_f16_slice(src: &[f32], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "quantize slices must match");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = f16_to_f32(f32_to_f16(s));
    }
}

/// Bulk `f32 -> binary16` conversion for panel packing: `vcvtps2ph`
/// eight lanes at a time where F16C is available (bit-identical to
/// [`f32_to_f16`] — both are round-to-nearest-even, cross-checked by
/// `conversion_matches_hardware_f16c`), scalar otherwise. The software
/// conversion costs ~15 cycles per element, which would dominate the
/// packing pass and hence the whole narrow-GEMM call without this.
fn quantize_to_f16(src: &[f32], dst: &mut [u16]) {
    debug_assert_eq!(src.len(), dst.len());
    #[cfg(target_arch = "x86_64")]
    if has_f16c() {
        // SAFETY: F16C was confirmed by `is_x86_feature_detected!` (the
        // only way `has_f16c` returns true).
        unsafe { quantize_to_f16_f16c(src, dst) };
        return;
    }
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = f32_to_f16(s);
    }
}

#[cfg(target_arch = "x86_64")]
fn has_f16c() -> bool {
    static HAS: OnceLock<bool> = OnceLock::new();
    *HAS.get_or_init(|| std::arch::is_x86_feature_detected!("f16c"))
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "f16c")]
// SAFETY: unsafe fn — requires F16C (the caller checks `has_f16c`) and
// equal-length slices (debug-asserted by the dispatching wrapper).
unsafe fn quantize_to_f16_f16c(src: &[f32], dst: &mut [u16]) {
    use std::arch::x86_64::{
        __m128i, _mm256_cvtps_ph, _mm256_loadu_ps, _mm_storeu_si128, _MM_FROUND_TO_NEAREST_INT,
    };
    let chunks = src.len() / 8;
    for i in 0..chunks {
        // The tail (`len % 8`) takes the scalar conversion below.
        // SAFETY: `i < len/8` keeps both 8-lane accesses at or below
        // `len` in equal-length slices; F16C is enabled on this fn.
        unsafe {
            let v = _mm256_loadu_ps(src.as_ptr().add(i * 8));
            let h = _mm256_cvtps_ph::<_MM_FROUND_TO_NEAREST_INT>(v);
            _mm_storeu_si128(dst.as_mut_ptr().add(i * 8) as *mut __m128i, h);
        }
    }
    for i in chunks * 8..src.len() {
        dst[i] = f32_to_f16(src[i]);
    }
}

/// Upper bound on `MR * NR` across f16 microkernels.
const ACC_MAX: usize = 6 * 16;

/// Extra `u16` slots appended to the packed A panel: the AVX2 kernel
/// loads 8 halves per depth step but consumes only `MR = 6`, so the last
/// step's load reads 2 slots past the packed data. The slack keeps that
/// read inside the allocation.
const A_PANEL_SLACK: usize = 8;

/// f16-storage register microkernel: `acc[mr][nr] = Astrip · Bstrip`
/// over a packed depth panel (strips hold binary16 bit patterns, `acc`
/// is f32).
///
/// Safety contract: `astrip` holds `kc*mr + A_PANEL_SLACK` readable
/// `u16`, `bstrip` `kc*nr`, `acc` `mr*nr` writable f32, and the CPU
/// supports the kernel's ISA.
#[derive(Clone, Copy)]
struct MicroF16 {
    name: &'static str,
    mr: usize,
    nr: usize,
    kernel: unsafe fn(kc: usize, astrip: *const u16, bstrip: *const u16, acc: *mut f32),
}

/// Portable 4x8 f16 microkernel: widens each strip row through
/// [`f16_to_f32`] then runs the dense tile update. Correctness tier for
/// CPUs without F16C; LLVM auto-vectorises the FMA loop but not the
/// bit-twiddled conversion.
///
/// # Safety
///
/// Callers uphold the [`MicroF16::kernel`] contract: `astrip` holds
/// `kc*4 + A_PANEL_SLACK` readable `u16`, `bstrip` `kc*8`, `acc` 32
/// writable floats.
// SAFETY: unsafe fn — callers uphold the `MicroF16::kernel` contract
// documented above; no ISA requirement beyond the build target.
unsafe fn micro_portable_f16_4x8(
    kc: usize,
    astrip: *const u16,
    bstrip: *const u16,
    acc: *mut f32,
) {
    const MR: usize = 4;
    const NR: usize = 8;
    let mut tile = [[0.0f32; NR]; MR];
    for p in 0..kc {
        // SAFETY: `p < kc` and the contract guarantees `kc*MR` halves at
        // `astrip` and `kc*NR` at `bstrip`, so both rows are in bounds.
        let (arow, brow) = unsafe {
            (
                std::slice::from_raw_parts(astrip.add(p * MR), MR),
                std::slice::from_raw_parts(bstrip.add(p * NR), NR),
            )
        };
        let mut af = [0.0f32; MR];
        for (d, &h) in af.iter_mut().zip(arow) {
            *d = f16_to_f32(h);
        }
        let mut bf = [0.0f32; NR];
        for (d, &h) in bf.iter_mut().zip(brow) {
            *d = f16_to_f32(h);
        }
        for (trow, &av) in tile.iter_mut().zip(&af) {
            for (t, &bv) in trow.iter_mut().zip(&bf) {
                *t += av * bv;
            }
        }
    }
    for (r, trow) in tile.iter().enumerate() {
        // The stack tile never overlaps the caller's buffer.
        // SAFETY: `r < MR` and the contract guarantees `MR*NR` writable
        // floats at `acc`, so `acc.add(r*NR)..+NR` is in bounds.
        let dst = unsafe { std::slice::from_raw_parts_mut(acc.add(r * NR), NR) };
        dst.copy_from_slice(trow);
    }
}

/// AVX2+FMA+F16C 6x16 f16 microkernel: two `vcvtph2ps` widen the B strip
/// row, one widens 8 A halves (6 used), and `vpermps` broadcasts each A
/// lane for two FMAs — 12 ymm accumulators, f32 throughout the arithmetic.
///
/// # Safety
///
/// Callers uphold the [`MicroF16::kernel`] contract with MR=6/NR=16
/// (note the A-panel slack: the final 128-bit A load reads 2 halves past
/// `kc*6`), and the CPU must support avx2+fma+f16c — `detect_micro_f16`
/// only selects this kernel after `is_x86_feature_detected!` confirms
/// all three.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma,f16c")]
// SAFETY: unsafe fn — `MicroF16::kernel` contract (incl. the A-panel slack)
// plus avx2+fma+f16c, confirmed by `detect_micro_f16` before selection.
unsafe fn micro_avx2_f16c_6x16(
    kc: usize,
    astrip: *const u16,
    bstrip: *const u16,
    acc: *mut f32,
) {
    use std::arch::x86_64::{
        __m128i, _mm256_cvtph_ps, _mm256_fmadd_ps, _mm256_set1_ps, _mm256_setzero_ps,
        _mm256_storeu_ps, _mm_loadu_si128,
    };
    const MR: usize = 6;
    const NR: usize = 16;
    let mut c = [[_mm256_setzero_ps(); 2]; MR];
    let mut arow = [0.0f32; 8];
    for p in 0..kc {
        // The contract guarantees `kc*NR` halves at `bstrip` (both
        // 8-half loads stay below `p*16 + 16 <= kc*16`) and
        // `kc*MR + A_PANEL_SLACK` at `astrip` (the 8-half load at `p*6`
        // tops out at `(kc-1)*6 + 8 <= kc*6 + 2`, inside the slack).
        // SAFETY: `p < kc` with the bounds above; intrinsics are
        // guarded by this fn's `target_feature` ISA.
        unsafe {
            let b0 = _mm256_cvtph_ps(_mm_loadu_si128(bstrip.add(p * NR) as *const __m128i));
            let b1 = _mm256_cvtph_ps(_mm_loadu_si128(bstrip.add(p * NR + 8) as *const __m128i));
            // Spill the widened A halves to the stack and broadcast each
            // element from memory (`vbroadcastss m32`): an in-register
            // lane shuffle per row would contend with the three
            // `vcvtph2ps` on the shuffle port, which otherwise bounds
            // the loop ahead of the FMAs.
            let a8 = _mm256_cvtph_ps(_mm_loadu_si128(astrip.add(p * MR) as *const __m128i));
            _mm256_storeu_ps(arow.as_mut_ptr(), a8);
            for (r, crow) in c.iter_mut().enumerate() {
                let av = _mm256_set1_ps(arow[r]);
                crow[0] = _mm256_fmadd_ps(av, b0, crow[0]);
                crow[1] = _mm256_fmadd_ps(av, b1, crow[1]);
            }
        }
    }
    for (r, crow) in c.iter().enumerate() {
        // SAFETY: stores index `r*16 + 8 < 6*16 = ACC_MAX <= mr*nr`
        // writable floats guaranteed by the contract.
        unsafe {
            _mm256_storeu_ps(acc.add(r * NR), crow[0]);
            _mm256_storeu_ps(acc.add(r * NR + 8), crow[1]);
        }
    }
}

fn detect_micro_f16() -> MicroF16 {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("fma")
            && std::arch::is_x86_feature_detected!("f16c")
        {
            return MicroF16 {
                name: "avx2_f16c_6x16",
                mr: 6,
                nr: 16,
                kernel: micro_avx2_f16c_6x16,
            };
        }
    }
    MicroF16 { name: "portable_f16_4x8", mr: 4, nr: 8, kernel: micro_portable_f16_4x8 }
}

fn active_micro_f16() -> MicroF16 {
    static MICRO: OnceLock<MicroF16> = OnceLock::new();
    *MICRO.get_or_init(detect_micro_f16)
}

/// `(name, mr, nr)` of the f16 microkernel selected for this CPU
/// (recorded in bench artifacts by [`super::KernelConfig`]).
pub fn hgemm_info() -> (&'static str, usize, usize) {
    let micro = active_micro_f16();
    (micro.name, micro.mr, micro.nr)
}

thread_local! {
    /// Per-thread reuse of `u16` packing panels (the f32 [`super::scratch`]
    /// pool cannot hand out `u16` buffers). Two panels live at once per
    /// stripe; keep a couple of spares for nested shapes.
    static PANELS: RefCell<Vec<Vec<u16>>> = const { RefCell::new(Vec::new()) };
}

fn take_panel(len: usize) -> Vec<u16> {
    let reused = PANELS.with(|p| {
        let mut pool = p.borrow_mut();
        let pos = pool.iter().position(|buf| buf.capacity() >= len);
        pos.map(|i| pool.swap_remove(i))
    });
    match reused {
        Some(mut buf) => {
            buf.clear();
            buf.resize(len, 0);
            buf
        }
        None => vec![0u16; len],
    }
}

fn put_panel(buf: Vec<u16>) {
    PANELS.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < 4 {
            pool.push(buf);
        }
    });
}

/// Pack the `mc x kc` block of `op(A)` into `mr`-row binary16 strips
/// (layout identical to the f32 `pack_a`, zero-padded past `mc`).
///
/// Packs into an f32 staging buffer first and bulk-converts the used
/// prefix through [`quantize_to_f16`], so the rounding runs vectorised
/// over a contiguous panel instead of element-wise inside the gather.
#[allow(clippy::too_many_arguments)]
fn pack_a_f16(
    panel: &mut [u16],
    mr: usize,
    a: &[f32],
    view: View,
    i0: usize,
    mc: usize,
    p0: usize,
    kc: usize,
) {
    let strips = mc.div_ceil(mr);
    let used = strips * kc * mr;
    debug_assert!(panel.len() >= used);
    let mut staging = scratch::take_dirty(used);
    for ir in 0..strips {
        let row0 = ir * mr;
        let full = (mc - row0).min(mr);
        let strip = &mut staging[ir * kc * mr..(ir * kc + kc) * mr];
        for p in 0..kc {
            let dst = &mut strip[p * mr..p * mr + mr];
            let base = view.at(i0 + row0, p0 + p);
            for (r, d) in dst.iter_mut().enumerate() {
                *d = if r < full { a[base + r * view.rs] } else { 0.0 };
            }
        }
    }
    quantize_to_f16(&staging, &mut panel[..used]);
    scratch::put(staging);
}

/// Pack the `kc x nc` block of `op(B)` into `nr`-column binary16 strips
/// (layout identical to the f32 `pack_b`), staged and bulk-converted
/// like [`pack_a_f16`].
#[allow(clippy::too_many_arguments)]
fn pack_b_f16(
    panel: &mut [u16],
    nr: usize,
    b: &[f32],
    view: View,
    p0: usize,
    kc: usize,
    j0: usize,
    nc: usize,
) {
    let strips = nc.div_ceil(nr);
    let used = strips * kc * nr;
    debug_assert!(panel.len() >= used);
    let mut staging = scratch::take_dirty(used);
    for jr in 0..strips {
        let col0 = jr * nr;
        let full = (nc - col0).min(nr);
        let strip = &mut staging[jr * kc * nr..(jr * kc + kc) * nr];
        for p in 0..kc {
            let dst = &mut strip[p * nr..p * nr + nr];
            let base = view.at(p0 + p, j0 + col0);
            for (j, d) in dst.iter_mut().enumerate() {
                *d = if j < full { b[base + j * view.cs] } else { 0.0 };
            }
        }
    }
    quantize_to_f16(&staging, &mut panel[..used]);
    scratch::put(staging);
}

/// Full blocked loop for one C stripe of the f16-storage GEMM (the
/// [`super::gemm`] `gemm_stripe` with binary16 panels).
#[allow(clippy::too_many_arguments)]
fn hgemm_stripe(
    micro: MicroF16,
    k: usize,
    a: &[f32],
    av: View,
    b: &[f32],
    bv: View,
    c: *mut f32,
    ldc: usize,
    i0: usize,
    ms: usize,
    j0: usize,
    ns: usize,
) {
    let (mr, nr) = (micro.mr, micro.nr);
    let mut apanel = take_panel(MC.div_ceil(mr) * KC * mr + A_PANEL_SLACK);
    let mut bpanel = take_panel(NC.div_ceil(nr) * KC * nr);
    let mut acc = [0.0f32; ACC_MAX];
    for jc in (0..ns).step_by(NC) {
        let nc = (ns - jc).min(NC);
        for pc in (0..k).step_by(KC) {
            let kc = (k - pc).min(KC);
            pack_b_f16(&mut bpanel, nr, b, bv, pc, kc, j0 + jc, nc);
            for ic in (0..ms).step_by(MC) {
                let mc = (ms - ic).min(MC);
                pack_a_f16(&mut apanel, mr, a, av, i0 + ic, mc, pc, kc);
                for jr in 0..nc.div_ceil(nr) {
                    let bstrip = &bpanel[jr * kc * nr..(jr * kc + kc) * nr];
                    let ncols = (nc - jr * nr).min(nr);
                    for ir in 0..mc.div_ceil(mr) {
                        let astrip = &apanel[ir * kc * mr..];
                        let nrows = (mc - ir * mr).min(mr);
                        // `astrip` starts a strip of `kc*mr` packed halves
                        // (plus `A_PANEL_SLACK` trailing slots past the
                        // last strip), `bstrip` is exactly `kc*nr`.
                        // SAFETY: those sizes plus `acc` (ACC_MAX >= mr*nr)
                        // meet the kernel contract; ISA checked at detection.
                        unsafe {
                            (micro.kernel)(kc, astrip.as_ptr(), bstrip.as_ptr(), acc.as_mut_ptr());
                        }
                        let crow0 = i0 + ic + ir * mr;
                        let ccol0 = j0 + jc + jr * nr;
                        for r in 0..nrows {
                            let accrow = &acc[r * nr..r * nr + ncols];
                            // Stripes are mr/nr aligned and disjoint per
                            // call (see `hgemm_with_threads`).
                            // SAFETY: the row/col offsets stay inside this
                            // call's stripe and hence inside `c`.
                            let dst = unsafe {
                                std::slice::from_raw_parts_mut(
                                    c.add((crow0 + r) * ldc + ccol0),
                                    ncols,
                                )
                            };
                            for (d, &v) in dst.iter_mut().zip(accrow) {
                                *d += v;
                            }
                        }
                    }
                }
            }
        }
    }
    put_panel(bpanel);
    put_panel(apanel);
}

/// Blocked, threaded f16-storage GEMM: `C += op(A) · op(B)` with both
/// packed operands rounded to binary16 and all accumulation in f32.
///
/// Numerics: each operand element suffers one round-to-nearest binary16
/// storage rounding (relative error ≤ 2^-11); products and sums stay
/// f32, so the result error is linear in `k`, not compounded. The
/// workspace accuracy gate (PSNR delta vs the f32 path) pins the effect
/// on real U-Net inference.
///
/// # Panics
///
/// Panics if a slice length does not match its operand shape.
#[allow(clippy::too_many_arguments)]
pub fn hgemm(
    ta: Trans,
    tb: Trans,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    hgemm_with_threads(configured_threads(), ta, tb, m, k, n, a, b, c);
}

/// [`hgemm`] with an explicit thread budget (1 forces the
/// single-threaded blocked path; parity tests and benches sweep this).
///
/// # Panics
///
/// Panics if a slice length does not match its operand shape.
#[allow(clippy::too_many_arguments)]
pub fn hgemm_with_threads(
    threads: usize,
    ta: Trans,
    tb: Trans,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "A length must be m*k");
    assert_eq!(b.len(), k * n, "B length must be k*n");
    assert_eq!(c.len(), m * n, "C length must be m*n");
    if m == 0 || n == 0 || k == 0 {
        return; // C += 0 contribution
    }
    let micro = active_micro_f16();
    let av = View::new(ta, m, k);
    let bv = View::new(tb, k, n);
    let flops = 2usize.saturating_mul(m).saturating_mul(k).saturating_mul(n);
    let budget = threads.max(1);
    let shards = if flops < PAR_FLOP_THRESHOLD || budget == 1 {
        1
    } else {
        budget
            .min(if m >= n { m.div_ceil(micro.mr) } else { n.div_ceil(micro.nr) })
            .max(1)
    };
    if shards == 1 {
        hgemm_stripe(micro, k, a, av, b, bv, c.as_mut_ptr(), n, 0, m, 0, n);
        return;
    }
    let cptr = c.as_mut_ptr() as usize;
    if m >= n {
        let rows_per = m.div_ceil(shards).div_ceil(micro.mr) * micro.mr;
        let tasks = m.div_ceil(rows_per);
        parallel_for(tasks, &|t| {
            let i0 = t * rows_per;
            let ms = (m - i0).min(rows_per);
            hgemm_stripe(micro, k, a, av, b, bv, cptr as *mut f32, n, i0, ms, 0, n);
        });
    } else {
        let cols_per = n.div_ceil(shards).div_ceil(micro.nr) * micro.nr;
        let tasks = n.div_ceil(cols_per);
        parallel_for(tasks, &|t| {
            let j0 = t * cols_per;
            let ns = (n - j0).min(cols_per);
            hgemm_stripe(micro, k, a, av, b, bv, cptr as *mut f32, n, 0, m, j0, ns);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::gemm_naive;

    fn fill(seed: u32, len: usize, scale: f32) -> Vec<f32> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                ((state >> 16) as f32 / 32768.0 - 1.0) * scale
            })
            .collect()
    }

    #[test]
    fn conversion_round_trips_representable_values() {
        for v in [0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0, 6.1035156e-5] {
            assert_eq!(f16_to_f32(f32_to_f16(v)), v, "value {v}");
        }
    }

    #[test]
    fn conversion_error_is_bounded_by_half_ulp() {
        let vals = fill(3, 4096, 100.0);
        for &v in &vals {
            let q = f16_to_f32(f32_to_f16(v));
            assert!(
                (q - v).abs() <= v.abs() * (1.0 / 2048.0) + 1e-7,
                "{v} -> {q}"
            );
        }
    }

    #[test]
    fn conversion_handles_extremes() {
        assert_eq!(f32_to_f16(1e9), 0x7C00, "overflow -> +inf");
        assert_eq!(f32_to_f16(-1e9), 0xFC00, "overflow -> -inf");
        assert_eq!(f32_to_f16(1e-10), 0, "underflow -> +0");
        assert_eq!(f16_to_f32(0x7C00), f32::INFINITY);
        assert_eq!(f16_to_f32(0xFC00), f32::NEG_INFINITY);
        assert!(f16_to_f32(f32_to_f16(f32::NAN)).is_nan());
        // smallest subnormal half
        assert!((f16_to_f32(0x0001) - 5.960_464_5e-8).abs() < 1e-12);
        assert_eq!(f32_to_f16(5.960_464_5e-8), 0x0001);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn conversion_matches_hardware_f16c() {
        if !std::arch::is_x86_feature_detected!("f16c") {
            return;
        }
        #[target_feature(enable = "f16c")]
        unsafe fn hw(vals: &[f32; 8]) -> [u16; 8] {
            use std::arch::x86_64::{
                __m128i, _mm256_loadu_ps, _mm256_cvtps_ph, _mm_storeu_si128,
                _MM_FROUND_TO_NEAREST_INT,
            };
            let mut out = [0u16; 8];
            // SAFETY (in-test): both arrays are 8 elements; f16c was
            // detected by the caller.
            unsafe {
                let v = _mm256_loadu_ps(vals.as_ptr());
                let h = _mm256_cvtps_ph::<_MM_FROUND_TO_NEAREST_INT>(v);
                _mm_storeu_si128(out.as_mut_ptr() as *mut __m128i, h);
            }
            out
        }
        let vals = fill(17, 1024, 500.0);
        for chunk in vals.chunks_exact(8) {
            let mut arr = [0.0f32; 8];
            arr.copy_from_slice(chunk);
            // SAFETY: f16c presence checked above.
            let hwbits = unsafe { hw(&arr) };
            for (i, &v) in arr.iter().enumerate() {
                assert_eq!(
                    f32_to_f16(v),
                    hwbits[i],
                    "software vs vcvtps2ph for {v}"
                );
            }
        }
    }

    /// Oracle: f32 GEMM over operands pre-rounded through binary16 —
    /// exactly what hgemm computes, up to f32 summation order.
    fn quantised_reference(
        ta: Trans,
        tb: Trans,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
    ) -> Vec<f32> {
        let mut aq = vec![0.0f32; a.len()];
        quantize_f16_slice(a, &mut aq);
        let mut bq = vec![0.0f32; b.len()];
        quantize_f16_slice(b, &mut bq);
        // materialise op(A)/op(B) row-major for gemm_naive
        let av = View::new(ta, m, k);
        let bv = View::new(tb, k, n);
        let mut arm = vec![0.0f32; m * k];
        for r in 0..m {
            for cc in 0..k {
                arm[r * k + cc] = aq[av.at(r, cc)];
            }
        }
        let mut brm = vec![0.0f32; k * n];
        for r in 0..k {
            for cc in 0..n {
                brm[r * n + cc] = bq[bv.at(r, cc)];
            }
        }
        let mut c = vec![0.0f32; m * n];
        gemm_naive(m, k, n, &arm, &brm, &mut c);
        c
    }

    #[test]
    fn hgemm_matches_quantised_reference() {
        for (ta, tb) in [
            (Trans::N, Trans::N),
            (Trans::N, Trans::T),
            (Trans::T, Trans::N),
            (Trans::T, Trans::T),
        ] {
            let (m, k, n) = (37, 29, 23);
            let a = fill(1, m * k, 2.0);
            let b = fill(2, k * n, 2.0);
            let mut c = vec![0.0f32; m * n];
            hgemm_with_threads(1, ta, tb, m, k, n, &a, &b, &mut c);
            let expect = quantised_reference(ta, tb, m, k, n, &a, &b);
            for i in 0..c.len() {
                let tol = 1e-4 * expect[i].abs().max(1.0);
                assert!(
                    (c[i] - expect[i]).abs() < tol,
                    "{ta:?}{tb:?} c[{i}] {} vs {}",
                    c[i],
                    expect[i]
                );
            }
        }
    }

    #[test]
    fn hgemm_is_close_to_f32_gemm() {
        let (m, k, n) = (64, 96, 48);
        let a = fill(5, m * k, 1.0);
        let b = fill(6, k * n, 1.0);
        let mut cq = vec![0.0f32; m * n];
        hgemm(Trans::N, Trans::N, m, k, n, &a, &b, &mut cq);
        let mut cf = vec![0.0f32; m * n];
        crate::kernels::sgemm(Trans::N, Trans::N, m, k, n, &a, &b, &mut cf);
        // one binary16 rounding per operand: relative error ~k * 2^-11
        // on the dot product magnitude; these operands keep it tiny.
        for i in 0..cq.len() {
            assert!(
                (cq[i] - cf[i]).abs() < 0.05 * cf[i].abs().max(1.0),
                "c[{i}] {} vs {}",
                cq[i],
                cf[i]
            );
        }
    }

    #[test]
    fn threaded_hgemm_matches_single_threaded() {
        let (m, k, n) = (130, 70, 90);
        let a = fill(11, m * k, 1.5);
        let b = fill(12, k * n, 1.5);
        let mut c1 = vec![0.0f32; m * n];
        hgemm_with_threads(1, Trans::N, Trans::N, m, k, n, &a, &b, &mut c1);
        let mut c4 = vec![0.0f32; m * n];
        hgemm_with_threads(4, Trans::N, Trans::N, m, k, n, &a, &b, &mut c4);
        for i in 0..c1.len() {
            assert!((c1[i] - c4[i]).abs() < 1e-4 * c1[i].abs().max(1.0));
        }
    }

    #[test]
    fn hgemm_accumulates_into_c() {
        let (m, k, n) = (8, 8, 8);
        let a = fill(21, m * k, 1.0);
        let b = fill(22, k * n, 1.0);
        let mut c = vec![1.0f32; m * n];
        hgemm_with_threads(1, Trans::N, Trans::N, m, k, n, &a, &b, &mut c);
        let mut expect = vec![1.0f32; m * n];
        let add = quantised_reference(Trans::N, Trans::N, m, k, n, &a, &b);
        for (e, &v) in expect.iter_mut().zip(&add) {
            *e += v;
        }
        for i in 0..c.len() {
            assert!((c[i] - expect[i]).abs() < 1e-4 * expect[i].abs().max(1.0));
        }
    }
}
