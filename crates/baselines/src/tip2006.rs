//! Uehara et al., *Recovering DC coefficients in block-based DCT*
//! (IEEE TIP 2006) — the original block-iterative recovery.

use dcdiff_image::Image;
use dcdiff_jpeg::{CoeffImage, BLOCK};

use crate::common::{median, AcField};
use crate::DcRecovery;

/// TIP-2006 recovery: raster-scan the block grid from the top-left anchor
/// and set each unknown block's DC so the absolute pixel differences
/// across shared edges with already-recovered neighbours are minimised
/// (the L1-optimal offset is the median of per-pixel difference votes).
#[derive(Debug, Clone, Copy, Default)]
pub struct Tip2006;

impl Tip2006 {
    /// Create the method.
    pub fn new() -> Self {
        Self
    }

    fn recover_plane(&self, field: &AcField) -> Vec<f32> {
        let (bw, bh) = (field.blocks_x, field.blocks_y);
        let mut offsets = vec![0.0f32; bw * bh];
        let mut known = vec![false; bw * bh];
        for (i, anchor) in field.anchors.iter().enumerate() {
            if let Some(o) = anchor {
                offsets[i] = *o;
                known[i] = true;
            }
        }
        // raster scan; (0,0) is an anchor so every block has at least one
        // known neighbour when visited
        for by in 0..bh {
            for bx in 0..bw {
                let b = field.idx(bx, by);
                if known[b] {
                    continue;
                }
                let mut votes: Vec<f32> = Vec::with_capacity(2 * BLOCK);
                if bx > 0 && known[field.idx(bx - 1, by)] {
                    let n = field.idx(bx - 1, by);
                    let n_edge = field.column(n, BLOCK - 1);
                    let s_edge = field.column(b, 0);
                    for y in 0..BLOCK {
                        votes.push(n_edge[y] + offsets[n] - s_edge[y]);
                    }
                }
                if by > 0 && known[field.idx(bx, by - 1)] {
                    let n = field.idx(bx, by - 1);
                    let n_edge = field.row(n, BLOCK - 1);
                    let s_edge = field.row(b, 0);
                    for x in 0..BLOCK {
                        votes.push(n_edge[x] + offsets[n] - s_edge[x]);
                    }
                }
                // third direction of [22]: the top-right diagonal
                if by > 0 && bx + 1 < bw && known[field.idx(bx + 1, by - 1)] {
                    let n = field.idx(bx + 1, by - 1);
                    // corner pixel pair across the diagonal
                    let n_pix = field.pixels[n][(BLOCK - 1) * BLOCK]; // bottom-left
                    let s_pix = field.pixels[b][BLOCK - 1]; // top-right
                    votes.push(n_pix + offsets[n] - s_pix);
                }
                offsets[b] = if votes.is_empty() {
                    0.0
                } else {
                    median(&mut votes)
                };
                known[b] = true;
            }
        }
        offsets
    }
}

impl DcRecovery for Tip2006 {
    fn name(&self) -> &'static str {
        "TIP 2006"
    }

    fn recover(&self, dropped: &CoeffImage) -> Image {
        self.recover_coefficients(dropped).to_image()
    }

    fn recover_coefficients(&self, dropped: &CoeffImage) -> CoeffImage {
        let mut out = dropped.clone();
        for c in 0..dropped.channels() {
            let field = AcField::new(dropped.plane(c), dropped.qtable(c));
            let offsets = self.recover_plane(&field);
            field.apply_offsets(&offsets, out.plane_mut(c));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcdiff_data::{SceneGenerator, SceneKind};
    use dcdiff_jpeg::{ChromaSampling, DcDropMode};
    use dcdiff_metrics::psnr;

    #[test]
    fn recovers_smooth_images_well() {
        let img = SceneGenerator::new(SceneKind::Smooth, 64, 64).generate(1);
        let coeffs = CoeffImage::from_image(&img, 50, ChromaSampling::Cs444);
        let reference = coeffs.to_image(); // JPEG itself is lossy; compare to it
        let dropped = coeffs.drop_dc(DcDropMode::KeepCorners);
        let recovered = Tip2006::new().recover(&dropped);
        let without = dropped.to_image();
        let p_rec = psnr(&reference, &recovered);
        let p_drop = psnr(&reference, &without);
        assert!(
            p_rec > p_drop + 5.0,
            "recovery {p_rec} dB must beat no-recovery {p_drop} dB"
        );
        assert!(p_rec > 20.0, "smooth recovery should exceed 20 dB, got {p_rec}");
    }

    #[test]
    fn exact_on_constant_image() {
        use dcdiff_image::{Image, Plane};
        let img = Image::from_gray(Plane::filled(32, 32, 180.0));
        let coeffs = CoeffImage::from_image(&img, 50, ChromaSampling::Cs444);
        let dropped = coeffs.drop_dc(DcDropMode::KeepCorners);
        let rec = Tip2006::new().recover_coefficients(&dropped);
        for by in 0..rec.plane(0).blocks_y() {
            for bx in 0..rec.plane(0).blocks_x() {
                assert_eq!(rec.plane(0).dc(bx, by), coeffs.plane(0).dc(bx, by));
            }
        }
    }

    #[test]
    fn improves_textured_content_too() {
        use dcdiff_image::Image;
        let texture = SceneGenerator::new(SceneKind::Texture, 64, 64).generate(3);
        let run = |img: &Image| -> (f32, f32) {
            let coeffs = CoeffImage::from_image(img, 50, ChromaSampling::Cs444);
            let dropped = coeffs.drop_dc(DcDropMode::KeepCorners);
            let reference = coeffs.to_image();
            (
                psnr(&reference, &Tip2006::new().recover(&dropped)),
                psnr(&reference, &dropped.to_image()),
            )
        };
        let (rec, none) = run(&texture);
        assert!(rec > none, "texture recovery {rec} must beat no-recovery {none}");
    }
}
