//! DCDiff — diffusion-based DC coefficient estimation (the paper's core
//! contribution).
//!
//! The sender JPEG-codes an image and zeroes every quantised DC
//! coefficient except the four corner anchors; the receiver reconstructs
//! the picture by *estimating* the missing DC coefficients end-to-end
//! with a latent diffusion model instead of the block-iterative
//! statistical recovery of prior work. The pieces (paper §III):
//!
//! * [`mask`] — the Eq. 3 spatial mask separating low-frequency regions
//!   (where the Laplacian prior holds) from high-frequency ones;
//! * [`mld`] — the masked Laplacian distribution loss (Eq. 4), both as a
//!   differentiable tensor loss for training and as a pixel-domain energy;
//! * [`Stage1`] — the DC encoder `E_DC`, AC encoder `E_AC` and decoder
//!   `D` trained with `L1 + perceptual + discriminator` (Eq. 5);
//! * [`Stage2`] — fine-tuning the U-Net noise predictor with
//!   `L_ldm + σ·L_m` (Eq. 6), with ControlNet-style structure injection
//!   from the DC-less image `x̃`;
//! * [`DcDiff`] — the end-to-end estimator: FMPP-modulated DDIM sampling,
//!   decoding, **DC projection** (the decoded AC coefficients are kept
//!   bit-exact; only per-block means are taken from the generated image)
//!   and masked-Laplacian refinement.
//!
//! ## Scaled-down substitution
//!
//! The paper finetunes Stable Diffusion on 8×H800 GPUs; this reproduction
//! trains a small U-Net from scratch, which cannot carry an equivalent
//! image prior. To preserve the method's key property — the masked
//! Laplacian constraint that suppresses error propagation — the same MLD
//! objective the paper imposes through `L_m` during training is also
//! applied at inference as an explicit energy minimisation over the
//! generated DC map (anchored at the four corners, tied to the diffusion
//! output by a quadratic prior). `DESIGN.md` documents this substitution.
//!
//! # Example
//!
//! The training-free core of the receiver — DC projection plus the
//! masked-Laplacian refinement — is usable without any trained model:
//!
//! ```
//! use dcdiff_core::refine_dc_offsets;
//! use dcdiff_image::{ColorSpace, Image};
//! use dcdiff_jpeg::{ChromaSampling, CoeffImage, DcDropMode};
//!
//! let image = Image::filled(48, 48, ColorSpace::Rgb, 150.0);
//! let coeffs = CoeffImage::from_image(&image, 50, ChromaSampling::Cs444);
//! let dropped = coeffs.drop_dc(DcDropMode::KeepCorners);
//! // neutral prior: pass the dropped coefficients themselves
//! let recovered = refine_dc_offsets(&dropped, &dropped, 10.0, 5e-4, 100);
//! let out = recovered.to_image();
//! assert_eq!(out.dims(), (48, 48));
//! ```

pub mod mask;
pub mod mld;

mod discriminator;
mod estimator;
mod fallback;
mod perceptual;
mod projection;
mod refine;
mod stage1;
mod stage2;

pub use discriminator::PatchDiscriminator;
pub use estimator::{
    content_seed, BatchRecoverJob, DcDiff, DcDiffConfig, RecoverOptions, TrainBudget, TrainReport,
};
pub use fallback::{
    BreakerState, CircuitBreaker, EstimateError, FallbackEstimator, LadderOutcome, RecoveryTier,
};
pub use perceptual::PerceptualLoss;
pub use projection::{image_to_tensor, project_dc, tensor_to_image};
pub use refine::{refine_dc_offsets, refine_dc_offsets_with, RefineConfig};
pub use stage1::Stage1;
pub use stage2::Stage2;
