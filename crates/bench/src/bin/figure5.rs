//! Figure 5 — qualitative comparison: a street-view (Urban100-profile)
//! and an aerial (Inria-profile) scene reconstructed by every method,
//! dumped as PPM files into `artifacts/figure5/` with per-image
//! PSNR / LPIPS annotations printed to stdout.
//!
//! Usage: `cargo run --release -p dcdiff-bench --bin figure5 [-- --quick]`

use dcdiff_bench::{artifact_dir, code_image, quick_mode, render_table, table1_roster};
use dcdiff_data::{SceneGenerator, SceneKind};
use dcdiff_image::write_ppm;
use dcdiff_metrics::{psnr, PerceptualDistance};

fn main() {
    let quick = quick_mode();
    let methods = table1_roster(quick);
    let perceptual = PerceptualDistance::default();
    let out_dir = artifact_dir().join("figure5");
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    let scenes = [
        ("street", SceneGenerator::new(SceneKind::Urban, 128, 96).generate(0xF15)),
        ("aerial", SceneGenerator::new(SceneKind::Aerial, 96, 96).generate(0xF15)),
    ];

    for (name, image) in &scenes {
        let (_, dropped, reference) = code_image(image);
        write_ppm(out_dir.join(format!("{name}-original.ppm")), &reference)
            .expect("write original");
        write_ppm(out_dir.join(format!("{name}-xtilde.ppm")), &dropped.to_image())
            .expect("write x~");
        let mut rows = Vec::new();
        for method in &methods {
            let recovered = method.recover(&dropped);
            let slug = method
                .name()
                .to_lowercase()
                .replace(' ', "-")
                .replace(['/', ':'], "");
            write_ppm(out_dir.join(format!("{name}-{slug}.ppm")), &recovered)
                .expect("write reconstruction");
            rows.push(vec![
                method.name(),
                format!("{:.2}", psnr(&reference, &recovered)),
                format!("{:.4}", perceptual.distance(&reference, &recovered)),
            ]);
        }
        println!(
            "{}",
            render_table(
                &format!("Figure 5 — {name} scene"),
                &["Method", "PSNR", "LPIPS"],
                &rows,
            )
        );
    }
    println!("PPM dumps written to {}", out_dir.display());
}
