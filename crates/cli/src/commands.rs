//! Sub-command implementations.

use dcdiff_baselines::{DcRecovery, Icip2022, SmartCom2019, Tip2006};
use dcdiff_core::refine_dc_offsets;
use dcdiff_data::{SceneGenerator, SceneKind};
use dcdiff_image::{read_pgm, read_ppm, write_pgm, write_ppm};

/// Read a PPM or PGM image based on the file extension.
fn read_image(path: &str) -> Result<dcdiff_image::Image, String> {
    if path.to_ascii_lowercase().ends_with(".pgm") {
        read_pgm(path).map_err(|e| e.to_string())
    } else {
        read_ppm(path).map_err(|e| e.to_string())
    }
}

/// Write a PPM or PGM image based on the file extension.
fn write_image(path: &str, image: &dcdiff_image::Image) -> Result<(), String> {
    if path.to_ascii_lowercase().ends_with(".pgm") {
        write_pgm(path, image).map_err(|e| e.to_string())
    } else {
        write_ppm(path, image).map_err(|e| e.to_string())
    }
}
use dcdiff_jpeg::{
    encode_coefficients, encode_coefficients_optimized, encode_coefficients_with_restarts,
    ChromaSampling, DcDropMode, JpegDecoder, JpegEncoder,
};
use dcdiff_metrics::{ms_ssim, psnr, ssim, PerceptualDistance};

use crate::args::Parsed;

/// Usage text shown on errors.
pub const USAGE: &str = "usage:
  dcdiff encode  <in.ppm> <out.jpg>  [--quality N | --budget BYTES]
                                     [--subsample 444|422|420]
                                     [--optimize] [--restart N] [--drop-dc]
  dcdiff decode  <in.jpg> <out.ppm>
  dcdiff transcode <in.jpg> <out.jpg> [--drop-dc] [--optimize] [--restart N]
  dcdiff recover <in.jpg> <out.ppm>  [--method tip2006|smartcom|icip|mld|diffusion]
                                     [--threshold T] [--sweeps N]
  dcdiff metrics <ref.ppm> <test.ppm>
  dcdiff info    <in.jpg>
  dcdiff demo    <out.ppm>           [--scene smooth|natural|texture|urban|aerial]
                                     [--size WxH] [--seed N]
  dcdiff batch   <manifest>          [--workers N (default: all cores)]
                                     [--queue-cap M] [--retries R]
                                     [--batch K] [--batch-width W]
                                     [--fail-fast] [--no-fallback]
                                     [--trace t.jsonl] [--metrics m.json]
                                     [--log-level error|warn|info|debug]
  dcdiff report  <trace.jsonl> [more.jsonl ...]
  dcdiff serve   [--addr HOST:PORT]   [--workers N] [--queue-cap M] [--batch K]
                                     [--batch-width W]
                                     [--method tip2006|smartcom|icip|mld|diffusion]
                                     [--threshold T] [--sweeps N] [--no-fallback]
                                     [--max-conns C] [--client-inflight F]
                                     [--max-body BYTES]
                                     [--trace t.jsonl] [--metrics m.json]
                                     [--log-level error|warn|info|debug]
  dcdiff submit  <addr> <in.jpg> <out.ppm|out.pgm>
                                     [--class interactive|standard|bulk]
                                     [--dc-plane]
  dcdiff top     <addr>              [--interval-ms MS] [--once]
  dcdiff lint    [--rule <id>] [--json] [--root DIR] [--update-ledger]
                 [--changed] [--graph] [--entry SYM]... [--why SYM]
                 [--max-unresolved RATE]";

/// Dispatch the parsed command line.
///
/// # Errors
///
/// Returns a human-readable message for any parse, I/O or codec failure.
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    let parsed = Parsed::parse(argv)?;
    // `submit` takes <addr> <in> <out>, `report` merges any number of
    // trace files; everything else at most two positionals after the
    // command.
    let max_positionals = match parsed.positional(0) {
        Some("submit") => 4,
        Some("report") => usize::MAX,
        _ => 3,
    };
    if parsed.positional_len() > max_positionals {
        return Err(format!(
            "too many arguments ({} given, at most {max_positionals} expected)",
            parsed.positional_len()
        ));
    }
    match parsed.positional(0) {
        Some("encode") => encode(&parsed),
        Some("decode") => decode(&parsed),
        Some("transcode") => transcode(&parsed),
        Some("recover") => recover(&parsed),
        Some("metrics") => metrics(&parsed),
        Some("info") => info(&parsed),
        Some("demo") => demo(&parsed),
        Some("batch") => batch(&parsed),
        Some("report") => report(&parsed),
        Some("serve") => serve(&parsed),
        Some("submit") => submit(&parsed),
        Some("top") => top(&parsed),
        Some("lint") => lint(&parsed),
        Some(other) => Err(format!("unknown command '{other}'")),
        None => Err("no command given".to_string()),
    }
}

fn io_err(err: impl std::fmt::Display) -> String {
    err.to_string()
}

fn need(parsed: &Parsed, i: usize, what: &str) -> Result<String, String> {
    parsed
        .positional(i)
        .map(str::to_string)
        .ok_or_else(|| format!("missing {what}"))
}

fn encode(parsed: &Parsed) -> Result<(), String> {
    let input = need(parsed, 1, "input .ppm path")?;
    let output = need(parsed, 2, "output .jpg path")?;
    let quality = parsed.int("--quality", 50)? as u8;
    if !(1..=100).contains(&quality) {
        return Err("--quality must be 1..=100".to_string());
    }
    let sampling = match parsed.value("--subsample") {
        None | Some("444") => ChromaSampling::Cs444,
        Some("422") => ChromaSampling::Cs422,
        Some("420") => ChromaSampling::Cs420,
        Some(other) => return Err(format!("unknown subsampling '{other}' (444, 422 or 420)")),
    };
    let restart = parsed.int("--restart", 0)? as usize;

    let image = read_image(&input)?;
    if let Some(budget) = parsed.value("--budget") {
        let max_bytes: usize = budget
            .parse()
            .map_err(|_| format!("--budget: '{budget}' is not an integer"))?;
        let control = dcdiff_jpeg::rate::RateControl {
            max_bytes,
            sampling,
            drop_dc: parsed.has("--drop-dc"),
            optimize: parsed.has("--optimize"),
        };
        let out = dcdiff_jpeg::rate::encode_to_budget(&image, control).map_err(io_err)?;
        std::fs::write(&output, &out.bytes).map_err(io_err)?;
        println!(
            "{output}: {} bytes within budget {max_bytes} (picked quality {})",
            out.bytes.len(),
            out.quality
        );
        return Ok(());
    }
    let encoder = JpegEncoder::new(quality).with_sampling(sampling);
    let mut coeffs = encoder.to_coefficients(&image);
    if parsed.has("--drop-dc") {
        coeffs = coeffs.drop_dc(DcDropMode::KeepCorners);
    }
    let bytes = if parsed.has("--optimize") {
        encode_coefficients_optimized(&coeffs).map_err(io_err)?
    } else if restart > 0 {
        encode_coefficients_with_restarts(&coeffs, restart).map_err(io_err)?
    } else {
        encode_coefficients(&coeffs).map_err(io_err)?
    };
    std::fs::write(&output, &bytes).map_err(io_err)?;
    println!(
        "{output}: {} bytes (quality {quality}, {sampling}{}{})",
        bytes.len(),
        if parsed.has("--drop-dc") { ", DC dropped" } else { "" },
        if parsed.has("--optimize") { ", optimized tables" } else { "" },
    );
    Ok(())
}

fn decode(parsed: &Parsed) -> Result<(), String> {
    let input = need(parsed, 1, "input .jpg path")?;
    let output = need(parsed, 2, "output .ppm path")?;
    let bytes = std::fs::read(&input).map_err(io_err)?;
    let image = JpegDecoder::decode(&bytes).map_err(io_err)?;
    write_image(&output, &image)?;
    println!("{output}: {}x{}", image.width(), image.height());
    Ok(())
}

/// Lossless bitstream surgery on an existing JPEG: entropy-decode,
/// optionally drop DC, re-code with standard/optimised tables.
fn transcode(parsed: &Parsed) -> Result<(), String> {
    let input = need(parsed, 1, "input .jpg path")?;
    let output = need(parsed, 2, "output .jpg path")?;
    let bytes = std::fs::read(&input).map_err(io_err)?;
    let mut coeffs = JpegDecoder::decode_coefficients(&bytes).map_err(io_err)?;
    if parsed.has("--drop-dc") {
        coeffs = coeffs.drop_dc(DcDropMode::KeepCorners);
    }
    let restart = parsed.int("--restart", 0)? as usize;
    let out = if parsed.has("--optimize") {
        encode_coefficients_optimized(&coeffs).map_err(io_err)?
    } else if restart > 0 {
        encode_coefficients_with_restarts(&coeffs, restart).map_err(io_err)?
    } else {
        encode_coefficients(&coeffs).map_err(io_err)?
    };
    std::fs::write(&output, &out).map_err(io_err)?;
    println!(
        "{output}: {} -> {} bytes ({:.1}%)",
        bytes.len(),
        out.len(),
        100.0 * out.len() as f64 / bytes.len() as f64
    );
    Ok(())
}

fn recover(parsed: &Parsed) -> Result<(), String> {
    let input = need(parsed, 1, "input .jpg path")?;
    let output = need(parsed, 2, "output .ppm path")?;
    let bytes = std::fs::read(&input).map_err(io_err)?;
    let dropped = JpegDecoder::decode_coefficients(&bytes).map_err(io_err)?;
    let method = parsed.value("--method").unwrap_or("mld");
    let image = match method {
        "tip2006" => Tip2006::new().recover(&dropped),
        "smartcom" => SmartCom2019::new().recover(&dropped),
        "icip" => Icip2022::new().recover(&dropped),
        "mld" => {
            // the masked-Laplacian refinement with a neutral prior — the
            // training-free core of DCDiff's receiver
            let threshold = parsed.float("--threshold", 10.0)?;
            let sweeps = parsed.int("--sweeps", 300)? as usize;
            refine_dc_offsets(&dropped, &dropped, threshold, 5e-4, sweeps.max(1)).to_image()
        }
        "diffusion" => {
            // Full DDIM sampler, quality-oriented offline defaults
            // (`DcDiffConfig::ddim_steps`); `--sweeps` overrides the step
            // count, clamped to the legal 1..=diffusion_steps range.
            let config = dcdiff_core::DcDiffConfig::default();
            let mut options = dcdiff_core::RecoverOptions::from_config(&config);
            if parsed.value("--sweeps").is_some() {
                let steps = parsed.int("--sweeps", options.ddim_steps as u64)? as usize;
                options.ddim_steps = steps.clamp(1, config.diffusion_steps);
            }
            dcdiff_core::DcDiff::new(config, 0xdcd1ff).recover_with(&dropped, &options)
        }
        other => return Err(format!(
            "unknown method '{other}' (tip2006, smartcom, icip, mld or diffusion)"
        )),
    };
    write_image(&output, &image)?;
    println!("{output}: recovered with {method}");
    Ok(())
}

fn metrics(parsed: &Parsed) -> Result<(), String> {
    let reference = read_image(&need(parsed, 1, "reference image")?)?;
    let test = read_image(&need(parsed, 2, "test image")?)?;
    if reference.dims() != test.dims() {
        return Err(format!(
            "size mismatch: {}x{} vs {}x{}",
            reference.width(),
            reference.height(),
            test.width(),
            test.height()
        ));
    }
    println!("PSNR    {:.3} dB", psnr(&reference, &test));
    println!("SSIM    {:.4}", ssim(&reference, &test));
    if reference.width() >= 16 && reference.height() >= 16 {
        println!("MS-SSIM {:.4}", ms_ssim(&reference, &test));
    }
    println!(
        "LPIPS   {:.4}",
        PerceptualDistance::default().distance(&reference, &test)
    );
    Ok(())
}

fn info(parsed: &Parsed) -> Result<(), String> {
    let input = need(parsed, 1, "input .jpg path")?;
    let bytes = std::fs::read(&input).map_err(io_err)?;
    let coeffs = JpegDecoder::decode_coefficients(&bytes).map_err(io_err)?;
    println!("{input}:");
    println!("  size        {} bytes", bytes.len());
    println!("  dimensions  {}x{}", coeffs.width(), coeffs.height());
    println!("  components  {}", coeffs.channels());
    println!("  sampling    {}", coeffs.sampling());
    let luma = coeffs.plane(0);
    println!("  luma blocks {}x{}", luma.blocks_x(), luma.blocks_y());
    println!("  q0 (luma)   {}", coeffs.qtable(0).values()[0]);
    println!(
        "  est quality {}",
        coeffs
            .qtable(0)
            .estimate_quality(&dcdiff_jpeg::quant::LUMA_BASE)
    );
    let zero_dc = (0..luma.blocks_y())
        .flat_map(|by| (0..luma.blocks_x()).map(move |bx| (bx, by)))
        .filter(|&(bx, by)| luma.dc(bx, by) == 0)
        .count();
    let total = luma.blocks_x() * luma.blocks_y();
    println!(
        "  zero DC     {zero_dc}/{total} luma blocks{}",
        if zero_dc * 10 > total * 9 {
            "  <- looks DC-dropped; try `dcdiff recover`"
        } else {
            ""
        }
    );
    Ok(())
}

fn demo(parsed: &Parsed) -> Result<(), String> {
    let output = need(parsed, 1, "output .ppm path")?;
    let kind = match parsed.value("--scene").unwrap_or("natural") {
        "smooth" => SceneKind::Smooth,
        "natural" => SceneKind::Natural,
        "texture" => SceneKind::Texture,
        "urban" => SceneKind::Urban,
        "aerial" => SceneKind::Aerial,
        other => return Err(format!("unknown scene '{other}'")),
    };
    let (w, h) = parsed.size("--size", (96, 96))?;
    if w == 0 || h == 0 {
        return Err("--size must be positive".to_string());
    }
    let seed = parsed.int("--seed", 0)?;
    let image = SceneGenerator::new(kind, w, h).generate(seed);
    write_image(&output, &image)?;
    println!("{output}: {kind:?} scene {w}x{h} (seed {seed})");
    Ok(())
}

/// Build the [`dcdiff_telemetry::Telemetry`] handle described by `--trace`, `--metrics` and
/// `--log-level`, shared by `batch` and any future instrumented command.
fn telemetry_from_flags(parsed: &Parsed) -> Result<dcdiff_telemetry::Telemetry, String> {
    let level = match parsed.value("--log-level") {
        None => dcdiff_telemetry::Level::Info,
        Some(s) => s.parse()?,
    };
    let mut builder = dcdiff_telemetry::Telemetry::builder().log_level(level);
    if let Some(path) = parsed.value("--trace") {
        builder = builder
            .trace_to_path(path)
            .map_err(|e| format!("--trace {path}: {e}"))?;
    }
    Ok(builder.build())
}

/// Run a manifest of jobs through the batch-serving runtime.
fn batch(parsed: &Parsed) -> Result<(), String> {
    use dcdiff_runtime::{RecoveryPolicy, Runtime, RuntimeConfig, ShutdownMode, SubmitError};

    let manifest_path = need(parsed, 1, "manifest path")?;
    let text = std::fs::read_to_string(&manifest_path)
        .map_err(|e| format!("{manifest_path}: {e}"))?;
    let specs =
        dcdiff_runtime::parse_manifest(&text).map_err(|e| format!("{manifest_path}: {e}"))?;
    if specs.is_empty() {
        return Err(format!("{manifest_path}: no jobs in manifest"));
    }

    let tel = telemetry_from_flags(parsed)?;
    // Deep library code (DDIM steps, recovery phases) traces through the
    // process-wide handle; installing ours merges those spans into this
    // batch's trace.
    dcdiff_telemetry::install(tel.clone());

    let default_workers =
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let config = RuntimeConfig {
        workers: parsed.int("--workers", default_workers as u64)?.max(1) as usize,
        queue_cap: parsed.int("--queue-cap", 64)?.max(1) as usize,
        default_retries: parsed.int("--retries", 0)? as u32,
        batch_max: parsed.int("--batch", 8)?.max(1) as usize,
        diffusion_batch_width: parsed.int("--batch-width", 8)?.max(1) as usize,
        telemetry: tel.clone(),
        recovery: if parsed.has("--no-fallback") {
            RecoveryPolicy::no_fallback()
        } else {
            RecoveryPolicy::default()
        },
        ..RuntimeConfig::default()
    };
    let fail_fast = parsed.has("--fail-fast");
    let total = specs.len();
    println!(
        "batch: {total} jobs, {} workers, queue cap {}, micro-batch {}, cohort width {}",
        config.workers, config.queue_cap, config.batch_max, config.diffusion_batch_width
    );

    let runtime = Runtime::start(config);
    let started = std::time::Instant::now();
    let batch_span = tel.span(dcdiff_telemetry::names::SPAN_BATCH_RUN);
    let mut shed = 0usize;
    for spec in specs {
        let submitted = if fail_fast {
            runtime.submit(spec)
        } else {
            runtime.submit_blocking(spec)
        };
        match submitted {
            Ok(_) => {}
            Err(SubmitError::QueueFull) => shed += 1,
            Err(SubmitError::ShuttingDown) => {
                return Err("runtime shut down during submission".to_string())
            }
        }
    }
    let report = runtime.shutdown(ShutdownMode::Drain);
    drop(batch_span);
    let wall = started.elapsed();

    let mut failed = 0usize;
    for result in &report.results {
        match &result.outcome {
            Ok(_) => {}
            Err(failure) => {
                failed += 1;
                tel.error(format!(
                    "job {} ({}): {failure:?} after {} attempt(s)",
                    result.id,
                    result.job.stage().name(),
                    result.attempts
                ));
            }
        }
    }
    println!("{}", report.stats.render());
    println!(
        "{} job(s) in {:.0} ms ({:.1} jobs/s)",
        report.results.len(),
        wall.as_secs_f64() * 1e3,
        report.results.len() as f64 / wall.as_secs_f64().max(1e-9)
    );
    if shed > 0 {
        println!("shed {shed} job(s) at submission (--fail-fast)");
    }
    tel.flush();
    if let Some(path) = parsed.value("--metrics") {
        std::fs::write(path, tel.metrics_json()).map_err(|e| format!("--metrics {path}: {e}"))?;
        println!("metrics written to {path}");
    }
    if let Some(path) = parsed.value("--trace") {
        println!("trace written to {path} (inspect with `dcdiff report {path}`)");
    }
    if failed > 0 {
        return Err(format!("{failed} of {total} job(s) failed"));
    }
    Ok(())
}

/// Run the long-lived network front door (`dcdiff serve`).
fn serve(parsed: &Parsed) -> Result<(), String> {
    use dcdiff_runtime::{RecoveryPolicy, RuntimeConfig};
    use dcdiff_serve::{method_from_name, ServeConfig, Server};

    let tel = telemetry_from_flags(parsed)?;
    dcdiff_telemetry::install(tel.clone());

    let default_workers =
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let method = method_from_name(
        parsed.value("--method").unwrap_or("mld"),
        parsed.float("--threshold", 10.0)?,
        parsed.int("--sweeps", 300)? as usize,
    )?;
    let mut cfg = ServeConfig {
        addr: parsed.value("--addr").unwrap_or("127.0.0.1:7878").to_string(),
        max_connections: parsed.int("--max-conns", 64)?.max(1) as usize,
        per_client_inflight: parsed.int("--client-inflight", 4)?.max(1) as usize,
        max_body_bytes: parsed.int("--max-body", 16 << 20)?.max(1024) as usize,
        method,
        ..ServeConfig::default()
    };
    cfg.runtime = RuntimeConfig {
        workers: parsed.int("--workers", default_workers as u64)?.max(1) as usize,
        queue_cap: parsed.int("--queue-cap", 64)?.max(1) as usize,
        batch_max: parsed.int("--batch", 8)?.max(1) as usize,
        diffusion_batch_width: parsed.int("--batch-width", 8)?.max(1) as usize,
        telemetry: tel.clone(),
        recovery: if parsed.has("--no-fallback") {
            RecoveryPolicy::no_fallback()
        } else {
            RecoveryPolicy::default()
        },
        ..RuntimeConfig::default()
    };

    let server = Server::bind_with(cfg, tel.clone()).map_err(io_err)?;
    dcdiff_serve::signal::install();
    println!(
        "serve: listening on {} ({} workers, queue cap {}, method {}); SIGTERM or POST /admin/drain to stop",
        server.local_addr(),
        parsed.int("--workers", default_workers as u64)?.max(1),
        parsed.int("--queue-cap", 64)?.max(1),
        parsed.value("--method").unwrap_or("mld"),
    );
    let report = server.run_until_shutdown();
    if let Some(stats) = &report.stats {
        println!("{}", stats.render());
    }
    if report.abandoned_connections > 0 {
        println!(
            "drain grace expired with {} connection(s) still open",
            report.abandoned_connections
        );
    }
    tel.flush();
    if let Some(path) = parsed.value("--metrics") {
        std::fs::write(path, tel.metrics_json()).map_err(|e| format!("--metrics {path}: {e}"))?;
        println!("metrics written to {path}");
    }
    if let Some(path) = parsed.value("--trace") {
        println!("trace written to {path} (inspect with `dcdiff report {path}`)");
    }
    println!("serve: drained cleanly");
    Ok(())
}

/// Send one JPEG to a running `dcdiff serve` and save the response
/// (`dcdiff submit`).
fn submit(parsed: &Parsed) -> Result<(), String> {
    let addr = need(parsed, 1, "server address (host:port)")?;
    let input = need(parsed, 2, "input .jpg path")?;
    let output = need(parsed, 3, "output image path")?;
    let jpeg = std::fs::read(&input).map_err(|e| format!("{input}: {e}"))?;
    let dc_plane = parsed.has("--dc-plane") || output.to_ascii_lowercase().ends_with(".pgm");
    let client = dcdiff_serve::Client::new(addr.as_str());
    let response = client
        .recover(&jpeg, parsed.value("--class"), dc_plane)
        .map_err(|e| format!("{addr}: {e}"))?;
    if !response.is_success() {
        return Err(format!(
            "{addr}: server answered {}: {}",
            response.status,
            String::from_utf8_lossy(&response.body).trim()
        ));
    }
    std::fs::write(&output, &response.body).map_err(|e| format!("{output}: {e}"))?;
    println!(
        "{output}: {} bytes ({})",
        response.body.len(),
        response.header("content-type").unwrap_or("unknown type"),
    );
    Ok(())
}

/// Aggregate and render one or more JSONL traces produced by
/// `dcdiff batch --trace` / `dcdiff serve --trace`. Multiple files are
/// merged end-to-end ([`dcdiff_telemetry::TraceReport::from_texts`]), so a
/// fleet of per-run traces rolls up into one table.
fn report(parsed: &Parsed) -> Result<(), String> {
    let mut paths = Vec::new();
    let mut i = 1;
    while let Some(path) = parsed.positional(i) {
        paths.push(path.to_string());
        i += 1;
    }
    if paths.is_empty() {
        return Err("missing trace .jsonl path".to_string());
    }
    let mut texts = Vec::new();
    for path in &paths {
        texts.push(std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?);
    }
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    let trace = dcdiff_telemetry::TraceReport::from_texts(&refs)
        .map_err(|e| format!("{}: {e}", paths.join(", ")))?;
    if paths.len() > 1 {
        println!("merged {} trace file(s)", paths.len());
    }
    print!("{}", trace.render());
    Ok(())
}

/// Live serving dashboard (`dcdiff top <addr>`): polls `GET /metrics` with
/// `Accept: text/plain`, parses the Prometheus exposition back through
/// [`dcdiff_telemetry::prometheus::parse`], and renders a refreshing
/// terminal table. `--once` prints a single frame (CI smoke); `--interval-ms`
/// sets the refresh cadence.
fn top(parsed: &Parsed) -> Result<(), String> {
    let addr = need(parsed, 1, "server address (host:port)")?;
    let interval =
        std::time::Duration::from_millis(parsed.int("--interval-ms", 1000)?.max(100));
    let once = parsed.has("--once");
    let client = dcdiff_serve::Client::new(addr.as_str());
    loop {
        let response = client
            .get_with("/metrics", &[("accept", "text/plain")])
            .map_err(|e| format!("{addr}: {e}"))?;
        if !response.is_success() {
            return Err(format!("{addr}: server answered {}", response.status));
        }
        let text = String::from_utf8_lossy(&response.body);
        let samples = dcdiff_telemetry::prometheus::parse(&text)
            .map_err(|e| format!("{addr}: bad exposition: {e}"))?;
        let frame = render_top(&addr, &samples);
        if once {
            print!("{frame}");
            return Ok(());
        }
        // Clear screen + home, then the frame: a cheap full-redraw "top".
        print!("\x1b[2J\x1b[H{frame}");
        use std::io::Write as _;
        std::io::stdout().flush().ok();
        std::thread::sleep(interval);
    }
}

/// Format one `dcdiff top` frame from parsed exposition samples.
fn render_top(addr: &str, samples: &[dcdiff_telemetry::prometheus::Sample]) -> String {
    use std::fmt::Write as _;

    let plain = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
            .map(|s| s.value)
    };
    let quantile = |name: &str, q: &str, window: Option<&str>| {
        samples
            .iter()
            .find(|s| {
                s.name == name
                    && s.label("quantile") == Some(q)
                    && s.label("window") == window
            })
            .map(|s| s.value)
    };
    // First windowed rate for a counter, with its window label.
    let rate = |name: &str| {
        let rate_name = format!("{name}_rate");
        samples
            .iter()
            .find(|s| s.name == rate_name && s.label("window").is_some())
            .map(|s| (s.label("window").unwrap_or("?").to_string(), s.value))
    };
    let fmt_count = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |v| format!("{v:.0}"));
    let fmt_rate = |r: Option<(String, f64)>| {
        r.map_or_else(String::new, |(w, v)| format!(" ({v:.2}/s over {w})"))
    };
    let fmt_ms = |v: Option<f64>| {
        v.map_or_else(|| "-".to_string(), |us| format!("{:.1}ms", us / 1e3))
    };

    let mut out = String::new();
    let _ = writeln!(out, "dcdiff top — {addr}");
    let _ = writeln!(
        out,
        "queue depth {}   in-flight {}   connections {}   draining {}",
        fmt_count(plain("runtime_queue_depth")),
        fmt_count(plain("serve_in_flight")),
        fmt_count(plain("serve_connections")),
        fmt_count(plain("serve_draining")),
    );
    let _ = writeln!(
        out,
        "accepted {}{}   completed {}   shed {}{}   failed {}",
        fmt_count(plain("serve_accepted")),
        fmt_rate(rate("serve_accepted")),
        fmt_count(plain("serve_completed")),
        fmt_count(plain("serve_shed")),
        fmt_rate(rate("serve_shed")),
        fmt_count(plain("serve_failed")),
    );

    // Per-deadline-class admitted/shed: the class set is dynamic, so scan
    // for `serve_class_<c>_admitted` sample names instead of assuming the
    // default ladder.
    let mut classes: Vec<&str> = samples
        .iter()
        .filter_map(|s| {
            s.name
                .strip_prefix("serve_class_")
                .and_then(|rest| rest.strip_suffix("_admitted"))
        })
        .collect();
    classes.sort_unstable();
    classes.dedup();
    for class in classes {
        let _ = writeln!(
            out,
            "  class {class:<12} admitted {}{}   shed {}{}",
            fmt_count(plain(&format!("serve_class_{class}_admitted"))),
            fmt_rate(rate(&format!("serve_class_{class}_admitted"))),
            fmt_count(plain(&format!("serve_class_{class}_shed"))),
            fmt_rate(rate(&format!("serve_class_{class}_shed"))),
        );
    }

    // Latency: cumulative and (when the window has data) rolling quantiles.
    for (label, name) in [
        ("request wall", "serve_request_wall_us"),
        ("recover stage", "stage_recover_us"),
        ("queue wait", "runtime_queue_wait_us"),
    ] {
        let windowed = samples
            .iter()
            .find(|s| s.name == name && s.label("window").is_some() && s.label("quantile") == Some("0.99"))
            .and_then(|s| s.label("window"))
            .map(str::to_string);
        let mut line = format!(
            "{label:<14} p50 {}  p99 {}",
            fmt_ms(quantile(name, "0.5", None)),
            fmt_ms(quantile(name, "0.99", None)),
        );
        if let Some(w) = windowed {
            let _ = write!(
                line,
                "   [{w}] p50 {}  p99 {}",
                fmt_ms(quantile(name, "0.5", Some(&w))),
                fmt_ms(quantile(name, "0.99", Some(&w))),
            );
        }
        let _ = writeln!(out, "{line}");
    }

    // Worker busy gauges (`runtime.worker.<n>.busy_us`, cumulative).
    let mut workers: Vec<(&str, f64)> = samples
        .iter()
        .filter_map(|s| {
            s.name
                .strip_prefix("runtime_worker_")
                .and_then(|rest| rest.strip_suffix("_busy_us"))
                .map(|id| (id, s.value))
        })
        .collect();
    workers.sort_unstable_by(|a, b| a.0.cmp(b.0));
    if !workers.is_empty() {
        let busy: Vec<String> = workers
            .iter()
            .map(|(id, us)| format!("w{id} {:.1}s", us / 1e6))
            .collect();
        let _ = writeln!(out, "workers busy   {}", busy.join("  "));
    }

    let breaker = plain("breaker_state").map(|v| match v as i64 {
        0 => "0 (closed)".to_string(),
        1 => "1 (half-open)".to_string(),
        2 => "2 (open)".to_string(),
        other => format!("{other} (?)"),
    });
    if let Some(state) = breaker {
        let _ = writeln!(out, "breaker state  {state}");
    }
    // Decode hot path (`jpeg.decode.*`): entropy latency, coded-byte
    // throughput and cumulative volume. Omitted entirely when the server
    // has not decoded anything (or predates the series).
    if plain("jpeg_decode_bytes").is_some()
        || quantile("jpeg_decode_entropy_us", "0.5", None).is_some()
    {
        let _ = writeln!(
            out,
            "jpeg decode    entropy p50 {}  p99 {}   {} MB/s p50   bytes {}{}  blocks {}",
            fmt_ms(quantile("jpeg_decode_entropy_us", "0.5", None)),
            fmt_ms(quantile("jpeg_decode_entropy_us", "0.99", None)),
            fmt_count(quantile("jpeg_decode_mbps", "0.5", None)),
            fmt_count(plain("jpeg_decode_bytes")),
            fmt_rate(rate("jpeg_decode_bytes")),
            fmt_count(plain("jpeg_decode_blocks")),
        );
    }
    let _ = writeln!(
        out,
        "estimator      primary ok {}  fail {}  fallback {}  log suppressed {}",
        fmt_count(plain("estimator_primary_ok")),
        fmt_count(plain("estimator_primary_fail")),
        fmt_count(
            plain("estimator_fallback_baseline")
                .map(|b| b + plain("estimator_fallback_flat").unwrap_or(0.0))
        ),
        fmt_count(plain("log_suppressed")),
    );
    out
}

/// `dcdiff lint` — run the workspace static-analysis engine
/// ([`dcdiff_analysis`]) and fail with a non-zero exit when any contract
/// rule fires. `--rule <id>` restricts the run to one rule, `--json`
/// emits the machine-readable report (for the CI artifact), `--root DIR`
/// lints a different tree, and `--update-ledger` regenerates
/// `UNSAFE_LEDGER.md` from the workspace's unsafe sites instead of
/// linting. The interprocedural engine adds `--changed` (file-local rules
/// only on git-modified files), `--entry SYM` (override the request-path
/// entry points, repeatable), `--graph` (print call-graph resolution
/// stats), `--why SYM` (print every call chain from an entry point or hot
/// function to SYM, instead of linting), and `--max-unresolved RATE`
/// (fail when the call-graph unresolved rate exceeds RATE, e.g. `0.10`).
fn lint(parsed: &Parsed) -> Result<(), String> {
    let root = std::path::PathBuf::from(parsed.value("--root").unwrap_or("."));
    let mut cfg = dcdiff_analysis::Config::default_workspace();
    if let Some(rule) = parsed.value("--rule") {
        if !dcdiff_analysis::config::is_rule(rule) {
            return Err(format!(
                "unknown rule '{rule}' (known: {})",
                dcdiff_analysis::RULES.join(", ")
            ));
        }
        cfg.only = Some(rule.to_string());
    }
    let entries: Vec<String> = parsed.values("--entry").map(str::to_string).collect();
    if !entries.is_empty() {
        cfg.entries = entries;
    }
    if parsed.has("--changed") {
        cfg.changed = Some(git_changed_files(&root)?);
    }
    if parsed.has("--update-ledger") {
        let ledger = dcdiff_analysis::generate_ledger(&root, &cfg)?;
        let path = root.join(dcdiff_analysis::LEDGER_FILE);
        std::fs::write(&path, ledger).map_err(io_err)?;
        println!("wrote {}", path.display());
        return Ok(());
    }
    let analyzed = dcdiff_analysis::analyze_workspace_graph(&root, &cfg)?;
    if let Some(symbol) = parsed.value("--why") {
        let Some(graph) = &analyzed.graph else {
            return Err("--why needs the interprocedural rules enabled \
                        (drop --rule, or name an interprocedural rule)"
                .to_string());
        };
        let chains = dcdiff_analysis::interproc::why(&analyzed.facts, graph, &cfg, symbol);
        if chains.is_empty() {
            println!("`{symbol}` is not reachable from any entry point or hot function");
            return Ok(());
        }
        for chain in &chains {
            for (i, step) in chain.iter().enumerate() {
                let arrow = if i == 0 { "  " } else { "-> " };
                println!("{arrow}{} ({}:{})", step.symbol, step.file, step.line);
            }
            println!();
        }
        return Ok(());
    }
    let report = &analyzed.report;
    if parsed.has("--json") {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render());
        if parsed.has("--graph") {
            if let Some(g) = &report.graph {
                print!("{}", render_graph_stats(g));
            }
        }
    }
    if let Some(max) = parsed.value("--max-unresolved") {
        let max: f64 = max
            .parse()
            .map_err(|_| format!("flag --max-unresolved: '{max}' is not a number"))?;
        let Some(g) = &report.graph else {
            return Err("--max-unresolved needs the call graph \
                        (drop --rule, or name an interprocedural rule)"
                .to_string());
        };
        if g.unresolved_rate() > max {
            return Err(format!(
                "call-graph unresolved rate {:.4} exceeds --max-unresolved {max} \
                 ({} of {} calls; run with --graph to list them)",
                g.unresolved_rate(),
                g.unresolved,
                g.calls
            ));
        }
    }
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!(
            "lint failed: {} violation(s)",
            report.diagnostics.len()
        ))
    }
}

/// Workspace-relative `.rs` files touched per `git diff` (staged and
/// unstaged, against `HEAD`), for `dcdiff lint --changed`.
fn git_changed_files(root: &std::path::Path) -> Result<Vec<String>, String> {
    let out = std::process::Command::new("git")
        .arg("-C")
        .arg(root)
        .args(["diff", "--name-only", "HEAD"])
        .output()
        .map_err(|e| format!("--changed: cannot run git: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "--changed: git diff failed: {}",
            String::from_utf8_lossy(&out.stderr).trim()
        ));
    }
    Ok(String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(str::trim)
        .filter(|l| l.ends_with(".rs"))
        .map(str::to_string)
        .collect())
}

/// Human-readable call-graph resolution summary for `lint --graph`.
fn render_graph_stats(g: &dcdiff_analysis::graph::GraphStats) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "call graph: {} function(s) ({} hot), {} call(s): {} resolved, \
         {} external, {} unresolved ({:.2}%)",
        g.functions,
        g.hot_functions,
        g.calls,
        g.resolved,
        g.external,
        g.unresolved,
        g.unresolved_rate() * 100.0
    );
    for (name, count) in g.unresolved_names.iter().take(20) {
        let _ = writeln!(out, "  unresolved: {name} ({count} site(s))");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> Result<(), String> {
        dispatch(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    fn tmp(name: &str) -> String {
        let mut p = std::env::temp_dir();
        p.push(format!("dcdiff-cli-test-{}-{name}", std::process::id()));
        p.to_string_lossy().into_owned()
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&["frobnicate"]).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn demo_encode_decode_metrics_pipeline() {
        let scene = tmp("scene.ppm");
        let jpg = tmp("scene.jpg");
        let back = tmp("back.ppm");
        run(&["demo", &scene, "--scene", "urban", "--size", "64x48", "--seed", "3"]).unwrap();
        run(&["encode", &scene, &jpg, "--quality", "70"]).unwrap();
        run(&["decode", &jpg, &back]).unwrap();
        run(&["metrics", &scene, &back]).unwrap();
        run(&["info", &jpg]).unwrap();
        for f in [&scene, &jpg, &back] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn drop_dc_then_recover_pipeline() {
        let scene = tmp("r-scene.ppm");
        let jpg = tmp("r-scene.jpg");
        let out = tmp("r-out.ppm");
        run(&["demo", &scene, "--scene", "smooth", "--size", "64x64"]).unwrap();
        run(&["encode", &scene, &jpg, "--drop-dc"]).unwrap();
        for method in ["tip2006", "smartcom", "icip", "mld"] {
            run(&["recover", &jpg, &out, "--method", method]).unwrap();
        }
        assert!(run(&["recover", &jpg, &out, "--method", "nope"]).is_err());
        for f in [&scene, &jpg, &out] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn budget_encoding_fits() {
        let scene = tmp("b-scene.ppm");
        let jpg = tmp("b-scene.jpg");
        run(&["demo", &scene, "--size", "48x48"]).unwrap();
        run(&["encode", &scene, &jpg, "--budget", "900"]).unwrap();
        assert!(std::fs::metadata(&jpg).unwrap().len() <= 900);
        assert!(run(&["encode", &scene, &jpg, "--budget", "10"]).is_err());
        for f in [&scene, &jpg] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn transcode_pipeline() {
        let scene = tmp("t-scene.ppm");
        let jpg = tmp("t-scene.jpg");
        let out = tmp("t-out.jpg");
        run(&["demo", &scene, "--size", "48x48"]).unwrap();
        run(&["encode", &scene, &jpg]).unwrap();
        run(&["transcode", &jpg, &out, "--drop-dc", "--optimize"]).unwrap();
        let before = std::fs::metadata(&jpg).unwrap().len();
        let after = std::fs::metadata(&out).unwrap().len();
        assert!(after < before, "transcode must shrink: {after} vs {before}");
        run(&["info", &out]).unwrap();
        for f in [&scene, &jpg, &out] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn optimized_encoding_is_smaller_or_equal() {
        let scene = tmp("o-scene.ppm");
        let a = tmp("o-std.jpg");
        let b = tmp("o-opt.jpg");
        run(&["demo", &scene, "--scene", "texture", "--size", "64x64"]).unwrap();
        run(&["encode", &scene, &a]).unwrap();
        run(&["encode", &scene, &b, "--optimize"]).unwrap();
        let sa = std::fs::metadata(&a).unwrap().len();
        let sb = std::fs::metadata(&b).unwrap().len();
        assert!(sb <= sa, "optimized {sb} > standard {sa}");
        for f in [&scene, &a, &b] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn bad_quality_rejected() {
        assert!(run(&["encode", "a", "b", "--quality", "0"]).is_err());
        assert!(run(&["encode", "a", "b", "--quality", "101"]).is_err());
    }

    #[test]
    fn unknown_flag_error_names_the_flag() {
        let err = run(&["encode", "a.ppm", "b.jpg", "--qualty", "80"]).unwrap_err();
        assert!(err.contains("--qualty"), "{err}");
    }

    #[test]
    fn batch_runs_a_manifest_end_to_end() {
        let scene = tmp("m-scene.ppm");
        let manifest = tmp("m-manifest.txt");
        let jpg = tmp("m-scene.jpg");
        let out = tmp("m-out.ppm");
        run(&["demo", &scene, "--scene", "natural", "--size", "48x48", "--seed", "9"]).unwrap();
        std::fs::write(
            &manifest,
            format!(
                "# full pipeline on one scene\n\
                 encode {scene} {jpg} --quality 60 --drop-dc\n\
                 recover {jpg} {out} --method tip2006\n\
                 metrics {scene} {out}\n"
            ),
        )
        .unwrap();
        // Single worker so the encode completes before the recover reads it:
        // manifests have no inter-job dependency ordering.
        run(&["batch", &manifest, "--workers", "1"]).unwrap();
        assert!(std::fs::metadata(&out).unwrap().len() > 0);
        for f in [&scene, &manifest, &jpg, &out] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn batch_trace_round_trips_through_report() {
        let scene = tmp("tr-scene.ppm");
        let manifest = tmp("tr-manifest.txt");
        let jpg = tmp("tr-scene.jpg");
        let out = tmp("tr-out.ppm");
        let trace = tmp("tr-trace.jsonl");
        let metrics = tmp("tr-metrics.json");
        run(&["demo", &scene, "--scene", "smooth", "--size", "48x48", "--seed", "4"]).unwrap();
        std::fs::write(
            &manifest,
            format!(
                "encode {scene} {jpg} --quality 60 --drop-dc\n\
                 recover {jpg} {out} --method mld --sweeps 4\n\
                 metrics {scene} {out}\n"
            ),
        )
        .unwrap();
        run(&[
            "batch", &manifest, "--workers", "1", "--trace", &trace, "--metrics", &metrics,
            "--log-level", "debug",
        ])
        .unwrap();

        // The trace parses, spans all closed, and the expected hierarchy is
        // present: queue wait, job-level spans, per-stage sub-phases.
        let text = std::fs::read_to_string(&trace).unwrap();
        let report: dcdiff_telemetry::TraceReport = text.parse().unwrap();
        assert_eq!(report.unclosed, 0);
        for span in ["queue.wait", "batch.exec", "job.encode", "job.recover",
                     "encode.dct", "recover.estimate", "metrics.compare"] {
            assert!(report.spans.contains_key(span), "missing span {span}");
        }
        assert_eq!(report.spans["queue.wait"].count, 3);
        // The CLI's batch.run root covers the whole run, so root coverage is
        // within the 10% bound `dcdiff report` advertises.
        assert!(report.coverage() > 0.9, "coverage {}", report.coverage());

        // `dcdiff report` renders it without error, including the
        // multi-file merge path (same file twice doubles every count).
        run(&["report", &trace]).unwrap();
        run(&["report", &trace, &trace]).unwrap();
        let doubled = {
            let text = std::fs::read_to_string(&trace).unwrap();
            dcdiff_telemetry::TraceReport::from_texts(&[&text, &text]).unwrap()
        };
        assert_eq!(doubled.spans["queue.wait"].count, 6);
        assert!(run(&["report", &tmp("tr-nonexistent.jsonl")]).is_err());
        assert!(run(&["report"]).is_err());

        // The metrics export is present and names the runtime histograms.
        let exported = std::fs::read_to_string(&metrics).unwrap();
        for key in ["runtime.queue_wait_us", "runtime.job_wall_us", "stage.recover_us", "p99"] {
            assert!(exported.contains(key), "metrics export missing {key}");
        }
        for f in [&scene, &manifest, &jpg, &out, &trace, &metrics] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn render_top_formats_the_expected_rows() {
        let text = "runtime_queue_depth 3\n\
                    serve_accepted 12\n\
                    serve_accepted_rate{window=\"10s\"} 1.5\n\
                    serve_class_interactive_admitted 7\n\
                    serve_class_interactive_shed 1\n\
                    serve_request_wall_us{quantile=\"0.5\"} 2000\n\
                    serve_request_wall_us{quantile=\"0.99\"} 9000\n\
                    serve_request_wall_us{window=\"10s\",quantile=\"0.5\"} 400\n\
                    serve_request_wall_us{window=\"10s\",quantile=\"0.99\"} 500\n\
                    runtime_worker_0_busy_us 2500000\n\
                    jpeg_decode_entropy_us{quantile=\"0.5\"} 800\n\
                    jpeg_decode_entropy_us{quantile=\"0.99\"} 1500\n\
                    jpeg_decode_mbps{quantile=\"0.5\"} 240\n\
                    jpeg_decode_bytes 123456\n\
                    jpeg_decode_blocks 6144\n\
                    breaker_state 0\n";
        let samples = dcdiff_telemetry::prometheus::parse(text).unwrap();
        let frame = render_top("127.0.0.1:1", &samples);
        assert!(frame.contains("queue depth 3"), "{frame}");
        assert!(frame.contains("accepted 12 (1.50/s over 10s)"), "{frame}");
        assert!(frame.contains("class interactive"), "{frame}");
        assert!(frame.contains("p50 2.0ms"), "{frame}");
        assert!(frame.contains("[10s] p50 0.4ms  p99 0.5ms"), "{frame}");
        assert!(frame.contains("w0 2.5s"), "{frame}");
        assert!(
            frame.contains("jpeg decode    entropy p50 0.8ms  p99 1.5ms   240 MB/s p50"),
            "{frame}"
        );
        assert!(frame.contains("bytes 123456"), "{frame}");
        assert!(frame.contains("blocks 6144"), "{frame}");
        assert!(frame.contains("breaker state  0 (closed)"), "{frame}");
    }

    #[test]
    fn render_top_omits_decode_row_without_decode_samples() {
        let samples = dcdiff_telemetry::prometheus::parse("runtime_queue_depth 0\n").unwrap();
        let frame = render_top("127.0.0.1:1", &samples);
        assert!(!frame.contains("jpeg decode"), "{frame}");
    }

    #[test]
    fn top_once_scrapes_a_live_server() {
        let tel = dcdiff_telemetry::Telemetry::builder().build();
        let mut cfg = dcdiff_serve::ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            ..dcdiff_serve::ServeConfig::default()
        };
        cfg.metrics_epoch = std::time::Duration::from_millis(50);
        cfg.runtime.workers = 1;
        cfg.runtime.telemetry = tel.clone();
        let server = dcdiff_serve::Server::bind_with(cfg, tel).unwrap();
        let addr = server.local_addr().to_string();
        run(&["top", &addr, "--once"]).unwrap();
        assert!(run(&["top"]).is_err(), "missing addr must error");
        dcdiff_serve::Client::new(addr.as_str()).drain().unwrap();
        server.run_until_shutdown();
    }

    #[test]
    fn batch_reports_failures() {
        let manifest = tmp("m-bad.txt");
        std::fs::write(&manifest, "metrics /nonexistent/a.ppm /nonexistent/b.ppm\n").unwrap();
        let err = run(&["batch", &manifest, "--workers", "2"]).unwrap_err();
        assert!(err.contains("failed"), "{err}");
        std::fs::remove_file(&manifest).ok();
    }

    #[test]
    fn batch_rejects_bad_manifests() {
        let manifest = tmp("m-syntax.txt");
        std::fs::write(&manifest, "recover a.jpg b.ppm --methud mld\n").unwrap();
        let err = run(&["batch", &manifest]).unwrap_err();
        assert!(err.contains("--methud") && err.contains("line 1"), "{err}");
        assert!(run(&["batch", &tmp("m-missing.txt")]).is_err());
        std::fs::remove_file(&manifest).ok();
    }
}
