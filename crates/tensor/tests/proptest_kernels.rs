//! Property-based parity tests for the blocked/threaded kernel layer: on
//! random shapes (including degenerate k = 0/1 products) the packed
//! [`sgemm`] must agree with the naive reference for every transpose
//! combination and thread budget, and the batched-GEMM `conv2d` must agree
//! with a direct nested-loop convolution and with finite differences.

use dcdiff_tensor::gradcheck::check_gradient;
use dcdiff_tensor::kernels::{gemm_naive, sgemm_with_threads, Trans};
use dcdiff_tensor::Tensor;
use proptest::prelude::*;

fn values(n: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-2.0f32..2.0, n)
}

/// Row-major transpose used to feed transposed operands to the naive
/// reference (the packed kernel reads them through strides instead).
fn transpose(rows: usize, cols: usize, a: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            out[c * rows + r] = a[r * cols + c];
        }
    }
    out
}

fn assert_parity(got: &[f32], want: &[f32]) -> Result<(), TestCaseError> {
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let rel = (g - w).abs() / (1.0 + w.abs());
        prop_assert!(rel < 1e-4, "c[{i}]: blocked {g} vs naive {w} (rel {rel})");
    }
    Ok(())
}

/// Direct nested-loop 2-D convolution, the shape-agnostic ground truth for
/// the im2col + GEMM implementation.
#[allow(clippy::too_many_arguments)]
fn conv_reference(
    x: &[f32],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    wt: &[f32],
    o: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) -> Vec<f32> {
    let ho = (h + 2 * pad - kh) / stride + 1;
    let wo = (w + 2 * pad - kw) / stride + 1;
    let mut out = vec![0.0f32; n * o * ho * wo];
    for ni in 0..n {
        for oi in 0..o {
            for oy in 0..ho {
                for ox in 0..wo {
                    let mut acc = 0.0f32;
                    for ci in 0..c {
                        for ky in 0..kh {
                            let iy = (oy * stride + ky) as isize - pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * stride + kx) as isize - pad as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                acc += x[((ni * c + ci) * h + iy as usize) * w + ix as usize]
                                    * wt[((oi * c + ci) * kh + ky) * kw + kx];
                            }
                        }
                    }
                    out[((ni * o + oi) * ho + oy) * wo + ox] = acc;
                }
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sgemm_matches_naive_on_random_shapes(
        m in 1usize..24,
        k in 0usize..24,
        n in 1usize..24,
        seed in 0u32..1000,
    ) {
        let mix = |i: usize, s: f32| ((i as f32) * 0.173 + seed as f32 * 0.31 + s).sin() * 1.5;
        let a: Vec<f32> = (0..m * k).map(|i| mix(i, 0.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|i| mix(i, 2.0)).collect();
        let mut want = vec![0.0f32; m * n];
        gemm_naive(m, k, n, &a, &b, &mut want);
        for threads in [1usize, 3] {
            let mut c = vec![0.0f32; m * n];
            sgemm_with_threads(threads, Trans::N, Trans::N, m, k, n, &a, &b, &mut c);
            assert_parity(&c, &want)?;
        }
    }

    #[test]
    fn sgemm_transpose_views_match_materialised_transposes(
        m in 1usize..16,
        k in 1usize..16,
        n in 1usize..16,
        a in values(16 * 16),
        b in values(16 * 16),
    ) {
        let a = &a[..m * k];
        let b = &b[..k * n];
        let mut want = vec![0.0f32; m * n];
        gemm_naive(m, k, n, a, b, &mut want);
        // Store A as [k, m] and read it back transposed; same for B.
        let a_t = transpose(m, k, a); // stored [k, m]
        let b_t = transpose(k, n, b); // stored [n, k]
        for (ta, tb, astore, bstore) in [
            (Trans::T, Trans::N, &a_t, &b.to_vec()),
            (Trans::N, Trans::T, &a.to_vec(), &b_t),
            (Trans::T, Trans::T, &a_t, &b_t),
        ] {
            let mut c = vec![0.0f32; m * n];
            sgemm_with_threads(2, ta, tb, m, k, n, astore, bstore, &mut c);
            assert_parity(&c, &want)?;
        }
    }

    #[test]
    fn sgemm_accumulates_like_naive(
        m in 1usize..12,
        k in 1usize..12,
        n in 1usize..12,
        init in values(12 * 12),
    ) {
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.7).cos()).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.3).sin()).collect();
        let mut want = init[..m * n].to_vec();
        gemm_naive(m, k, n, &a, &b, &mut want);
        let mut c = init[..m * n].to_vec();
        sgemm_with_threads(1, Trans::N, Trans::N, m, k, n, &a, &b, &mut c);
        assert_parity(&c, &want)?;
    }

    #[test]
    fn conv2d_matches_direct_convolution(
        n in 1usize..4,
        c in 1usize..4,
        o in 1usize..4,
        hw in 3usize..8,
        ks in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        seed in 0u32..1000,
    ) {
        prop_assume!(hw + 2 * pad >= ks);
        let mix = |i: usize, s: f32| ((i as f32) * 0.41 + seed as f32 * 0.17 + s).sin();
        let xv: Vec<f32> = (0..n * c * hw * hw).map(|i| mix(i, 0.0)).collect();
        let wv: Vec<f32> = (0..o * c * ks * ks).map(|i| mix(i, 1.0)).collect();
        let want = conv_reference(&xv, n, c, hw, hw, &wv, o, ks, ks, stride, pad);
        let x = Tensor::from_vec(vec![n, c, hw, hw], xv);
        let wt = Tensor::from_vec(vec![o, c, ks, ks], wv);
        let got = x.conv2d(&wt, stride, pad).to_vec();
        prop_assert_eq!(got.len(), want.len());
        assert_parity(&got, &want)?;
    }

    #[test]
    fn conv2d_input_gradients_pass_gradcheck(
        stride in 1usize..3,
        x0 in values(2 * 2 * 4 * 4),
    ) {
        // batch 2 exercises the batched rows-layout gather/scatter
        let k = Tensor::from_vec(
            vec![2, 2, 3, 3],
            (0..36).map(|v| ((v as f32) * 0.23).sin() * 0.5).collect(),
        );
        let report = check_gradient(&[2, 2, 4, 4], &x0, &[0, 5, 17, 31, 40, 63], 1e-3, |x| {
            x.conv2d(&k, stride, 1).square().sum_all()
        });
        prop_assert!(report.passes(2e-2), "stride {stride}: {report:?}");
    }

    #[test]
    fn conv2d_weight_gradients_match_finite_difference(
        w0 in values(2 * 2 * 2 * 2),
        seed in 0u32..1000,
    ) {
        let xv: Vec<f32> = (0..2 * 2 * 4 * 4)
            .map(|i| ((i as f32) * 0.29 + seed as f32 * 0.13).sin())
            .collect();
        let x = Tensor::from_vec(vec![2, 2, 4, 4], xv);
        let loss_at = |wv: &[f32]| -> f32 {
            let w = Tensor::from_vec(vec![2, 2, 2, 2], wv.to_vec());
            x.conv2d(&w, 2, 0).square().sum_all().item()
        };
        let w = Tensor::param(vec![2, 2, 2, 2], w0.clone());
        x.conv2d(&w, 2, 0).square().sum_all().backward();
        let gw = w.grad_vec();
        let h = 1e-3;
        for idx in [0usize, 5, 9, 15] {
            let mut wp = w0.clone();
            wp[idx] += h;
            let mut wm = w0.clone();
            wm[idx] -= h;
            let fd = (loss_at(&wp) - loss_at(&wm)) / (2.0 * h);
            prop_assert!(
                (fd - gw[idx]).abs() < 2e-2 * (1.0 + fd.abs()),
                "w grad {idx}: fd {fd} vs ad {}",
                gw[idx]
            );
        }
    }
}
