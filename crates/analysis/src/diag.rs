//! Diagnostics: what a rule reports and how a run is serialised.

use std::fmt;

/// One finding from one rule at one source location.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule identifier, e.g. `no-panic`.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What is wrong.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// How to fix it (or how to annotate it away with a reason).
    pub hint: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)?;
        if !self.snippet.is_empty() {
            writeln!(f, "    | {}", self.snippet)?;
        }
        if !self.hint.is_empty() {
            writeln!(f, "    = hint: {}", self.hint)?;
        }
        Ok(())
    }
}

/// The result of linting a workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, in (file, line) order.
    pub diagnostics: Vec<Diagnostic>,
    /// Files scanned.
    pub files: usize,
    /// `// analysis: allow(...)` annotations honoured (sites exempted).
    pub allows_used: usize,
}

impl Report {
    /// True when no rule fired.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Findings for one rule id.
    pub fn by_rule<'a>(&'a self, rule: &'a str) -> impl Iterator<Item = &'a Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.rule == rule)
    }

    /// Machine-readable report: one JSON object with a `diagnostics` array.
    /// Stable field order so the CI artifact diffs cleanly run-to-run.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.diagnostics.len() * 160);
        out.push_str("{\"files\":");
        out.push_str(&self.files.to_string());
        out.push_str(",\"allows_used\":");
        out.push_str(&self.allows_used.to_string());
        out.push_str(",\"violations\":");
        out.push_str(&self.diagnostics.len().to_string());
        out.push_str(",\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"rule\":\"");
            dcdiff_telemetry::json::escape_into(&mut out, d.rule);
            out.push_str("\",\"file\":\"");
            dcdiff_telemetry::json::escape_into(&mut out, &d.file);
            out.push_str("\",\"line\":");
            out.push_str(&d.line.to_string());
            out.push_str(",\"message\":\"");
            dcdiff_telemetry::json::escape_into(&mut out, &d.message);
            out.push_str("\",\"snippet\":\"");
            dcdiff_telemetry::json::escape_into(&mut out, &d.snippet);
            out.push_str("\",\"hint\":\"");
            dcdiff_telemetry::json::escape_into(&mut out, &d.hint);
            out.push_str("\"}");
        }
        out.push_str("]}");
        out
    }

    /// Human-readable report: every diagnostic plus a one-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
        }
        out.push_str(&format!(
            "{} file(s) scanned, {} allow annotation(s) honoured, {} violation(s)\n",
            self.files,
            self.allows_used,
            self.diagnostics.len()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostic {
        Diagnostic {
            rule: "no-panic",
            file: "crates/jpeg/src/codec.rs".to_string(),
            line: 42,
            message: "`unwrap()` on untrusted data".to_string(),
            snippet: "let v = table.unwrap();".to_string(),
            hint: "propagate a JpegError instead".to_string(),
        }
    }

    #[test]
    fn display_includes_location_rule_and_hint() {
        let text = sample().to_string();
        assert!(text.contains("crates/jpeg/src/codec.rs:42"));
        assert!(text.contains("[no-panic]"));
        assert!(text.contains("hint:"));
    }

    #[test]
    fn json_is_parseable_and_escapes_quotes() {
        let mut report = Report::default();
        let mut d = sample();
        d.snippet = "panic!(\"bad byte\")".to_string();
        report.diagnostics.push(d);
        report.files = 3;
        let json = report.to_json();
        // must survive the workspace's own flat-JSON parser for the scalar
        // fields and stay a single line
        assert!(!json.contains('\n'));
        assert!(json.starts_with("{\"files\":3,"));
        assert!(json.contains("\"violations\":1"));
        // the inner quotes must be escaped, not terminate the string early
        assert!(json.contains(r#"panic!(\"bad byte\")"#));
    }

    #[test]
    fn clean_report_renders_zero_summary() {
        let report = Report {
            files: 7,
            ..Report::default()
        };
        assert!(report.is_clean());
        assert!(report.render().contains("0 violation(s)"));
        assert!(report.to_json().contains("\"diagnostics\":[]"));
    }
}
