//! Planar floating-point image containers shared across the DCDiff workspace.
//!
//! The JPEG pipeline, the neural substrates and the metrics all operate on
//! [`Plane`] (a single 2-D channel of `f32` samples) and [`Image`] (one to
//! three planes plus a [`ColorSpace`] tag). Samples are kept in the nominal
//! `0.0..=255.0` range used by baseline JPEG; the conversion helpers
//! [`rgb_to_ycbcr_pixel`] / [`ycbcr_to_rgb_pixel`] move between RGB and the
//! JPEG (BT.601 full-range) YCbCr space.
//!
//! # Example
//!
//! ```
//! use dcdiff_image::{Image, ColorSpace};
//!
//! let img = Image::filled(16, 8, ColorSpace::Rgb, 128.0);
//! assert_eq!(img.width(), 16);
//! assert_eq!(img.height(), 8);
//! let ycbcr = img.to_ycbcr();
//! assert_eq!(ycbcr.color_space(), ColorSpace::YCbCr);
//! ```

mod blocks;
mod color;
mod error;
mod image;
mod io;
mod plane;

pub use blocks::{Block8, BlockGrid};
pub use color::{
    rgb_to_ycbcr_pixel, rgb_to_ycbcr_rows, rgb_to_ycbcr_rows_scalar, simd_force_scalar,
    simd_tier_name, ycbcr_to_rgb_pixel, ycbcr_to_rgb_rows, ycbcr_to_rgb_rows_scalar,
};
pub use error::ImageError;
pub use image::{ColorSpace, Image};
pub use io::{read_pgm, read_ppm, write_pgm, write_ppm};
pub use plane::Plane;

/// Size (in samples) of the JPEG minimum coded block along each axis.
pub const BLOCK: usize = 8;
