//! The masked Laplacian distribution (MLD) loss — Eq. 4 of the paper.
//!
//! `L_m = Σ M ⊙ ((Δ_h x̂_{i,j} − Δ_h x̂_{i,j−1})² + (Δ_w x̂_{i,j} −
//! Δ_w x̂_{i−1,j})²)` where `Δ` are forward differences — i.e. the
//! masked second differences of the reconstruction must be small, which
//! is exactly the statement that unmasked (low-frequency) regions follow
//! the Laplacian smoothness prior.

use dcdiff_image::Plane;
use dcdiff_tensor::Tensor;

/// Differentiable MLD loss over a batch.
///
/// * `x_hat` — reconstruction `[N, C, H, W]` (any pixel scaling);
/// * `mask` — Eq. 3 masks, one plane per sample, each `H × W`.
///
/// The second differences are computed with constant per-channel
/// convolution kernels, so gradients flow into `x_hat` only. Returns a
/// scalar (mean over all masked positions).
///
/// # Panics
///
/// Panics if the mask count or sizes disagree with `x_hat`, or the image
/// is smaller than 3×3.
pub fn mld_loss(x_hat: &Tensor, masks: &[Plane]) -> Tensor {
    let shape = x_hat.shape().to_vec();
    assert_eq!(shape.len(), 4, "x_hat must be NCHW");
    let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
    assert!(h >= 3 && w >= 3, "mld needs at least 3x3 images");
    assert_eq!(masks.len(), n, "one mask per sample");
    for m in masks {
        assert_eq!(m.dims(), (w, h), "mask size mismatch");
    }

    // per-channel second-difference kernels as identity-routed dense convs
    let mut kh = vec![0.0f32; c * c * 3];
    let mut kv = vec![0.0f32; c * c * 3];
    for ch in 0..c {
        let base = ch * c * 3 + ch * 3;
        kh[base] = 1.0;
        kh[base + 1] = -2.0;
        kh[base + 2] = 1.0;
        kv[base] = 1.0;
        kv[base + 1] = -2.0;
        kv[base + 2] = 1.0;
    }
    let kernel_h = Tensor::from_vec(vec![c, c, 1, 3], kh);
    let kernel_v = Tensor::from_vec(vec![c, c, 3, 1], kv);

    // horizontal second differences: output [N, C, H, W-2]
    let dh = x_hat.conv2d(&kernel_h, 1, 0);
    // vertical: [N, C, H-2, W]
    let dv = x_hat.conv2d(&kernel_v, 1, 0);

    // mask at the centre position of each 3-tap window; a window is valid
    // only when all three pixels are unmasked
    let mut mh = Vec::with_capacity(n * c * h * (w - 2));
    for m in masks {
        let mut plane_mask = Vec::with_capacity(h * (w - 2));
        for y in 0..h {
            for x in 1..w - 1 {
                let keep = m.get(x - 1, y) * m.get(x, y) * m.get(x + 1, y);
                plane_mask.push(keep);
            }
        }
        for _ in 0..c {
            mh.extend_from_slice(&plane_mask);
        }
    }
    let mut mv = Vec::with_capacity(n * c * (h - 2) * w);
    for m in masks {
        let mut plane_mask = Vec::with_capacity((h - 2) * w);
        for y in 1..h - 1 {
            for x in 0..w {
                let keep = m.get(x, y - 1) * m.get(x, y) * m.get(x, y + 1);
                plane_mask.push(keep);
            }
        }
        for _ in 0..c {
            mv.extend_from_slice(&plane_mask);
        }
    }
    let mask_h = Tensor::from_vec(vec![n, c, h, w - 2], mh);
    let mask_v = Tensor::from_vec(vec![n, c, h - 2, w], mv);

    dh.square()
        .mul(&mask_h)
        .mean_all()
        .add(&dv.square().mul(&mask_v).mean_all())
}

/// Pixel-domain MLD energy of a single luma plane (diagnostic / used by
/// the refinement): mean masked squared second difference.
///
/// # Panics
///
/// Panics on size mismatch or images smaller than 3×3.
pub fn mld_energy(plane: &Plane, mask: &Plane) -> f32 {
    let (w, h) = plane.dims();
    assert_eq!(mask.dims(), (w, h), "mask size mismatch");
    assert!(w >= 3 && h >= 3, "mld needs at least 3x3 images");
    let mut sum = 0.0f64;
    let mut count = 0u64;
    for y in 0..h {
        for x in 1..w - 1 {
            if mask.get(x - 1, y) > 0.5 && mask.get(x, y) > 0.5 && mask.get(x + 1, y) > 0.5 {
                let d = plane.get(x - 1, y) - 2.0 * plane.get(x, y) + plane.get(x + 1, y);
                sum += (d * d) as f64;
                count += 1;
            }
        }
    }
    for y in 1..h - 1 {
        for x in 0..w {
            if mask.get(x, y - 1) > 0.5 && mask.get(x, y) > 0.5 && mask.get(x, y + 1) > 0.5 {
                let d = plane.get(x, y - 1) - 2.0 * plane.get(x, y) + plane.get(x, y + 1);
                sum += (d * d) as f64;
                count += 1;
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        (sum / count as f64) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_ramp_has_zero_loss() {
        // second differences of a linear ramp vanish
        let n = 1;
        let (c, h, w) = (2, 6, 6);
        let mut data = Vec::new();
        for _ in 0..c {
            for y in 0..h {
                for x in 0..w {
                    data.push((2 * x + 3 * y) as f32);
                }
            }
        }
        let x = Tensor::from_vec(vec![n, c, h, w], data);
        let mask = vec![Plane::filled(w, h, 1.0)];
        assert!(mld_loss(&x, &mask).item() < 1e-6);
    }

    #[test]
    fn curvature_is_penalised() {
        let (h, w) = (6, 6);
        let mut data = Vec::new();
        for y in 0..h {
            for x in 0..w {
                data.push((x * x + y * y) as f32);
            }
        }
        let x = Tensor::from_vec(vec![1, 1, h, w], data);
        let mask = vec![Plane::filled(w, h, 1.0)];
        assert!(mld_loss(&x, &mask).item() > 1.0);
    }

    #[test]
    fn masked_regions_do_not_contribute() {
        let (h, w) = (6, 6);
        let mut data = Vec::new();
        for y in 0..h {
            for x in 0..w {
                data.push(if x >= 3 { (x * x + y) as f32 } else { x as f32 });
            }
        }
        let x = Tensor::from_vec(vec![1, 1, h, w], data);
        // mask out the curved right half (and the boundary windows that
        // touch it)
        let mask = vec![Plane::from_fn(w, h, |x, _| if x < 3 { 1.0 } else { 0.0 })];
        let loss = mld_loss(&x, &mask).item();
        assert!(loss < 1e-6, "masked curvature leaked: {loss}");
    }

    #[test]
    fn gradients_reach_the_reconstruction() {
        let x = Tensor::param(vec![1, 1, 4, 4], (0..16).map(|v| (v * v) as f32).collect());
        let mask = vec![Plane::filled(4, 4, 1.0)];
        mld_loss(&x, &mask).backward();
        assert!(x.grad_vec().iter().any(|&g| g != 0.0));
    }

    #[test]
    fn pixel_energy_matches_intuition() {
        let flat = Plane::from_fn(8, 8, |x, y| (x + y) as f32);
        let curved = Plane::from_fn(8, 8, |x, y| (x * x + y * y) as f32);
        let mask = Plane::filled(8, 8, 1.0);
        assert!(mld_energy(&flat, &mask) < 1e-6);
        assert!(mld_energy(&curved, &mask) > 1.0);
    }

    #[test]
    fn fully_masked_energy_is_zero() {
        let curved = Plane::from_fn(8, 8, |x, y| (x * x * y) as f32);
        let mask = Plane::filled(8, 8, 0.0);
        assert_eq!(mld_energy(&curved, &mask), 0.0);
    }
}
