//! Surveillance pipeline: the paper's motivating IoT scenario.
//!
//! A low-cost street camera (modelled by [`dcdiff::device`]) JPEG-codes
//! urban scenes, drops DC to save uplink bandwidth, and a cloud receiver
//! reconstructs them with every recovery method. The example prints the
//! sender's modelled throughput on two low-power processors, the
//! bandwidth saved, and the reconstruction quality per method — the
//! end-to-end story of Tables II/IV in one run.
//!
//! Run: `cargo run --release --example surveillance_pipeline`

use dcdiff::baselines::{DcRecovery, Icip2022, SmartCom2019, Tip2006};
use dcdiff::data::{SceneGenerator, SceneKind};
use dcdiff::device::{DeviceProfile, EncoderKind};
use dcdiff::jpeg::{encode_coefficients, ChromaSampling, CoeffImage, DcDropMode};
use dcdiff::metrics::{psnr, ssim};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let frames: Vec<_> = (0..4)
        .map(|i| SceneGenerator::new(SceneKind::Urban, 128, 96).generate(900 + i))
        .collect();

    // --- the camera end ---
    println!("--- sender (street camera) ---");
    let mut full_total = 0usize;
    let mut sent_total = 0usize;
    for device in [DeviceProfile::raspberry_pi4(), DeviceProfile::cortex_a53()] {
        let mut jpeg_tp = 0.0;
        let mut dcdiff_tp = 0.0;
        for frame in &frames {
            let coeffs = CoeffImage::from_image(frame, 50, ChromaSampling::Cs444);
            jpeg_tp += device
                .estimate_encode(&coeffs, EncoderKind::StandardJpeg)
                .throughput_gbps;
            dcdiff_tp += device
                .estimate_encode(&coeffs, EncoderKind::DcDrop)
                .throughput_gbps;
        }
        let n = frames.len() as f64;
        println!(
            "{:<16} JPEG {:.2} Gbps | DCDiff sender {:.2} Gbps",
            device.name(),
            jpeg_tp / n,
            dcdiff_tp / n
        );
    }
    for frame in &frames {
        let coeffs = CoeffImage::from_image(frame, 50, ChromaSampling::Cs444);
        full_total += encode_coefficients(&coeffs)?.len();
        sent_total += encode_coefficients(&coeffs.drop_dc(DcDropMode::KeepCorners))?.len();
    }
    println!(
        "uplink bytes: {sent_total} vs {full_total} ({:.1}% saved)",
        100.0 * (1.0 - sent_total as f64 / full_total as f64)
    );

    // --- the cloud end ---
    println!("\n--- receiver (cloud) ---");
    let methods: Vec<Box<dyn DcRecovery>> = vec![
        Box::new(Tip2006::new()),
        Box::new(SmartCom2019::new()),
        Box::new(Icip2022::new()),
    ];
    for method in &methods {
        let mut p = 0.0;
        let mut s = 0.0;
        for frame in &frames {
            let coeffs = CoeffImage::from_image(frame, 50, ChromaSampling::Cs444);
            let dropped = coeffs.drop_dc(DcDropMode::KeepCorners);
            let reference = coeffs.to_image();
            let recovered = method.recover(&dropped);
            p += psnr(&reference, &recovered);
            s += ssim(&reference, &recovered);
        }
        let n = frames.len() as f32;
        println!("{:<16} PSNR {:.2} dB | SSIM {:.4}", method.name(), p / n, s / n);
    }
    println!("\n(train a DCDiff system for the learned receiver — see the quickstart example)");
    Ok(())
}
