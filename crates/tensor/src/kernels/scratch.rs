//! Thread-local reuse of f32 work buffers.
//!
//! The autograd hot path used to allocate fresh im2col / packing / rearrange
//! buffers on every call; at U-Net sizes those are multi-megabyte
//! allocations hit hundreds of times per DDIM step. [`take`] hands back a
//! zeroed buffer recycled from this thread's pool and [`put`] returns it;
//! buffers that must outlive the call (e.g. im2col columns retained for the
//! backward pass) are simply never returned and the pool regenerates.

use std::cell::RefCell;

/// Per-thread pool; a handful of entries covers the deepest nesting the
/// kernels reach (GEMM packing inside a conv that holds cols + rearrange).
const POOL_SLOTS: usize = 8;

thread_local! {
    static POOL: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
}

/// A zero-filled buffer of exactly `len` elements, reusing this thread's
/// returned buffers when one is large enough.
pub fn take(len: usize) -> Vec<f32> {
    let recycled = POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        let pos = pool.iter().position(|buf| buf.capacity() >= len);
        pos.map(|p| pool.swap_remove(p))
    });
    match recycled {
        Some(mut buf) => {
            buf.clear();
            buf.resize(len, 0.0);
            buf
        }
        None => vec![0.0; len],
    }
}

/// Return a buffer to this thread's pool for later [`take`]s. Keeps the
/// `POOL_SLOTS` largest buffers and drops the rest.
pub fn put(buf: Vec<f32>) {
    if buf.capacity() == 0 {
        return;
    }
    POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        pool.push(buf);
        if pool.len() > POOL_SLOTS {
            pool.sort_by_key(|b| std::cmp::Reverse(b.capacity()));
            pool.truncate(POOL_SLOTS);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_zeroed_exact_len() {
        let mut buf = take(16);
        buf.iter_mut().for_each(|v| *v = 7.0);
        put(buf);
        let again = take(12);
        assert_eq!(again.len(), 12);
        assert!(again.iter().all(|&v| v == 0.0), "recycled buffer must be zeroed");
    }

    #[test]
    fn reuses_capacity() {
        let buf = take(1024);
        let ptr = buf.as_ptr();
        put(buf);
        let again = take(512);
        assert_eq!(again.as_ptr(), ptr, "smaller request should reuse the buffer");
    }

    #[test]
    fn pool_is_bounded() {
        for _ in 0..3 * POOL_SLOTS {
            put(vec![0.0; 8]);
        }
        POOL.with(|pool| assert!(pool.borrow().len() <= POOL_SLOTS));
    }
}
