//! Table III — ablation study of DCDiff's variants on the Kodak and
//! Inria profiles: w/o MLD, w/o FMPP, mask threshold `T ∈ {0, 5, 10,
//! 15}`, plus two extension rows (w/o DC projection; DDIM step sweep)
//! for the design choices called out in `DESIGN.md`.
//!
//! Usage: `cargo run --release -p dcdiff-bench --bin table3 [-- --quick]`

use dcdiff_bench::{code_image, dcdiff_system, quick_mode, render_table};
use dcdiff_core::RecoverOptions;
use dcdiff_data::DatasetProfile;
use dcdiff_metrics::{PerceptualDistance, QualityReport};

fn main() {
    let quick = quick_mode();
    let system = dcdiff_system(quick);
    let perceptual = PerceptualDistance::default();
    let mut base = RecoverOptions::from_config(system.config());
    if quick {
        base.ddim_steps = 10;
    }

    let variants: Vec<(String, RecoverOptions)> = vec![
        ("full (T=10)".to_string(), base),
        (
            "w/o MLD".to_string(),
            RecoverOptions {
                use_mld: false,
                ..base
            },
        ),
        (
            "w/o FMPP".to_string(),
            RecoverOptions {
                use_fmpp: false,
                ..base
            },
        ),
        (
            "w/o projection".to_string(),
            RecoverOptions {
                use_projection: false,
                ..base
            },
        ),
        (
            "T=0".to_string(),
            RecoverOptions {
                mask_threshold: 0.0,
                ..base
            },
        ),
        (
            "T=5".to_string(),
            RecoverOptions {
                mask_threshold: 5.0,
                ..base
            },
        ),
        (
            "T=15".to_string(),
            RecoverOptions {
                mask_threshold: 15.0,
                ..base
            },
        ),
        (
            "DDIM 10 steps".to_string(),
            RecoverOptions {
                ddim_steps: 10,
                ..base
            },
        ),
        (
            "DDIM 25 steps".to_string(),
            RecoverOptions {
                ddim_steps: 25,
                ..base
            },
        ),
    ];

    let datasets = [
        DatasetProfile::kodak().with_count(if quick { 2 } else { 8 }),
        DatasetProfile::inria().with_count(if quick { 2 } else { 8 }),
    ];

    for profile in datasets {
        let images = profile.generate(0xAB1A);
        let mut rows = Vec::new();
        for (name, options) in &variants {
            let mut sums = [0.0f64; 4];
            for image in &images {
                let (_, dropped, reference) = code_image(image);
                let recovered = system.recover_with(&dropped, options);
                let report = QualityReport::evaluate(&reference, &recovered, &perceptual);
                sums[0] += report.psnr as f64;
                sums[1] += report.ssim as f64;
                sums[2] += report.ms_ssim as f64;
                sums[3] += report.lpips as f64;
            }
            let n = images.len() as f64;
            rows.push(vec![
                name.clone(),
                format!("{:.2}", sums[0] / n),
                format!("{:.4}", sums[1] / n),
                format!("{:.4}", sums[2] / n),
                format!("{:.4}", sums[3] / n),
            ]);
        }
        println!(
            "{}",
            render_table(
                &format!("Table III — ablations on {} ({} images)", profile.name(), images.len()),
                &["Variant", "PSNR^", "SSIM^", "MS-SSIM^", "LPIPSv"],
                &rows,
            )
        );
    }
}
