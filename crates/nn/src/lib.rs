//! Neural-network layers and architectures for the DCDiff reproduction.
//!
//! Built entirely on [`dcdiff_tensor`], this crate provides the building
//! blocks the paper's networks need:
//!
//! * [`Conv2d`], [`Linear`], [`GroupNorm`] — primitive layers;
//! * [`ResBlock`], [`Downsample`], [`Upsample`], [`TimeEmbedding`] — the
//!   diffusion U-Net's components;
//! * [`UNet`] — a DDPM-style U-Net with skip connections, timestep
//!   conditioning, ControlNet-style structure injection
//!   ([`ControlModule`]) and FreeU-style frequency modulation hooks;
//! * [`ResNet`] — a small residual CNN used for the FMPP scale predictor,
//!   the TII-2021 baseline's corrector and the downstream classifier.
//!
//! Every layer implements [`Module`], which exposes parameters for the
//! optimizer and (de)serialises weights through
//! [`dcdiff_tensor::serial::Checkpoint`].
//!
//! # Example
//!
//! ```
//! use dcdiff_nn::{Conv2d, Module};
//! use dcdiff_tensor::{seeded_rng, Tensor};
//!
//! let mut rng = seeded_rng(0);
//! let conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng);
//! let x = Tensor::zeros(vec![2, 3, 16, 16]);
//! let y = conv.forward(&x);
//! assert_eq!(y.shape(), &[2, 8, 16, 16]);
//! assert_eq!(conv.params().len(), 2); // weight + bias
//! ```

mod attention;
mod blocks;
mod layers;
mod module;
mod resnet;
mod unet;

pub use attention::AttentionBlock;
pub use blocks::{Downsample, ResBlock, TimeEmbedding, Upsample};
pub use layers::{Conv2d, GroupNorm, Linear};
pub use module::Module;
pub use resnet::{ResNet, ResNetConfig};
pub use unet::{ControlModule, UNet, UNetConfig};
