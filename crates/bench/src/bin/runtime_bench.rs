//! Benchmark of the `dcdiff-runtime` batch-serving engine: worker scaling on
//! a 16-image synthetic recover manifest, the micro-batching counters, and
//! the cross-request DDIM cohort ablation (canvas × steps × width) on a
//! single worker. The cohort grid covers two regimes: 16x16 tiles, where
//! U-Net forwards are per-call-overhead-bound and fusing lanes pays off, and
//! 64x64 full scenes, where the width-independent stage-1 decode floors the
//! achievable speedup.
//!
//! Usage: `cargo run --release -p dcdiff-bench --bin runtime_bench`
//!
//! Each job recovers one DC-dropped 64x64 scene with the masked-Laplacian
//! method, preceded by a simulated sender-uplink stall (`JobSpec::ingest`,
//! default 25 ms) modelling the paper's low-power IoT sender: the receiver
//! blocks on each device's radio before the bytes are available. Stalls on
//! different workers overlap while compute shares whatever cores exist, so
//! the measured speedup is an honest picture of serving throughput on this
//! machine — the JSON records the core count alongside the numbers.
//!
//! Writes `BENCH_runtime.json` to the current directory.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use dcdiff_data::{SceneGenerator, SceneKind};
use dcdiff_runtime::{
    execute, CodingOpts, EngineCache, Job, JobSpec, RecoverMethod, Runtime, RuntimeConfig,
    ShutdownMode, StatsSnapshot,
};
use dcdiff_telemetry::{names, Telemetry};

const IMAGES: usize = 16;
const INGEST_MS: u64 = 25;
const METHOD: RecoverMethod = RecoverMethod::Mld { threshold: 10.0, sweeps: 300 };

struct RunResult {
    workers: usize,
    batch_max: usize,
    wall: Duration,
    jobs_per_sec: f64,
    /// Job wall-latency quantiles in ms, from `runtime.job_wall_us`.
    p50_ms: f64,
    p99_ms: f64,
    /// Queue-wait quantiles in ms, from `runtime.queue_wait_us`.
    queue_p50_ms: f64,
    queue_p99_ms: f64,
    /// Recover execute-latency quantiles in ms, from `stage.recover_us`.
    recover_p50_ms: f64,
    recover_p99_ms: f64,
    stats: StatsSnapshot,
}

fn quantile_ms(tel: &Telemetry, name: &str, p: f64) -> f64 {
    tel.histogram(name).quantile(p).unwrap_or(0) as f64 / 1e3
}

/// One cell of the canvas × DDIM steps × cohort-width ablation.
struct CohortRun {
    canvas: usize,
    steps: usize,
    width: usize,
    wall: Duration,
    jobs_per_sec: f64,
    shared_forwards: u64,
    lane_steps: u64,
    cohorts: u64,
}

/// Recover one staged manifest with the diffusion estimator on one worker at
/// the given cohort width. A single worker isolates what the ablation is
/// after — U-Net forward amortisation from cross-request batching — from
/// worker parallelism. The leader's small ingest stall lets the rest of the
/// burst queue so the worker assembles full micro-batches; per-lane content
/// seeding keeps the outputs bit-identical across widths, so every cell does
/// the same numerical work.
fn run_cohort(scratch: &std::path::Path, canvas: usize, steps: usize, width: usize) -> CohortRun {
    let tel = Telemetry::new();
    // The batched sampler reports `diffusion.batch.*` through the global
    // handle; install this run's so the counters are per-cell.
    dcdiff_telemetry::install(tel.clone());
    let runtime = Runtime::start(RuntimeConfig {
        workers: 1,
        queue_cap: IMAGES,
        batch_max: 8,
        diffusion_batch_width: width,
        telemetry: tel.clone(),
        ..RuntimeConfig::default()
    });
    let start = Instant::now();
    for i in 0..IMAGES {
        let job = Job::Recover {
            input: scratch.join(format!("dropped-c{canvas}-{i}.jpg")).to_string_lossy().into_owned(),
            output: scratch
                .join(format!("cohort-c{canvas}-s{steps}-w{width}-{i}.ppm"))
                .to_string_lossy()
                .into_owned(),
            method: RecoverMethod::Diffusion { ddim_steps: steps },
        };
        let mut spec = JobSpec::new(job);
        if i == 0 {
            spec = spec.with_ingest(Duration::from_millis(5));
        }
        runtime.submit_blocking(spec).expect("submit");
    }
    let report = runtime.shutdown(ShutdownMode::Drain);
    let wall = start.elapsed();
    assert!(report.results.iter().all(dcdiff_runtime::JobResult::is_ok), "all jobs must succeed");
    CohortRun {
        canvas,
        steps,
        width,
        wall,
        jobs_per_sec: IMAGES as f64 / wall.as_secs_f64(),
        shared_forwards: tel.counter(names::CTR_DIFFUSION_BATCH_SHARED_FORWARDS).get(),
        lane_steps: tel.counter(names::CTR_DIFFUSION_BATCH_LANE_STEPS).get(),
        cohorts: tel.counter(names::CTR_DIFFUSION_BATCH_COHORTS).get(),
    }
}

/// Run the manifest once through a fresh runtime and collect latencies via
/// the shared telemetry histograms (the same `quantile` the metrics export
/// and `dcdiff report` use — no ad-hoc percentile math).
fn run(scratch: &std::path::Path, workers: usize, batch_max: usize) -> RunResult {
    let tel = Telemetry::new();
    let runtime = Runtime::start(RuntimeConfig {
        workers,
        queue_cap: IMAGES,
        batch_max,
        telemetry: tel.clone(),
        ..RuntimeConfig::default()
    });
    let start = Instant::now();
    for i in 0..IMAGES {
        let job = Job::Recover {
            input: scratch.join(format!("dropped{i}.jpg")).to_string_lossy().into_owned(),
            output: scratch
                .join(format!("out-w{workers}-b{batch_max}-{i}.ppm"))
                .to_string_lossy()
                .into_owned(),
            method: METHOD,
        };
        runtime
            .submit_blocking(JobSpec::new(job).with_ingest(Duration::from_millis(INGEST_MS)))
            .expect("submit");
    }
    let report = runtime.shutdown(ShutdownMode::Drain);
    let wall = start.elapsed();
    assert!(report.results.iter().all(dcdiff_runtime::JobResult::is_ok), "all jobs must succeed");
    assert_eq!(
        tel.histogram(names::HIST_JOB_WALL_US).count(),
        IMAGES as u64,
        "every job records one wall-latency sample"
    );
    RunResult {
        workers,
        batch_max,
        wall,
        jobs_per_sec: IMAGES as f64 / wall.as_secs_f64(),
        p50_ms: quantile_ms(&tel, names::HIST_JOB_WALL_US, 0.50),
        p99_ms: quantile_ms(&tel, names::HIST_JOB_WALL_US, 0.99),
        queue_p50_ms: quantile_ms(&tel, names::HIST_QUEUE_WAIT_US, 0.50),
        queue_p99_ms: quantile_ms(&tel, names::HIST_QUEUE_WAIT_US, 0.99),
        recover_p50_ms: quantile_ms(&tel, names::HIST_STAGE_RECOVER_US, 0.50),
        recover_p99_ms: quantile_ms(&tel, names::HIST_STAGE_RECOVER_US, 0.99),
        stats: report.stats,
    }
}

fn main() {
    let scratch = std::env::temp_dir().join(format!("dcdiff-runtime-bench-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("create scratch dir");

    // Stage the manifest: 16 DC-dropped scenes across all five content kinds.
    let kinds = [
        SceneKind::Smooth,
        SceneKind::Natural,
        SceneKind::Texture,
        SceneKind::Urban,
        SceneKind::Aerial,
    ];
    let mut setup = EngineCache::new();
    for i in 0..IMAGES {
        let image = SceneGenerator::new(kinds[i % kinds.len()], 64, 64).generate(i as u64);
        let ppm = scratch.join(format!("scene{i}.ppm"));
        dcdiff_image::write_ppm(&ppm, &image).expect("write scene");
        let encode = Job::Encode {
            input: ppm.to_string_lossy().into_owned(),
            output: scratch.join(format!("dropped{i}.jpg")).to_string_lossy().into_owned(),
            quality: 50,
            sampling: dcdiff_jpeg::ChromaSampling::Cs444,
            opts: CodingOpts { drop_dc: true, ..Default::default() },
        };
        execute(&encode, &mut setup, &Telemetry::new()).expect("stage encode");
    }
    // Cohort manifests: the tile regime (16x16, near the paper's DCT-block
    // scale, where per-forward overhead dominates and batching amortises it)
    // and the full-scene regime (64x64, where the width-independent stage-1
    // decode floors the achievable speedup).
    for canvas in [16usize, 64] {
        for i in 0..IMAGES {
            let image =
                SceneGenerator::new(kinds[i % kinds.len()], canvas, canvas).generate(i as u64);
            let ppm = scratch.join(format!("scene-c{canvas}-{i}.ppm"));
            dcdiff_image::write_ppm(&ppm, &image).expect("write scene");
            let encode = Job::Encode {
                input: ppm.to_string_lossy().into_owned(),
                output: scratch
                    .join(format!("dropped-c{canvas}-{i}.jpg"))
                    .to_string_lossy()
                    .into_owned(),
                quality: 50,
                sampling: dcdiff_jpeg::ChromaSampling::Cs444,
                opts: CodingOpts { drop_dc: true, ..Default::default() },
            };
            execute(&encode, &mut setup, &Telemetry::new()).expect("stage encode");
        }
    }

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!("runtime_bench: {IMAGES} images, {INGEST_MS} ms ingest stall, {cores} core(s)");

    // Worker scaling with micro-batching off, so one worker cannot hoard the
    // queue and serialise other workers' ingest stalls.
    let mut runs = Vec::new();
    for workers in [1usize, 2, 4] {
        let result = run(&scratch, workers, 1);
        println!(
            "  workers={workers}: {:6.1} jobs/s  wall {:5.0} ms  p50 {:5.0} ms  p99 {:5.0} ms  \
             queue p99 {:5.0} ms",
            result.jobs_per_sec,
            result.wall.as_secs_f64() * 1e3,
            result.p50_ms,
            result.p99_ms,
            result.queue_p99_ms,
        );
        runs.push(result);
    }
    // One batched run to exercise the micro-batcher counters.
    let batched = run(&scratch, 4, 8);
    println!(
        "  workers=4 batch=8: {:6.1} jobs/s  ({} batches, {} jobs batched)",
        batched.jobs_per_sec, batched.stats.batches, batched.stats.batched_jobs
    );
    runs.push(batched);

    let speedup = runs[2].jobs_per_sec / runs[0].jobs_per_sec;
    println!("  speedup 4 vs 1 workers: {speedup:.2}x");

    // Cross-request DDIM cohort ablation: one worker, diffusion estimator,
    // canvas × steps × width grid. Width 1 is the sequential path; wider
    // cells fuse concurrent lanes into shared U-Net forwards. The tile
    // regime isolates sampler amortisation; the full-scene regime shows the
    // decode-bound floor.
    let mut cohort_runs = Vec::new();
    for canvas in [16usize, 64] {
        for steps in [8usize, 64] {
            for width in [1usize, 2, 8] {
                // Best-of-two: single-core cells run in tens of milliseconds,
                // where one scheduler preemption skews a cell by 20%+.
                let first = run_cohort(&scratch, canvas, steps, width);
                let second = run_cohort(&scratch, canvas, steps, width);
                let cell = if first.wall <= second.wall { first } else { second };
                println!(
                    "  diffusion canvas={canvas} steps={steps} width={width}: {:6.1} jobs/s  \
                     wall {:5.0} ms  ({} cohorts, {} shared forwards, {} lane steps)",
                    cell.jobs_per_sec,
                    cell.wall.as_secs_f64() * 1e3,
                    cell.cohorts,
                    cell.shared_forwards,
                    cell.lane_steps,
                );
                cohort_runs.push(cell);
            }
        }
    }
    let cohort_speedup = |canvas: usize, steps: usize| -> f64 {
        let at = |width: usize| {
            cohort_runs
                .iter()
                .find(|c| c.canvas == canvas && c.steps == steps && c.width == width)
                .map_or(f64::NAN, |c| c.jobs_per_sec)
        };
        at(8) / at(1)
    };
    let cohort_speedup_tile_s64 = cohort_speedup(16, 64);
    println!(
        "  cohort speedup width 8 vs 1: tiles {:.2}x at 8 steps, {cohort_speedup_tile_s64:.2}x \
         at 64 steps; full-scene {:.2}x at 8 steps, {:.2}x at 64 steps",
        cohort_speedup(16, 8),
        cohort_speedup(64, 8),
        cohort_speedup(64, 64),
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"dcdiff-runtime batch serving\",");
    let _ = writeln!(json, "  \"images\": {IMAGES},");
    let _ = writeln!(json, "  \"image_size\": \"64x64\",");
    let _ = writeln!(json, "  \"method\": \"mld(threshold=10, sweeps=300)\",");
    let _ = writeln!(json, "  \"ingest_stall_ms\": {INGEST_MS},");
    let _ = writeln!(json, "  \"cpu_cores\": {cores},");
    let _ = writeln!(
        json,
        "  \"kernel_config\": {},",
        dcdiff_tensor::kernels::KernelConfig::current().to_json()
    );
    let _ = writeln!(
        json,
        "  \"note\": \"each job blocks {INGEST_MS} ms simulating the IoT sender uplink before \
         sub-ms recover compute; worker speedup comes from overlapping those stalls (and, on \
         multi-core hosts, from compute parallelism)\","
    );
    json.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"workers\": {}, \"batch_max\": {}, \"wall_ms\": {:.2}, \
             \"jobs_per_sec\": {:.2}, \"p50_ms\": {:.2}, \"p99_ms\": {:.2}, \
             \"queue_wait_p50_ms\": {:.2}, \"queue_wait_p99_ms\": {:.2}, \
             \"recover_p50_ms\": {:.2}, \"recover_p99_ms\": {:.2}, \
             \"batches\": {}, \"batched_jobs\": {}}}{}",
            r.workers,
            r.batch_max,
            r.wall.as_secs_f64() * 1e3,
            r.jobs_per_sec,
            r.p50_ms,
            r.p99_ms,
            r.queue_p50_ms,
            r.queue_p99_ms,
            r.recover_p50_ms,
            r.recover_p99_ms,
            r.stats.batches,
            r.stats.batched_jobs,
            if i + 1 < runs.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n");
    // Named cells keep the bench_diff comparison reorder-robust; `steps`,
    // `width` and the raw counters carry no direction suffix, so the
    // sentinel treats them as configuration echoes.
    json.push_str("  \"diffusion_cohort\": [\n");
    for (i, c) in cohort_runs.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"canvas{}_steps{}_width{}\", \"canvas\": {}, \"steps\": {}, \
             \"width\": {}, \"wall_ms\": {:.2}, \"jobs_per_sec\": {:.2}, \"cohorts\": {}, \
             \"shared_forwards\": {}, \"lane_steps\": {}}}{}",
            c.canvas,
            c.steps,
            c.width,
            c.canvas,
            c.steps,
            c.width,
            c.wall.as_secs_f64() * 1e3,
            c.jobs_per_sec,
            c.cohorts,
            c.shared_forwards,
            c.lane_steps,
            if i + 1 < cohort_runs.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"speedup_4_vs_1_workers\": {speedup:.2},");
    let _ = writeln!(
        json,
        "  \"cohort_speedup_canvas16_steps64_width8_vs_1\": {cohort_speedup_tile_s64:.2}"
    );
    json.push_str("}\n");
    std::fs::write("BENCH_runtime.json", &json).expect("write BENCH_runtime.json");
    println!("wrote BENCH_runtime.json");

    let _ = std::fs::remove_dir_all(&scratch);
    assert!(speedup >= 2.0, "4-worker serving should be at least 2x 1-worker (got {speedup:.2}x)");
    assert!(
        cohort_speedup_tile_s64 >= 2.5,
        "width-8 cohorts should serve at least 2.5x the sequential rate on the 16x16 tile \
         manifest at 64 DDIM steps (got {cohort_speedup_tile_s64:.2}x)"
    );
}
