//! The end-to-end DCDiff estimator.

use dcdiff_diffusion::{BatchLane, BatchedDdimSampler, DdimSampler, Fmpp, NoiseSchedule};
use dcdiff_image::Image;
use dcdiff_jpeg::{ChromaSampling, CoeffImage, DcDropMode};
use dcdiff_tensor::optim::Adam;
use dcdiff_tensor::serial::{Checkpoint, CheckpointError};
use dcdiff_tensor::{no_grad, seeded_rng, Rng, Tensor};
use rand::Rng as _;

use std::time::Instant;

use crate::fallback::EstimateError;
use dcdiff_telemetry::names;
use crate::mask::{high_frequency_mask, DEFAULT_THRESHOLD};
use crate::projection::{image_to_tensor, project_dc, tensor_to_image};
use crate::refine::refine_dc_offsets;
use crate::stage1::Stage1;
use crate::stage2::Stage2;
use crate::{PatchDiscriminator, PerceptualLoss};

/// Hyperparameters of the DCDiff system.
#[derive(Debug, Clone, PartialEq)]
pub struct DcDiffConfig {
    /// Stage-1 autoencoder width.
    pub stage1_base: usize,
    /// Latent channels of `z_0`.
    pub latent_channels: usize,
    /// U-Net width.
    pub unet_base: usize,
    /// Diffusion timesteps `T` of the training schedule.
    pub diffusion_steps: usize,
    /// DDIM steps at inference (the paper uses 50).
    pub ddim_steps: usize,
    /// Eq. 3 mask threshold `T` (the paper selects 10).
    pub mask_threshold: f32,
    /// Weight σ of the masked Laplacian loss in Eq. 6 (paper: 2e-4; we
    /// use a larger value because our pixel scale is `[-1, 1]`).
    pub sigma: f32,
    /// Quadratic prior weight λ of the inference-time MLD refinement.
    pub prior_weight: f32,
    /// Gauss–Seidel sweeps of the refinement.
    pub refine_sweeps: usize,
    /// JPEG quality the system is trained for.
    pub quality: u8,
    /// EMA decay for the stage-2 weights (`None` disables averaging).
    /// Sampling uses the averaged weights, the standard stabilisation for
    /// diffusion training.
    pub ema_decay: Option<f32>,
}

impl Default for DcDiffConfig {
    fn default() -> Self {
        Self {
            stage1_base: 12,
            latent_channels: 4,
            unet_base: 16,
            diffusion_steps: 200,
            ddim_steps: 50,
            mask_threshold: DEFAULT_THRESHOLD,
            sigma: 0.05,
            prior_weight: 0.001,
            refine_sweeps: 150,
            quality: 50,
            ema_decay: Some(0.995),
        }
    }
}

/// Inference-time options (the ablation knobs of Table III).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoverOptions {
    /// DDIM steps (overrides the config default).
    pub ddim_steps: usize,
    /// Use the FMPP frequency modulation (w/o FMPP sets `s = b = 1`).
    pub use_fmpp: bool,
    /// Apply the masked-Laplacian refinement (the inference-time
    /// counterpart of the MLD loss).
    pub use_mld: bool,
    /// Apply the DC projection (keep AC bit-exact, take block means from
    /// the generated image).
    pub use_projection: bool,
    /// Eq. 3 mask threshold `T` used by the refinement.
    pub mask_threshold: f32,
    /// Sampling seed (inference is deterministic given the seed).
    pub seed: u64,
}

impl RecoverOptions {
    /// Defaults matching a [`DcDiffConfig`].
    pub fn from_config(config: &DcDiffConfig) -> Self {
        Self {
            ddim_steps: config.ddim_steps,
            use_fmpp: true,
            use_mld: true,
            use_projection: true,
            mask_threshold: config.mask_threshold,
            seed: 0,
        }
    }
}

/// One lane of a [`DcDiff::try_recover_batch`] cohort: the dropped stream
/// plus the per-job identity that keeps batched results composition-
/// independent (seed) and observable (trace).
#[derive(Debug)]
pub struct BatchRecoverJob<'a> {
    /// The DC-dropped coefficient stream to recover.
    pub dropped: &'a CoeffImage,
    /// Per-lane sampling seed. Derive it from the stream with
    /// [`content_seed`] so the output depends only on the input, never on
    /// cohort width or position.
    pub seed: u64,
    /// Optional per-lane cooperative deadline; expiry evicts this lane
    /// without aborting the cohort.
    pub deadline: Option<Instant>,
    /// Trace context this lane's spans are attributed to.
    pub trace: Option<dcdiff_telemetry::TraceCtx>,
}

impl<'a> BatchRecoverJob<'a> {
    /// A lane seeded from the stream's own content, with no deadline.
    pub fn new(dropped: &'a CoeffImage) -> Self {
        Self {
            dropped,
            seed: content_seed(dropped),
            deadline: None,
            trace: None,
        }
    }
}

/// Deterministic sampling seed derived from the coefficient stream itself
/// (FNV-1a over dimensions and every quantised coefficient).
///
/// Seeding from job identity rather than a shared counter is what makes
/// recovery results reproducible across cohort compositions: the same
/// stream recovers to the same image whether it runs alone, in a width-8
/// cohort, or sequentially.
pub fn content_seed(dropped: &CoeffImage) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        hash ^= v;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    };
    mix(dropped.width() as u64);
    mix(dropped.height() as u64);
    mix(dropped.channels() as u64);
    for c in 0..dropped.channels() {
        let plane = dropped.plane(c);
        for by in 0..plane.blocks_y() {
            for bx in 0..plane.blocks_x() {
                for &v in plane.block(bx, by) {
                    mix(v as i64 as u64);
                }
            }
        }
    }
    hash
}

/// Stack per-lane `[1, …]` tensors along the batch dimension.
fn stack_rows(parts: &[Tensor]) -> Tensor {
    let mut shape = parts[0].shape().to_vec();
    let per: usize = shape.iter().product();
    let mut data = Vec::with_capacity(per * parts.len());
    for part in parts {
        data.extend_from_slice(&part.to_vec());
    }
    shape[0] = parts.len();
    Tensor::from_vec(shape, data)
}

/// Select `rows` (ascending batch indices) out of a stacked tensor.
fn select_rows(stacked: &Tensor, rows: &[usize]) -> Tensor {
    let mut shape = stacked.shape().to_vec();
    let per: usize = shape.iter().skip(1).product();
    let data = stacked.to_vec();
    let mut sel = Vec::with_capacity(per * rows.len());
    for &r in rows {
        sel.extend_from_slice(&data[r * per..(r + 1) * per]);
    }
    shape[0] = rows.len();
    Tensor::from_vec(shape, sel)
}

/// Summary of a training run (loss trajectories for diagnostics).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrainReport {
    /// Stage-1 generator losses per step.
    pub stage1_losses: Vec<f32>,
    /// Stage-2 `L_ldm` losses per step (both phases).
    pub ldm_losses: Vec<f32>,
    /// Stage-2 `L_m` values per phase-2 step.
    pub mld_losses: Vec<f32>,
    /// FMPP losses per step.
    pub fmpp_losses: Vec<f32>,
    /// Latent normalisation scale estimated after stage 1.
    pub latent_scale: f32,
}

/// Training step budget for [`DcDiff::train`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainBudget {
    /// Stage-1 autoencoder steps.
    pub stage1_steps: usize,
    /// Stage-2 phase-1 (`L_ldm` only) steps.
    pub ldm_steps: usize,
    /// Stage-2 phase-2 (`L_ldm + σ·L_m`) steps.
    pub mld_steps: usize,
    /// FMPP steps.
    pub fmpp_steps: usize,
    /// Batch size for every stage.
    pub batch: usize,
}

impl Default for TrainBudget {
    fn default() -> Self {
        Self {
            stage1_steps: 300,
            ldm_steps: 300,
            mld_steps: 150,
            fmpp_steps: 60,
            batch: 2,
        }
    }
}

/// The DCDiff system: stage-1 autoencoder, stage-2 controlled latent
/// diffusion, FMPP, and the receiver-side recovery pipeline.
///
/// # Pipeline (inference)
///
/// 1. decode the DC-dropped stream to `x̃`;
/// 2. FMPP predicts the FreeU scales `(s, b)` from `x̃`;
/// 3. DDIM-sample the DC latent under control features from `x̃`;
/// 4. decode with the stage-1 decoder and `E_AC(x̃)`;
/// 5. **DC projection** — keep the transmitted AC bit-exact, take only
///    per-block means from the generated image;
/// 6. masked-Laplacian refinement of the projected DC map (see
///    `DESIGN.md` for why this training-time constraint is also applied
///    at inference in this scaled-down reproduction).
#[derive(Debug)]
pub struct DcDiff {
    config: DcDiffConfig,
    stage1: Stage1,
    stage2: Stage2,
    fmpp: Fmpp,
    latent_scale: f32,
    trained: bool,
}

impl DcDiff {
    /// Build an untrained system.
    pub fn new(config: DcDiffConfig, seed: u64) -> Self {
        let mut rng = seeded_rng(seed);
        let stage1 = Stage1::new(config.stage1_base, config.latent_channels, &mut rng);
        let schedule = NoiseSchedule::linear(config.diffusion_steps, 1e-3, 2e-2);
        let stage2 = Stage2::new(config.latent_channels, config.unet_base, schedule, &mut rng);
        let fmpp = Fmpp::new(3, &mut rng);
        Self {
            config,
            stage1,
            stage2,
            fmpp,
            latent_scale: 1.0,
            trained: false,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DcDiffConfig {
        &self.config
    }

    /// Whether [`DcDiff::train`] completed.
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// Prepare an `(x0, x̃, mask)` training example from an original image.
    fn example(&self, image: &Image) -> (Tensor, Tensor, dcdiff_image::Plane) {
        let coeffs = CoeffImage::from_image(image, self.config.quality, ChromaSampling::Cs444);
        let dropped = coeffs.drop_dc(DcDropMode::KeepCorners);
        let x_tilde_img = dropped.to_image();
        let x0 = image_to_tensor(&image.to_rgb());
        let x_tilde = image_to_tensor(&x_tilde_img);
        let mask = high_frequency_mask(&x_tilde_img, self.config.mask_threshold);
        (x0, x_tilde, mask)
    }

    fn batch_tensors(
        examples: &[(Tensor, Tensor, dcdiff_image::Plane)],
        idx: &[usize],
    ) -> (Tensor, Tensor, Vec<dcdiff_image::Plane>) {
        let shape = examples[0].0.shape().to_vec();
        let (c, h, w) = (shape[1], shape[2], shape[3]);
        let mut x0 = Vec::with_capacity(idx.len() * c * h * w);
        let mut xt = Vec::with_capacity(idx.len() * c * h * w);
        let mut masks = Vec::with_capacity(idx.len());
        for &i in idx {
            x0.extend_from_slice(&examples[i].0.to_vec());
            xt.extend_from_slice(&examples[i].1.to_vec());
            masks.push(examples[i].2.clone());
        }
        (
            Tensor::from_vec(vec![idx.len(), c, h, w], x0),
            Tensor::from_vec(vec![idx.len(), c, h, w], xt),
            masks,
        )
    }

    /// Run the full three-stage training procedure of §III-E on
    /// `images` (all the same 16-aligned size).
    ///
    /// # Panics
    ///
    /// Panics if `images` is empty or dimensions are not divisible by 16.
    pub fn train(&mut self, images: &[Image], budget: TrainBudget, seed: u64) -> TrainReport {
        assert!(!images.is_empty(), "need at least one training image");
        for img in images {
            assert!(
                img.width() % 16 == 0 && img.height() % 16 == 0,
                "training images must be 16-aligned, got {}x{}",
                img.width(),
                img.height()
            );
        }
        let mut rng = seeded_rng(seed);
        let mut report = TrainReport::default();
        let examples: Vec<_> = images.iter().map(|img| self.example(img)).collect();
        let sample_batch = |rng: &mut Rng| -> Vec<usize> {
            (0..budget.batch.max(1))
                .map(|_| rng.gen_range(0..examples.len()))
                .collect()
        };

        // ---- stage 1: autoencoder (Eq. 5) ----
        let perceptual = PerceptualLoss::default();
        let mut disc_rng = seeded_rng(seed ^ 0xD15C);
        let disc = PatchDiscriminator::new(3, &mut disc_rng);
        let mut opt1 = Adam::new(self.stage1.params(), 2e-3);
        let mut dopt = Adam::new(disc.params(), 1e-3);
        for _ in 0..budget.stage1_steps {
            let idx = sample_batch(&mut rng);
            let (x0, xt, _) = Self::batch_tensors(&examples, &idx);
            let loss = self
                .stage1
                .train_step(&x0, &xt, &perceptual, &disc, &mut opt1, &mut dopt, 0.005);
            report.stage1_losses.push(loss);
        }

        // latent scale for unit-variance diffusion
        let mut var_sum = 0.0f64;
        let mut var_count = 0usize;
        for (x0, _, _) in &examples {
            let z = self.stage1.encode_dc(x0).detach();
            for v in z.to_vec() {
                var_sum += (v as f64) * (v as f64);
                var_count += 1;
            }
        }
        self.latent_scale = ((var_sum / var_count.max(1) as f64).sqrt() as f32).max(1e-3);
        report.latent_scale = self.latent_scale;

        // ---- stage 2 phase 1: L_ldm only ----
        let mut opt2 = Adam::new(self.stage2.params(), 1e-3);
        let mut ema = self
            .config
            .ema_decay
            .map(|decay| dcdiff_tensor::optim::Ema::new(self.stage2.params(), decay));
        for _ in 0..budget.ldm_steps {
            let idx = sample_batch(&mut rng);
            let (x0, xt, _) = Self::batch_tensors(&examples, &idx);
            let z0 = self
                .stage1
                .encode_dc(&x0)
                .detach()
                .scale(1.0 / self.latent_scale);
            let cond = Stage2::condition_from(&xt).detach();
            let loss = self.stage2.train_step_ldm(&z0, &cond, &mut opt2, &mut rng);
            if let Some(ema) = &mut ema {
                ema.update();
            }
            report.ldm_losses.push(loss);
        }

        // ---- stage 2 phase 2: L_ldm + sigma * L_m ----
        opt2.set_lr(2e-4);
        for _ in 0..budget.mld_steps {
            let idx = sample_batch(&mut rng);
            let (x0, xt, masks) = Self::batch_tensors(&examples, &idx);
            let z0 = self
                .stage1
                .encode_dc(&x0)
                .detach()
                .scale(1.0 / self.latent_scale);
            let cond = Stage2::condition_from(&xt).detach();
            let (ldm, mld) = self.stage2.train_step_mld(
                &z0,
                &cond,
                &xt,
                &masks,
                &self.stage1,
                self.config.sigma,
                &mut opt2,
                &mut rng,
            );
            if let Some(ema) = &mut ema {
                ema.update();
            }
            report.ldm_losses.push(ldm);
            report.mld_losses.push(mld);
        }
        // sample from the averaged weights
        if let Some(ema) = &ema {
            ema.apply_to_params();
        }

        // ---- FMPP: freeze everything else, minimise MSE of a one-step
        // reconstruction under the predicted scales ----
        let mut fopt = Adam::new(self.fmpp.params(), 5e-4);
        for _ in 0..budget.fmpp_steps {
            let idx = sample_batch(&mut rng);
            let (x0, xt, _) = Self::batch_tensors(&examples, &idx);
            let z0 = self
                .stage1
                .encode_dc(&x0)
                .detach()
                .scale(1.0 / self.latent_scale);
            let cond = Stage2::condition_from(&xt).detach();
            let control = self.stage2.control_features(&cond);
            let control: Vec<Tensor> = control.iter().map(Tensor::detach).collect();
            let t = self.stage2.schedule().steps() / 2;
            let eps = Tensor::randn(z0.shape().to_vec(), 1.0, &mut rng);
            let z_t = self.stage2.schedule().q_sample(&z0, t, &eps).detach();
            fopt.zero_grad();
            let (s, b) = self.fmpp.predict(&xt);
            let n = z0.shape()[0];
            let eps_hat = self
                .stage2
                .predict_noise(&z_t, &vec![t; n], &control, Some((&s, &b)));
            let z0_hat = self.stage2.schedule().predict_z0(&z_t, t, &eps_hat);
            let x_hat = self
                .stage1
                .decode(&z0_hat.scale(self.latent_scale), &xt.detach());
            let loss = x_hat.mse(&x0);
            loss.backward();
            // freeze everything but FMPP
            for p in self.stage1.params().iter().chain(self.stage2.params().iter()) {
                p.zero_grad();
            }
            fopt.step();
            report.fmpp_losses.push(loss.item());
        }

        self.trained = true;
        report
    }

    /// Recover an image from a DC-dropped coefficient stream with default
    /// options.
    pub fn recover(&self, dropped: &CoeffImage) -> Image {
        self.recover_with(dropped, &RecoverOptions::from_config(&self.config))
    }

    /// Recover with explicit [`RecoverOptions`] (the Table III ablations).
    ///
    /// # Panics
    ///
    /// Panics if `options.ddim_steps` is zero or exceeds the training
    /// schedule.
    pub fn recover_with(&self, dropped: &CoeffImage, options: &RecoverOptions) -> Image {
        match self.recover_deadline(dropped, options, None) {
            Ok(image) => image,
            Err(err) => unreachable!("recovery without a deadline cannot fail: {err}"),
        }
    }

    /// Fallible recovery with an optional wall-clock deadline.
    ///
    /// This is the entry point the degradation ladder
    /// ([`crate::FallbackEstimator`]) uses: the deadline is checked
    /// cooperatively before every DDIM step and at each phase boundary,
    /// and any panic escaping the model stack is caught and reported as
    /// [`EstimateError::Panicked`] instead of unwinding into the worker.
    ///
    /// # Errors
    ///
    /// [`EstimateError::DeadlineExceeded`] when `deadline` passes before
    /// recovery completes; [`EstimateError::Panicked`] when the model
    /// stack panics.
    pub fn try_recover_with(
        &self,
        dropped: &CoeffImage,
        options: &RecoverOptions,
        deadline: Option<Instant>,
    ) -> Result<Image, EstimateError> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.recover_deadline(dropped, options, deadline)
        }))
        .unwrap_or_else(|payload| Err(EstimateError::panicked(payload)))
    }

    fn recover_deadline(
        &self,
        dropped: &CoeffImage,
        options: &RecoverOptions,
        deadline: Option<Instant>,
    ) -> Result<Image, EstimateError> {
        let check = |phase: &'static str| match deadline {
            Some(d) if Instant::now() >= d => Err(EstimateError::DeadlineExceeded { phase }),
            _ => Ok(()),
        };
        check("start")?;
        // Inference-only pass: suppress the autograd tape so conv/GEMM work
        // buffers recycle through the kernel scratch pool instead of being
        // saved for a backward that never runs.
        no_grad(|| {
        // Phase spans go to the process-wide telemetry handle (see
        // `dcdiff_telemetry::install`); without an installed trace they are
        // inert branches.
        let tel = dcdiff_telemetry::global();
        let x_tilde_img = dropped.to_image();
        // pad to a 16-aligned canvas for the networks
        let (w, h) = x_tilde_img.dims();
        let pw = w.div_ceil(16) * 16;
        let ph = h.div_ceil(16) * 16;
        let padded = if (pw, ph) == (w, h) {
            x_tilde_img.clone()
        } else {
            Image::from_planes(
                x_tilde_img
                    .planes()
                    .iter()
                    .map(|p| p.crop_clamped(0, 0, pw, ph))
                    .collect(),
                x_tilde_img.color_space(),
            )
            .expect("padded planes share dimensions")
        };
        let x_tilde = image_to_tensor(&padded);

        // FreeU scales
        let fmpp_span = tel.span(names::SPAN_RECOVER_FMPP);
        let (s, b) = if options.use_fmpp {
            self.fmpp.predict(&x_tilde)
        } else {
            (Tensor::full(vec![1], 1.0), Tensor::full(vec![1], 1.0))
        };
        let s = s.detach();
        let b = b.detach();
        drop(fmpp_span);

        // DDIM sampling of the DC latent
        let sample_span = tel.span(names::SPAN_RECOVER_SAMPLE);
        let cond = Stage2::condition_from(&x_tilde).detach();
        let control = self.stage2.control_features(&cond);
        let control: Vec<Tensor> = control.iter().map(Tensor::detach).collect();
        let sampler = DdimSampler::new(self.stage2.schedule().clone(), options.ddim_steps);
        let mut rng = seeded_rng(options.seed);
        let latent_shape = [
            1,
            self.config.latent_channels,
            ph / 8,
            pw / 8,
        ];
        let z = sampler.try_sample(&latent_shape, &mut rng, |z_t, t| {
            check("ddim")?;
            Ok(self
                .stage2
                .predict_noise(z_t, &[t], &control, Some((&s, &b))))
        })?;
        drop(sample_span);

        // decode and crop
        check("decode")?;
        let decode_span = tel.span(names::SPAN_RECOVER_DECODE);
        let x_hat = self
            .stage1
            .decode(&z.scale(self.latent_scale), &x_tilde)
            .detach();
        let generated = tensor_to_image(&x_hat).crop_to(w, h);
        drop(decode_span);

        if !options.use_projection {
            return Ok(generated);
        }
        check("projection")?;
        let projection_span = tel.span(names::SPAN_RECOVER_PROJECTION);
        let projected = project_dc(dropped, &generated);
        drop(projection_span);
        if !options.use_mld {
            return Ok(projected.to_image());
        }
        check("mld_refine")?;
        let _mld_span = tel.span(names::SPAN_RECOVER_MLD_REFINE);
        let refined = refine_dc_offsets(
            dropped,
            &projected,
            options.mask_threshold,
            self.config.prior_weight,
            self.config.refine_sweeps,
        );
        Ok(refined.to_image())
        })
    }

    /// Recover a whole cohort of DC-dropped streams with **shared U-Net
    /// forwards**: lanes with the same padded canvas advance through the
    /// DDIM chain in lock-step via [`BatchedDdimSampler`], one forward per
    /// step for the group, and the FMPP / control / stage-1 decode passes
    /// are batched the same way.
    ///
    /// Per-lane identity is preserved: each lane samples from its own RNG
    /// seeded with [`BatchRecoverJob::seed`] (use [`content_seed`] to derive
    /// it from the stream itself), so a lane's output is bit-identical to a
    /// sequential [`DcDiff::try_recover_with`] call with the same seed,
    /// regardless of which other lanes share the cohort. Deadlines stay
    /// per-lane and cooperative: an expired lane is evicted from the cohort
    /// (its slot resolves to [`EstimateError::DeadlineExceeded`]) while the
    /// remaining lanes keep stepping. A panic anywhere in the model stack
    /// resolves every lane to [`EstimateError::Panicked`].
    ///
    /// `options.seed` is ignored in this entry point; seeding is per-lane.
    pub fn try_recover_batch(
        &self,
        jobs: &[BatchRecoverJob<'_>],
        options: &RecoverOptions,
    ) -> Vec<Result<Image, EstimateError>> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.recover_batch_deadline(jobs, options)
        }))
        .unwrap_or_else(|payload| {
            let err = EstimateError::panicked(payload);
            jobs.iter().map(|_| Err(err.clone())).collect()
        })
    }

    fn recover_batch_deadline(
        &self,
        jobs: &[BatchRecoverJob<'_>],
        options: &RecoverOptions,
    ) -> Vec<Result<Image, EstimateError>> {
        let mut out: Vec<Option<Result<Image, EstimateError>>> =
            (0..jobs.len()).map(|_| None).collect();
        // Lanes can only share a forward when their padded canvases agree;
        // group by canvas and run each group as one cohort.
        let mut groups: Vec<((usize, usize), Vec<usize>)> = Vec::new();
        for (i, job) in jobs.iter().enumerate() {
            let pw = job.dropped.width().div_ceil(16) * 16;
            let ph = job.dropped.height().div_ceil(16) * 16;
            match groups.iter_mut().find(|(canvas, _)| *canvas == (pw, ph)) {
                Some((_, members)) => members.push(i),
                None => groups.push(((pw, ph), vec![i])),
            }
        }
        for ((pw, ph), members) in groups {
            self.recover_group(jobs, &members, (pw, ph), options, &mut out);
        }
        out.into_iter()
            .map(|slot| slot.expect("every lane resolves"))
            .collect()
    }

    /// Run one same-canvas cohort; fills `out[i]` for every `i` in
    /// `members`.
    fn recover_group(
        &self,
        jobs: &[BatchRecoverJob<'_>],
        members: &[usize],
        (pw, ph): (usize, usize),
        options: &RecoverOptions,
        out: &mut [Option<Result<Image, EstimateError>>],
    ) {
        // Inference-only pass; see `recover_deadline` for why the tape is
        // suppressed. At cohort widths the saved im2col buffers would be
        // K× larger still, so recycling them matters even more here.
        no_grad(|| {
        let tel = dcdiff_telemetry::global();
        let check = |i: usize, phase: &'static str| match jobs[i].deadline {
            Some(d) if Instant::now() >= d => Err(EstimateError::DeadlineExceeded { phase }),
            _ => Ok(()),
        };
        // Attribute a shared-phase span to one lane's trace.
        let lane_span = |i: usize, name: &'static str, start: Instant, end: Instant| {
            let _attributed = jobs[i].trace.map(dcdiff_telemetry::install_trace);
            tel.record_span(name, start, end);
        };

        // Ingest: decode each lane's x̃ and pad it to the group canvas.
        let mut live: Vec<usize> = Vec::new();
        let mut x_tildes: Vec<Tensor> = Vec::new();
        let mut dims: Vec<(usize, usize)> = Vec::new();
        for &i in members {
            if let Err(e) = check(i, "start") {
                out[i] = Some(Err(e));
                continue;
            }
            let x_tilde_img = jobs[i].dropped.to_image();
            let (w, h) = x_tilde_img.dims();
            let padded = if (pw, ph) == (w, h) {
                x_tilde_img.clone()
            } else {
                Image::from_planes(
                    x_tilde_img
                        .planes()
                        .iter()
                        .map(|p| p.crop_clamped(0, 0, pw, ph))
                        .collect(),
                    x_tilde_img.color_space(),
                )
                .expect("padded planes share dimensions")
            };
            x_tildes.push(image_to_tensor(&padded));
            dims.push((w, h));
            live.push(i);
        }
        if live.is_empty() {
            return;
        }
        let k = live.len();

        // FreeU scales, one batched FMPP forward for the group.
        let fmpp_start = Instant::now();
        let x_stack = stack_rows(&x_tildes);
        let (s_all, b_all) = if options.use_fmpp {
            self.fmpp.predict(&x_stack)
        } else {
            (Tensor::full(vec![k], 1.0), Tensor::full(vec![k], 1.0))
        };
        let s_all = s_all.detach();
        let b_all = b_all.detach();
        let fmpp_end = Instant::now();
        for &i in &live {
            lane_span(i, names::SPAN_RECOVER_FMPP, fmpp_start, fmpp_end);
        }

        // Control features, batched over the group.
        let sample_start = Instant::now();
        let cond = Stage2::condition_from(&x_stack).detach();
        let control_all: Vec<Tensor> = self
            .stage2
            .control_features(&cond)
            .iter()
            .map(Tensor::detach)
            .collect();

        // Step-synchronized DDIM over the cohort. The conditioning rows are
        // re-selected only when the active set changes (lane eviction).
        let sampler = BatchedDdimSampler::new(self.stage2.schedule().clone(), options.ddim_steps);
        let mut lanes: Vec<BatchLane> = live
            .iter()
            .map(|&i| {
                let lane = BatchLane::new(seeded_rng(jobs[i].seed));
                match jobs[i].trace {
                    Some(trace) => lane.with_trace(trace),
                    None => lane,
                }
            })
            .collect();
        let latent_shape = [1, self.config.latent_channels, ph / 8, pw / 8];
        let mut selected: Option<(Vec<usize>, Vec<Tensor>, Tensor, Tensor)> = None;
        let sampled = sampler.try_sample_cohort::<EstimateError>(
            &latent_shape,
            &mut lanes,
            |z_t, t, active| {
                let stale = selected
                    .as_ref()
                    .is_none_or(|(rows, ..)| rows.as_slice() != active);
                if stale {
                    let ctrl: Vec<Tensor> =
                        control_all.iter().map(|c| select_rows(c, active)).collect();
                    let s = select_rows(&s_all, active);
                    let b = select_rows(&b_all, active);
                    selected = Some((active.to_vec(), ctrl, s, b));
                }
                let (_, ctrl, s, b) = selected.as_ref().expect("selected just populated");
                Ok(self
                    .stage2
                    .predict_noise(z_t, &vec![t; active.len()], ctrl, Some((s, b))))
            },
            |lane, _t| check(live[lane], "ddim"),
        );
        let sample_end = Instant::now();
        for &i in &live {
            lane_span(i, names::SPAN_RECOVER_SAMPLE, sample_start, sample_end);
        }

        // Batched stage-1 decode of the surviving lanes.
        let decode_start = Instant::now();
        let mut survivors: Vec<usize> = Vec::new(); // rows into `live`
        let mut z_parts: Vec<Tensor> = Vec::new();
        for (row, result) in sampled.iter().enumerate() {
            match result {
                Err(e) => out[live[row]] = Some(Err(e.clone())),
                Ok(z) => match check(live[row], "decode") {
                    Err(e) => out[live[row]] = Some(Err(e)),
                    Ok(()) => {
                        survivors.push(row);
                        z_parts.push(z.scale(self.latent_scale));
                    }
                },
            }
        }
        if survivors.is_empty() {
            return;
        }
        let xt_parts: Vec<Tensor> = survivors.iter().map(|&r| x_tildes[r].clone()).collect();
        let x_hat = self
            .stage1
            .decode(&stack_rows(&z_parts), &stack_rows(&xt_parts))
            .detach();
        let decode_end = Instant::now();
        let x_hat_data = x_hat.to_vec();
        let mut row_shape = x_hat.shape().to_vec();
        row_shape[0] = 1;
        let per: usize = row_shape.iter().product();

        // Per-lane tail: crop, DC projection, masked-Laplacian refinement.
        for (j, &row) in survivors.iter().enumerate() {
            let i = live[row];
            lane_span(i, names::SPAN_RECOVER_DECODE, decode_start, decode_end);
            let lane_hat = Tensor::from_vec(
                row_shape.clone(),
                x_hat_data[j * per..(j + 1) * per].to_vec(),
            );
            let (w, h) = dims[row];
            let generated = tensor_to_image(&lane_hat).crop_to(w, h);
            out[i] = Some(self.finish_lane(jobs[i].dropped, generated, options, |phase| {
                check(i, phase)
            }));
        }
        })
    }

    /// The per-lane post-sampling pipeline, identical to the tail of
    /// [`DcDiff::recover_deadline`].
    fn finish_lane(
        &self,
        dropped: &CoeffImage,
        generated: Image,
        options: &RecoverOptions,
        check: impl Fn(&'static str) -> Result<(), EstimateError>,
    ) -> Result<Image, EstimateError> {
        let tel = dcdiff_telemetry::global();
        if !options.use_projection {
            return Ok(generated);
        }
        check("projection")?;
        let projection_span = tel.span(names::SPAN_RECOVER_PROJECTION);
        let projected = project_dc(dropped, &generated);
        drop(projection_span);
        if !options.use_mld {
            return Ok(projected.to_image());
        }
        check("mld_refine")?;
        let _mld_span = tel.span(names::SPAN_RECOVER_MLD_REFINE);
        let refined = refine_dc_offsets(
            dropped,
            &projected,
            options.mask_threshold,
            self.config.prior_weight,
            self.config.refine_sweeps,
        );
        Ok(refined.to_image())
    }

    /// Serialise every sub-network into a checkpoint.
    pub fn save(&self) -> Checkpoint {
        let mut ckpt = Checkpoint::new();
        self.stage1.save(&mut ckpt);
        self.stage2.save(&mut ckpt);
        self.fmpp.save(&mut ckpt);
        let scale = Tensor::from_vec(vec![1], vec![self.latent_scale]);
        ckpt.insert("latent_scale", &scale);
        ckpt
    }

    /// Restore every sub-network from a checkpoint written by
    /// [`DcDiff::save`].
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] on missing or mis-shaped tensors.
    pub fn load(&mut self, ckpt: &Checkpoint) -> Result<(), CheckpointError> {
        self.stage1.load(ckpt)?;
        self.stage2.load(ckpt)?;
        self.fmpp.load(ckpt)?;
        let scale = Tensor::from_vec(vec![1], vec![1.0]);
        ckpt.load_into("latent_scale", &scale)?;
        self.latent_scale = scale.to_vec()[0];
        self.trained = true;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcdiff_data::{DatasetProfile, SceneGenerator, SceneKind};
    use dcdiff_metrics::psnr;

    fn tiny_config() -> DcDiffConfig {
        DcDiffConfig {
            stage1_base: 8,
            latent_channels: 4,
            unet_base: 8,
            diffusion_steps: 50,
            ddim_steps: 5,
            ..DcDiffConfig::default()
        }
    }

    fn tiny_budget() -> TrainBudget {
        TrainBudget {
            stage1_steps: 40,
            ldm_steps: 30,
            mld_steps: 10,
            fmpp_steps: 5,
            batch: 2,
        }
    }

    #[test]
    fn untrained_recovery_still_produces_valid_output() {
        let system = DcDiff::new(tiny_config(), 0);
        let img = SceneGenerator::new(SceneKind::Smooth, 48, 48).generate(1);
        let coeffs = CoeffImage::from_image(&img, 50, ChromaSampling::Cs444);
        let dropped = coeffs.drop_dc(DcDropMode::KeepCorners);
        let out = system.recover(&dropped);
        assert_eq!(out.dims(), (48, 48));
    }

    #[test]
    fn training_runs_and_losses_decrease() {
        let mut system = DcDiff::new(tiny_config(), 1);
        let images = DatasetProfile::set5().with_dims(32, 32).generate(10);
        let report = system.train(&images, tiny_budget(), 7);
        assert!(system.is_trained());
        assert_eq!(report.stage1_losses.len(), 40);
        let first: f32 = report.stage1_losses[..5].iter().sum();
        let last: f32 = report.stage1_losses[35..].iter().sum();
        assert!(last < first, "stage-1 loss should decrease: {first} -> {last}");
        assert!(report.latent_scale > 0.0);
    }

    #[test]
    fn recovery_beats_no_recovery_even_lightly_trained() {
        let mut system = DcDiff::new(tiny_config(), 2);
        let images = DatasetProfile::set5().with_dims(48, 48).generate(50);
        system.train(&images, tiny_budget(), 9);
        let test = SceneGenerator::new(SceneKind::Smooth, 48, 48).generate(777);
        let coeffs = CoeffImage::from_image(&test, 50, ChromaSampling::Cs444);
        let dropped = coeffs.drop_dc(DcDropMode::KeepCorners);
        let reference = coeffs.to_image();
        let p_rec = psnr(&reference, &system.recover(&dropped));
        let p_none = psnr(&reference, &dropped.to_image());
        assert!(p_rec > p_none + 5.0, "dcdiff {p_rec} vs none {p_none}");
    }

    #[test]
    fn ablation_options_change_the_output() {
        let system = DcDiff::new(tiny_config(), 3);
        let img = SceneGenerator::new(SceneKind::Urban, 48, 48).generate(4);
        let coeffs = CoeffImage::from_image(&img, 50, ChromaSampling::Cs444);
        let dropped = coeffs.drop_dc(DcDropMode::KeepCorners);
        let mut base_opts = RecoverOptions::from_config(system.config());
        base_opts.ddim_steps = 3;
        let full = system.recover_with(&dropped, &base_opts);
        let no_mld = system.recover_with(
            &dropped,
            &RecoverOptions {
                use_mld: false,
                ..base_opts
            },
        );
        let no_proj = system.recover_with(
            &dropped,
            &RecoverOptions {
                use_projection: false,
                use_mld: false,
                ..base_opts
            },
        );
        assert!(full.mean_abs_diff(&no_mld) > 1e-4);
        assert!(full.mean_abs_diff(&no_proj) > 1e-4);
    }

    fn dropped_scene(seed: u64, size: usize) -> CoeffImage {
        let img = SceneGenerator::new(SceneKind::Natural, size, size).generate(seed);
        CoeffImage::from_image(&img, 50, ChromaSampling::Cs444).drop_dc(DcDropMode::KeepCorners)
    }

    #[test]
    fn content_seed_is_stable_and_content_sensitive() {
        let a = dropped_scene(1, 32);
        let b = dropped_scene(1, 32);
        let c = dropped_scene(2, 32);
        assert_eq!(content_seed(&a), content_seed(&b), "same content, same seed");
        assert_ne!(content_seed(&a), content_seed(&c), "different content");
    }

    // Satellite: per-sample RNG streams seeded from job identity make a
    // sample's output identical at cohort widths 1, 2 and 8 — and equal to
    // the sequential path with the same seed.
    #[test]
    fn batched_recovery_is_bit_identical_across_cohort_widths() {
        let system = DcDiff::new(tiny_config(), 0);
        let mut opts = RecoverOptions::from_config(system.config());
        opts.ddim_steps = 3;
        let probe = dropped_scene(11, 32);
        let others: Vec<CoeffImage> = (0..7).map(|s| dropped_scene(100 + s, 32)).collect();

        let run_at_width = |width: usize| -> Image {
            let mut jobs = vec![BatchRecoverJob::new(&probe)];
            for other in others.iter().take(width - 1) {
                jobs.push(BatchRecoverJob::new(other));
            }
            let mut results = system.try_recover_batch(&jobs, &opts);
            results.swap_remove(0).expect("no deadline, no panic")
        };

        let w1 = run_at_width(1);
        let w2 = run_at_width(2);
        let w8 = run_at_width(8);
        assert_eq!(w1.mean_abs_diff(&w2), 0.0, "width 1 vs 2 must be bit-identical");
        assert_eq!(w1.mean_abs_diff(&w8), 0.0, "width 1 vs 8 must be bit-identical");

        let seq_opts = RecoverOptions {
            seed: content_seed(&probe),
            ..opts
        };
        let sequential = system
            .try_recover_with(&probe, &seq_opts, None)
            .expect("no deadline, no panic");
        assert_eq!(
            w1.mean_abs_diff(&sequential),
            0.0,
            "cohort lane must match the sequential sampler bit-exactly"
        );
    }

    #[test]
    fn batched_recovery_mixed_canvas_sizes_resolve_every_lane() {
        let system = DcDiff::new(tiny_config(), 1);
        let mut opts = RecoverOptions::from_config(system.config());
        opts.ddim_steps = 2;
        let small = dropped_scene(3, 32);
        let large = dropped_scene(4, 48);
        let jobs = vec![
            BatchRecoverJob::new(&small),
            BatchRecoverJob::new(&large),
            BatchRecoverJob::new(&small),
        ];
        let results = system.try_recover_batch(&jobs, &opts);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].as_ref().expect("lane 0").dims(), (32, 32));
        assert_eq!(results[1].as_ref().expect("lane 1").dims(), (48, 48));
        assert_eq!(results[2].as_ref().expect("lane 2").dims(), (32, 32));
        // Identical inputs in the same cohort produce identical outputs.
        let r0 = results[0].as_ref().expect("lane 0");
        let r2 = results[2].as_ref().expect("lane 2");
        assert_eq!(r0.mean_abs_diff(r2), 0.0);
    }

    #[test]
    fn batched_recovery_expired_lane_is_evicted_without_aborting_cohort() {
        let system = DcDiff::new(tiny_config(), 2);
        let mut opts = RecoverOptions::from_config(system.config());
        opts.ddim_steps = 2;
        let a = dropped_scene(5, 32);
        let b = dropped_scene(6, 32);
        let jobs = vec![
            BatchRecoverJob {
                deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
                ..BatchRecoverJob::new(&a)
            },
            BatchRecoverJob::new(&b),
        ];
        let results = system.try_recover_batch(&jobs, &opts);
        assert_eq!(
            results[0],
            Err(EstimateError::DeadlineExceeded { phase: "start" })
        );
        let survivor = results[1].as_ref().expect("lane 1 survives");
        // The survivor is unaffected by its cohort-mate's eviction.
        let solo = system.try_recover_batch(&[BatchRecoverJob::new(&b)], &opts);
        assert_eq!(survivor.mean_abs_diff(solo[0].as_ref().expect("solo")), 0.0);
    }

    #[test]
    fn checkpoint_round_trip_preserves_recovery() {
        let mut a = DcDiff::new(tiny_config(), 5);
        let images = DatasetProfile::set5().with_dims(32, 32).generate(3);
        a.train(
            &images,
            TrainBudget {
                stage1_steps: 5,
                ldm_steps: 5,
                mld_steps: 2,
                fmpp_steps: 2,
                batch: 1,
            },
            11,
        );
        let ckpt = a.save();
        let mut b = DcDiff::new(tiny_config(), 99);
        b.load(&ckpt).unwrap();
        let img = SceneGenerator::new(SceneKind::Smooth, 32, 32).generate(6);
        let coeffs = CoeffImage::from_image(&img, 50, ChromaSampling::Cs444);
        let dropped = coeffs.drop_dc(DcDropMode::KeepCorners);
        let mut opts = RecoverOptions::from_config(a.config());
        opts.ddim_steps = 3;
        let ra = a.recover_with(&dropped, &opts);
        let rb = b.recover_with(&dropped, &opts);
        assert!(ra.mean_abs_diff(&rb) < 1e-3);
    }
}
