//! Differentiable operations on [`Tensor`].
//!
//! Each op computes its forward value eagerly and registers a backward
//! closure that routes the output gradient to its parents.

mod batched;
mod conv;
mod elementwise;
mod loss;
mod matmul;
mod norm;
mod shape;

#[allow(unused_imports)]
use crate::Tensor;
