use super::elementwise::shape4;
use crate::Tensor;

impl Tensor {
    /// View the same data under a new shape (copying; gradients flow
    /// through unchanged).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: Vec<usize>) -> Tensor {
        assert_eq!(
            shape.iter().product::<usize>(),
            self.len(),
            "reshape must preserve element count"
        );
        Tensor::from_op(
            shape,
            self.to_vec(),
            vec![self.clone()],
            Box::new(move |g, parents| {
                if parents[0].tracks_grad() {
                    parents[0].accumulate_grad(g);
                }
            }),
        )
    }

    /// Concatenate two NCHW tensors along the channel axis (U-Net skip
    /// connections).
    ///
    /// # Panics
    ///
    /// Panics unless batch and spatial dimensions match.
    pub fn concat_channels(&self, other: &Tensor) -> Tensor {
        let (n, c1, h, w) = shape4(self.shape());
        let (n2, c2, h2, w2) = shape4(other.shape());
        assert_eq!(
            (n, h, w),
            (n2, h2, w2),
            "concat_channels: batch/spatial mismatch"
        );
        let hw = h * w;
        let a = self.to_vec();
        let b = other.to_vec();
        let mut out = vec![0.0f32; n * (c1 + c2) * hw];
        for ni in 0..n {
            let dst = &mut out[ni * (c1 + c2) * hw..];
            dst[..c1 * hw].copy_from_slice(&a[ni * c1 * hw..(ni + 1) * c1 * hw]);
            dst[c1 * hw..(c1 + c2) * hw].copy_from_slice(&b[ni * c2 * hw..(ni + 1) * c2 * hw]);
        }
        Tensor::from_op(
            vec![n, c1 + c2, h, w],
            out,
            vec![self.clone(), other.clone()],
            Box::new(move |g, parents| {
                if parents[0].tracks_grad() {
                    let mut ga = vec![0.0f32; n * c1 * hw];
                    for ni in 0..n {
                        let src = &g[ni * (c1 + c2) * hw..];
                        ga[ni * c1 * hw..(ni + 1) * c1 * hw].copy_from_slice(&src[..c1 * hw]);
                    }
                    parents[0].accumulate_grad(&ga);
                }
                if parents[1].tracks_grad() {
                    let mut gb = vec![0.0f32; n * c2 * hw];
                    for ni in 0..n {
                        let src = &g[ni * (c1 + c2) * hw..];
                        gb[ni * c2 * hw..(ni + 1) * c2 * hw]
                            .copy_from_slice(&src[c1 * hw..(c1 + c2) * hw]);
                    }
                    parents[1].accumulate_grad(&gb);
                }
            }),
        )
    }

    /// Slice a channel range `[start, end)` out of an NCHW tensor.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of bounds.
    pub fn slice_channels(&self, start: usize, end: usize) -> Tensor {
        let (n, c, h, w) = shape4(self.shape());
        assert!(start < end && end <= c, "invalid channel range {start}..{end} of {c}");
        let cs = end - start;
        let hw = h * w;
        let x = self.to_vec();
        let mut out = vec![0.0f32; n * cs * hw];
        for ni in 0..n {
            let src = &x[(ni * c + start) * hw..(ni * c + end) * hw];
            out[ni * cs * hw..(ni + 1) * cs * hw].copy_from_slice(src);
        }
        Tensor::from_op(
            vec![n, cs, h, w],
            out,
            vec![self.clone()],
            Box::new(move |g, parents| {
                if parents[0].tracks_grad() {
                    let mut gx = vec![0.0f32; n * c * hw];
                    for ni in 0..n {
                        gx[(ni * c + start) * hw..(ni * c + end) * hw]
                            .copy_from_slice(&g[ni * cs * hw..(ni + 1) * cs * hw]);
                    }
                    parents[0].accumulate_grad(&gx);
                }
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::Tensor;

    #[test]
    fn reshape_preserves_data_and_grad() {
        let x = Tensor::param(vec![2, 3], (0..6).map(|v| v as f32).collect());
        let y = x.reshape(vec![3, 2]);
        assert_eq!(y.shape(), &[3, 2]);
        assert_eq!(y.to_vec(), x.to_vec());
        y.sum_all().backward();
        assert_eq!(x.grad_vec(), vec![1.0; 6]);
    }

    #[test]
    fn concat_then_slice_round_trips() {
        let a = Tensor::param(vec![1, 2, 2, 2], (0..8).map(|v| v as f32).collect());
        let b = Tensor::param(vec![1, 1, 2, 2], (8..12).map(|v| v as f32).collect());
        let cat = a.concat_channels(&b);
        assert_eq!(cat.shape(), &[1, 3, 2, 2]);
        assert_eq!(cat.slice_channels(0, 2).to_vec(), a.to_vec());
        assert_eq!(cat.slice_channels(2, 3).to_vec(), b.to_vec());
    }

    #[test]
    fn concat_gradient_routes_to_both() {
        let a = Tensor::param(vec![1, 1, 1, 2], vec![0.0, 0.0]);
        let b = Tensor::param(vec![1, 1, 1, 2], vec![0.0, 0.0]);
        let cat = a.concat_channels(&b);
        // weight channel 0 by 2, channel 1 by 3
        let w = Tensor::from_vec(vec![1, 2, 1, 2], vec![2.0, 2.0, 3.0, 3.0]);
        cat.mul(&w).sum_all().backward();
        assert_eq!(a.grad_vec(), vec![2.0, 2.0]);
        assert_eq!(b.grad_vec(), vec![3.0, 3.0]);
    }

    #[test]
    fn slice_gradient_is_embedded() {
        let x = Tensor::param(vec![1, 3, 1, 1], vec![1.0, 2.0, 3.0]);
        x.slice_channels(1, 2).sum_all().backward();
        assert_eq!(x.grad_vec(), vec![0.0, 1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "invalid channel range")]
    fn slice_rejects_bad_range() {
        let x = Tensor::zeros(vec![1, 2, 1, 1]);
        let _ = x.slice_channels(1, 1);
    }

    #[test]
    fn batched_concat_keeps_sample_layout() {
        let a = Tensor::from_vec(vec![2, 1, 1, 1], vec![1.0, 2.0]);
        let b = Tensor::from_vec(vec![2, 1, 1, 1], vec![10.0, 20.0]);
        let cat = a.concat_channels(&b);
        assert_eq!(cat.to_vec(), vec![1.0, 10.0, 2.0, 20.0]);
    }
}
