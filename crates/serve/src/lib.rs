//! `dcdiff-serve`: the network front door of the DCDiff receiver.
//!
//! The paper's deployment story is fleets of senders streaming DC-dropped
//! JPEGs to a receiver that recovers the missing DC plane; this crate turns
//! the batch-oriented [`dcdiff_runtime`] into a long-lived service for that
//! traffic. It is std-only — blocking sockets, a thread per connection, and
//! the runtime's bounded queue as the single backpressure point — with
//! three deliberate control surfaces:
//!
//! - **Admission control / load shedding** ([`DeadlineClass`]): each
//!   request names a deadline class; a class is only admitted while the
//!   queue is shallower than its `admit_below` fraction, so bulk traffic
//!   sheds first and interactive traffic is protected to the last slot.
//! - **Per-client fairness** ([`ServeConfig::per_client_inflight`]): one
//!   client IP cannot occupy more than a fixed number of queue slots.
//! - **Graceful drain** ([`Server::drain`], SIGTERM/SIGINT via
//!   [`signal`]): stop accepting, answer new work with 503, let every
//!   admitted job deliver its response, then drain the runtime.
//!
//! Responses are content-negotiated: the full recovered image as PPM by
//! default, or just the estimated DC plane (one sample per 8×8 block) as
//! PGM for `Accept: image/x-portable-graymap`. A blocking [`Client`] lives
//! alongside the server so tests, `dcdiff submit` and `serve_bench` speak
//! the exact wire format the server implements.
//!
//! Everything observable is published as registered `serve.*` telemetry
//! series (see [`dcdiff_telemetry::names`]).

#![warn(missing_docs)]

pub mod client;
pub mod config;
pub mod http;
pub mod server;
pub mod signal;

pub use client::{Client, HttpResponse};
pub use config::{method_from_name, DeadlineClass, ServeConfig};
pub use server::{dc_plane_pgm, DrainReport, Server};
