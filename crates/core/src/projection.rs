//! Pixel ↔ tensor conversion and the DC projection.
//!
//! DC projection is the receiver-side contract of the whole DC-drop
//! pipeline: the AC coefficients arrived bit-exact in the JPEG stream, so
//! the final reconstruction keeps them unchanged and takes *only* the
//! per-block means from the generated image. Estimation quality therefore
//! reduces to one scalar per block — exactly the quantity the paper's
//! diffusion model is asked to produce.

use dcdiff_image::{ColorSpace, Image, Plane};
use dcdiff_jpeg::{ChromaSampling, CoeffImage};
use dcdiff_tensor::Tensor;

/// Convert an RGB image to a normalised `[1, 3, H, W]` tensor in
/// `[-1, 1]`.
pub fn image_to_tensor(image: &Image) -> Tensor {
    let rgb = image.to_rgb();
    let (w, h) = rgb.dims();
    let mut data = Vec::with_capacity(3 * w * h);
    for c in 0..3 {
        data.extend(rgb.plane(c).as_slice().iter().map(|&v| v / 127.5 - 1.0));
    }
    Tensor::from_vec(vec![1, 3, h, w], data)
}

/// Convert a `[1, 3, H, W]` tensor in `[-1, 1]` back to an RGB image
/// (clamped to `[0, 255]`).
///
/// # Panics
///
/// Panics unless the tensor is `[1, 3, H, W]`.
pub fn tensor_to_image(tensor: &Tensor) -> Image {
    let shape = tensor.shape();
    assert_eq!(shape.len(), 4, "expected NCHW");
    assert_eq!(shape[0], 1, "expected a single sample");
    assert_eq!(shape[1], 3, "expected 3 channels");
    let (h, w) = (shape[2], shape[3]);
    let data = tensor.to_vec();
    let planes: Vec<Plane> = (0..3)
        .map(|c| {
            let mut p = Plane::new(w, h);
            for y in 0..h {
                for x in 0..w {
                    p.set(x, y, ((data[(c * h + y) * w + x] + 1.0) * 127.5).clamp(0.0, 255.0));
                }
            }
            p
        })
        .collect();
    Image::from_planes(planes, ColorSpace::Rgb).expect("planes share dimensions")
}

/// Project a generated image onto the received coefficients: keep every
/// AC coefficient from `dropped` bit-exact and overwrite each block's DC
/// level with the (quantised) per-block mean of `generated`.
///
/// Corner anchors with known DC are left untouched. Returns the projected
/// coefficient image; call `.to_image()` for pixels.
///
/// # Panics
///
/// Panics if `generated` has different dimensions from the coded image.
pub fn project_dc(dropped: &CoeffImage, generated: &Image) -> CoeffImage {
    assert_eq!(
        (generated.width(), generated.height()),
        (dropped.width(), dropped.height()),
        "generated image must match coded dimensions"
    );
    let mut out = dropped.clone();
    let ycbcr = generated.to_ycbcr();
    let corners = |bx_max: usize, by_max: usize| {
        [(0, 0), (bx_max, 0), (0, by_max), (bx_max, by_max)]
    };
    for c in 0..dropped.channels() {
        // chroma planes are reduced resolution under 4:2:2 / 4:2:0
        let (plane, sub_x, sub_y) = match (c, dropped.sampling()) {
            (0, _) | (_, ChromaSampling::Cs444) => {
                (ycbcr.plane(c.min(ycbcr.channels() - 1)).clone(), 1usize, 1usize)
            }
            (_, ChromaSampling::Cs422) => (ycbcr.plane(c).clone(), 2, 1),
            (_, ChromaSampling::Cs420) => (ycbcr.plane(c).clone(), 2, 2),
        };
        let q0 = dropped.qtable(c).values()[0] as f32;
        let coeff = out.plane_mut(c);
        let (bx_max, by_max) = (coeff.blocks_x() - 1, coeff.blocks_y() - 1);
        let anchor_set = corners(bx_max, by_max);
        for by in 0..=by_max {
            for bx in 0..=bx_max {
                if anchor_set.contains(&(bx, by)) {
                    continue; // the transmitted anchor is authoritative
                }
                let mut sum = 0.0f32;
                let mut count = 0usize;
                for y in 0..8 {
                    for x in 0..8 {
                        let px = (bx * 8 + x) * sub_x;
                        let py = (by * 8 + y) * sub_y;
                        if px < plane.width() && py < plane.height() {
                            sum += plane.get(px, py) - 128.0;
                            count += 1;
                        }
                    }
                }
                if count > 0 {
                    let offset = sum / count as f32;
                    let level = (offset * 8.0 / q0).round() as i32;
                    coeff.set_dc(bx, by, level);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcdiff_jpeg::DcDropMode;

    fn test_image() -> Image {
        Image::from_planes(
            vec![
                Plane::from_fn(32, 32, |x, y| ((x * 6 + y * 2) % 256) as f32),
                Plane::from_fn(32, 32, |x, y| ((x + y * 5) % 256) as f32),
                Plane::from_fn(32, 32, |x, _| ((x * 3) % 256) as f32),
            ],
            ColorSpace::Rgb,
        )
        .unwrap()
    }

    #[test]
    fn tensor_round_trip() {
        let img = test_image();
        let t = image_to_tensor(&img);
        assert_eq!(t.shape(), &[1, 3, 32, 32]);
        let back = tensor_to_image(&t);
        assert!(img.mean_abs_diff(&back) < 0.01);
    }

    #[test]
    fn projecting_the_oracle_recovers_jpeg_quality() {
        // projecting the true (JPEG-decoded) image restores the DC levels
        // almost exactly
        let img = test_image();
        let coeffs = CoeffImage::from_image(&img, 50, ChromaSampling::Cs444);
        let reference = coeffs.to_image();
        let dropped = coeffs.drop_dc(DcDropMode::KeepCorners);
        let projected = project_dc(&dropped, &reference);
        for c in 0..3 {
            for by in 0..coeffs.plane(c).blocks_y() {
                for bx in 0..coeffs.plane(c).blocks_x() {
                    let got = projected.plane(c).dc(bx, by);
                    let want = coeffs.plane(c).dc(bx, by);
                    assert!(
                        (got - want).abs() <= 1,
                        "c{c} block {bx},{by}: {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn projection_preserves_ac_exactly() {
        let img = test_image();
        let coeffs = CoeffImage::from_image(&img, 50, ChromaSampling::Cs444);
        let dropped = coeffs.drop_dc(DcDropMode::KeepCorners);
        // project a completely wrong image: AC must still be untouched
        let wrong = Image::filled(32, 32, ColorSpace::Rgb, 0.0);
        let projected = project_dc(&dropped, &wrong);
        for c in 0..3 {
            for by in 0..coeffs.plane(c).blocks_y() {
                for bx in 0..coeffs.plane(c).blocks_x() {
                    assert_eq!(
                        projected.plane(c).block(bx, by)[1..],
                        dropped.plane(c).block(bx, by)[1..]
                    );
                }
            }
        }
    }

    #[test]
    fn anchors_survive_projection() {
        let img = test_image();
        let coeffs = CoeffImage::from_image(&img, 50, ChromaSampling::Cs444);
        let dropped = coeffs.drop_dc(DcDropMode::KeepCorners);
        let wrong = Image::filled(32, 32, ColorSpace::Rgb, 30.0);
        let projected = project_dc(&dropped, &wrong);
        assert_eq!(projected.plane(0).dc(0, 0), coeffs.plane(0).dc(0, 0));
    }
}
