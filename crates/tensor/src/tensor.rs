use std::cell::{Cell, Ref, RefCell};
use std::collections::HashSet;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};

use rand::Rng as _;
use rand_distr_normal::sample_standard_normal;

static NEXT_ID: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static GRAD_ENABLED: Cell<bool> = const { Cell::new(true) };
}

/// Run `f` with autograd tape construction disabled on this thread.
///
/// Inside the closure, ops whose parents would normally join the tape
/// produce constant nodes instead: no backward closure is recorded, and no
/// per-op saved state (most importantly im2col column matrices, which at
/// cohort batch sizes are tens of megabytes per convolution) is retained
/// for a backward pass. Every work buffer recycles through the kernel
/// scratch pool, so repeated inference forwards reuse a small, warm set of
/// allocations instead of mapping and unmapping fresh multi-megabyte
/// regions on every call.
///
/// The guard nests and restores the previous mode even if `f` panics.
/// Tensors created inside the closure are permanently constant; tensors
/// created outside keep their tape and differentiate normally afterwards.
pub fn no_grad<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            GRAD_ENABLED.with(|g| g.set(self.0));
        }
    }
    let _restore = Restore(GRAD_ENABLED.with(|g| g.replace(false)));
    f()
}

pub(crate) fn grad_enabled() -> bool {
    GRAD_ENABLED.with(Cell::get)
}

/// Backward closure: receives the node's output gradient and the node's
/// parent handles. Passing the parents in (rather than each closure
/// capturing its own clones) keeps one set of handles per tape node and
/// lets ops capture only the saved values their math needs.
pub(crate) type BackwardFn = Box<dyn Fn(&[f32], &[Tensor])>;

pub(crate) struct Inner {
    pub(crate) id: usize,
    pub(crate) shape: Vec<usize>,
    pub(crate) data: RefCell<Vec<f32>>,
    pub(crate) grad: RefCell<Option<Vec<f32>>>,
    pub(crate) requires_grad: bool,
    pub(crate) parents: Vec<Tensor>,
    pub(crate) backward: Option<BackwardFn>,
}

/// An NCHW `f32` tensor participating in a reverse-mode autograd tape.
///
/// `Tensor` is a cheap reference-counted handle: cloning shares storage and
/// the tape node. Construction methods that perform computation
/// ([`Tensor::add`], [`Tensor::conv2d`], …) record a backward closure so a
/// later [`Tensor::backward`] call propagates gradients to every
/// [`Tensor::param`] in the expression.
///
/// The type intentionally mirrors the small set of operations DCDiff's
/// networks need rather than a general framework.
#[derive(Clone)]
pub struct Tensor(pub(crate) Rc<Inner>);

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tensor")
            .field("id", &self.0.id)
            .field("shape", &self.0.shape)
            .field("requires_grad", &self.0.requires_grad)
            .finish()
    }
}

impl Tensor {
    pub(crate) fn make(
        shape: Vec<usize>,
        data: Vec<f32>,
        requires_grad: bool,
        parents: Vec<Tensor>,
        backward: Option<BackwardFn>,
    ) -> Tensor {
        debug_assert_eq!(shape.iter().product::<usize>(), data.len());
        Tensor(Rc::new(Inner {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            shape,
            data: RefCell::new(data),
            grad: RefCell::new(None),
            requires_grad,
            parents,
            backward,
        }))
    }

    /// Create a result node; it participates in the tape only when some
    /// parent requires gradients.
    pub(crate) fn from_op(
        shape: Vec<usize>,
        data: Vec<f32>,
        parents: Vec<Tensor>,
        backward: BackwardFn,
    ) -> Tensor {
        let needs = parents.iter().any(Tensor::tracks_grad);
        if needs {
            Tensor::make(shape, data, false, parents, Some(backward))
        } else {
            Tensor::make(shape, data, false, Vec::new(), None)
        }
    }

    /// Whether this node propagates gradients (a parameter or derived from
    /// one). Always false inside a [`no_grad`] scope, which is what keeps
    /// ops from saving backward state during inference.
    pub(crate) fn tracks_grad(&self) -> bool {
        (self.0.requires_grad || self.0.backward.is_some()) && grad_enabled()
    }

    /// A tensor of zeros with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape has zero elements.
    pub fn zeros(shape: Vec<usize>) -> Tensor {
        let n: usize = shape.iter().product();
        assert!(n > 0, "tensor shape must be nonempty");
        Tensor::make(shape, vec![0.0; n], false, Vec::new(), None)
    }

    /// A tensor filled with `value`.
    pub fn full(shape: Vec<usize>, value: f32) -> Tensor {
        let n: usize = shape.iter().product();
        assert!(n > 0, "tensor shape must be nonempty");
        Tensor::make(shape, vec![value; n], false, Vec::new(), None)
    }

    /// A constant (non-trainable) tensor from raw data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape product.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Tensor {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "data length must match shape"
        );
        Tensor::make(shape, data, false, Vec::new(), None)
    }

    /// A trainable parameter from raw data; gradients accumulate here.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape product.
    pub fn param(shape: Vec<usize>, data: Vec<f32>) -> Tensor {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "data length must match shape"
        );
        Tensor::make(shape, data, true, Vec::new(), None)
    }

    /// A constant tensor of standard-normal samples scaled by `std`.
    pub fn randn(shape: Vec<usize>, std: f32, rng: &mut crate::Rng) -> Tensor {
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| sample_standard_normal(rng) * std).collect();
        Tensor::make(shape, data, false, Vec::new(), None)
    }

    /// A trainable parameter of normal samples scaled by `std`.
    pub fn randn_param(shape: Vec<usize>, std: f32, rng: &mut crate::Rng) -> Tensor {
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| sample_standard_normal(rng) * std).collect();
        Tensor::make(shape, data, true, Vec::new(), None)
    }

    /// Tensor shape (outermost first; networks use `[N, C, H, W]`).
    pub fn shape(&self) -> &[usize] {
        &self.0.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.0.shape.iter().product()
    }

    /// Whether the tensor holds zero elements (never true).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stable identity of the tape node (used by optimizers).
    pub fn id(&self) -> usize {
        self.0.id
    }

    /// Whether this tensor is a trainable parameter.
    pub fn requires_grad(&self) -> bool {
        self.0.requires_grad
    }

    /// Borrow the underlying data.
    ///
    /// # Panics
    ///
    /// Panics if the data is mutably borrowed (only optimizer steps do so).
    pub fn data(&self) -> Ref<'_, Vec<f32>> {
        self.0.data.borrow()
    }

    /// Copy the underlying data out.
    pub fn to_vec(&self) -> Vec<f32> {
        self.0.data.borrow().clone()
    }

    /// Copy the accumulated gradient out (zeros when never touched).
    pub fn grad_vec(&self) -> Vec<f32> {
        self.0
            .grad
            .borrow()
            .clone()
            .unwrap_or_else(|| vec![0.0; self.len()])
    }

    /// Overwrite the tensor's contents in place (used by optimizers and EMA
    /// weight copies).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the element count.
    pub fn set_data(&self, data: &[f32]) {
        let mut d = self.0.data.borrow_mut();
        assert_eq!(d.len(), data.len(), "set_data length mismatch");
        d.copy_from_slice(data);
    }

    /// Apply `f` to the data in place.
    pub fn update_data(&self, f: impl FnMut(&mut f32)) {
        self.0.data.borrow_mut().iter_mut().for_each(f);
    }

    /// Clear the accumulated gradient.
    pub fn zero_grad(&self) {
        *self.0.grad.borrow_mut() = None;
    }

    /// Accumulate `g` into this node's gradient buffer.
    pub(crate) fn accumulate_grad(&self, g: &[f32]) {
        let mut slot = self.0.grad.borrow_mut();
        match slot.as_mut() {
            Some(buf) => {
                for (dst, &src) in buf.iter_mut().zip(g) {
                    *dst += src;
                }
            }
            None => *slot = Some(g.to_vec()),
        }
    }

    /// A constant copy detached from the tape (gradient flow stops here).
    pub fn detach(&self) -> Tensor {
        Tensor::make(self.0.shape.clone(), self.to_vec(), false, Vec::new(), None)
    }

    /// Run reverse-mode differentiation from this node.
    ///
    /// The node is seeded with gradient 1 everywhere (callers normally
    /// invoke this on scalar losses). Gradients accumulate into every
    /// parameter reachable through the tape; call [`Tensor::zero_grad`] (or
    /// an optimizer's `zero_grad`) between steps.
    pub fn backward(&self) {
        // Topological order via iterative DFS.
        let mut order: Vec<Tensor> = Vec::new();
        let mut visited: HashSet<usize> = HashSet::new();
        let mut stack: Vec<(Tensor, usize)> = vec![(self.clone(), 0)];
        visited.insert(self.0.id);
        while let Some((node, child_idx)) = stack.pop() {
            if child_idx < node.0.parents.len() {
                let parent = node.0.parents[child_idx].clone();
                stack.push((node, child_idx + 1));
                if parent.tracks_grad() && visited.insert(parent.0.id) {
                    stack.push((parent, 0));
                }
            } else {
                order.push(node);
            }
        }
        // Seed with ones.
        self.accumulate_grad(&vec![1.0; self.len()]);
        // Reverse topological order: children before parents.
        for node in order.iter().rev() {
            if let Some(backward) = &node.0.backward {
                let grad = node
                    .0
                    .grad
                    .borrow()
                    .clone()
                    .unwrap_or_else(|| vec![0.0; node.len()]);
                backward(&grad, &node.0.parents);
                // Free intermediate gradient buffers eagerly.
                if !node.0.requires_grad && node.0.id != self.0.id {
                    *node.0.grad.borrow_mut() = None;
                }
            }
        }
    }

    /// The single element of a scalar tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.len(), 1, "item() requires a scalar tensor");
        self.0.data.borrow()[0]
    }
}

/// Minimal Box–Muller standard-normal sampling, kept private to avoid an
/// extra dependency on `rand_distr`.
mod rand_distr_normal {
    use super::*;

    pub fn sample_standard_normal(rng: &mut crate::Rng) -> f32 {
        loop {
            let u1: f32 = rng.gen::<f32>();
            if u1 <= f32::MIN_POSITIVE {
                continue;
            }
            let u2: f32 = rng.gen::<f32>();
            let r = (-2.0 * u1.ln()).sqrt();
            return r * (2.0 * std::f32::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_shapes() {
        let t = Tensor::zeros(vec![2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.len(), 6);
        assert!(!t.requires_grad());
        let p = Tensor::param(vec![2], vec![1.0, 2.0]);
        assert!(p.requires_grad());
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn from_vec_validates_len() {
        Tensor::from_vec(vec![2, 2], vec![0.0; 3]);
    }

    #[test]
    fn backward_through_shared_subexpression() {
        // y = (x + x) * x = 2x^2, dy/dx = 4x
        let x = Tensor::param(vec![1], vec![3.0]);
        let y = x.add(&x).mul(&x);
        y.backward();
        assert_eq!(x.grad_vec(), vec![12.0]);
    }

    #[test]
    fn grad_accumulates_until_zeroed() {
        let x = Tensor::param(vec![1], vec![2.0]);
        let y = x.mul(&x);
        y.backward();
        assert_eq!(x.grad_vec(), vec![4.0]);
        let y2 = x.mul(&x);
        y2.backward();
        assert_eq!(x.grad_vec(), vec![8.0]);
        x.zero_grad();
        assert_eq!(x.grad_vec(), vec![0.0]);
    }

    #[test]
    fn detach_stops_gradient() {
        let x = Tensor::param(vec![1], vec![3.0]);
        let y = x.mul(&x).detach().mul(&x);
        y.backward();
        // only the outer multiplication contributes: dy/dx = detach(x^2) = 9
        assert_eq!(x.grad_vec(), vec![9.0]);
    }

    #[test]
    fn constants_do_not_build_tape() {
        let a = Tensor::from_vec(vec![2], vec![1.0, 2.0]);
        let b = Tensor::from_vec(vec![2], vec![3.0, 4.0]);
        let c = a.add(&b);
        assert!(!c.tracks_grad());
    }

    #[test]
    fn randn_is_deterministic_per_seed() {
        let mut r1 = crate::seeded_rng(5);
        let mut r2 = crate::seeded_rng(5);
        let a = Tensor::randn(vec![8], 1.0, &mut r1);
        let b = Tensor::randn(vec![8], 1.0, &mut r2);
        assert_eq!(a.to_vec(), b.to_vec());
    }

    #[test]
    fn normal_samples_have_sane_moments() {
        let mut rng = crate::seeded_rng(11);
        let t = Tensor::randn(vec![20_000], 1.0, &mut rng);
        let data = t.to_vec();
        let mean: f32 = data.iter().sum::<f32>() / data.len() as f32;
        let var: f32 =
            data.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / data.len() as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
