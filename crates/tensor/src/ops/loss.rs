use crate::Tensor;

impl Tensor {
    /// Mean-squared-error loss against `target` (a constant), returning a
    /// scalar.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn mse(&self, target: &Tensor) -> Tensor {
        self.sub(target).square().mean_all()
    }

    /// Mean absolute error (L1) loss against `target`, returning a scalar.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn l1(&self, target: &Tensor) -> Tensor {
        self.sub(target).abs().mean_all()
    }

    /// Weighted MSE: `mean(weight * (self - target)^2)`. The paper's masked
    /// Laplacian loss (Eq. 4) is built on this with a binary mask as
    /// `weight`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn masked_mse(&self, target: &Tensor, weight: &Tensor) -> Tensor {
        self.sub(target).square().mul(weight).mean_all()
    }

    /// Softmax cross-entropy over logits `[N, K]` with integer labels,
    /// returning the mean loss (used by the downstream classifier and the
    /// stage-1 discriminator).
    ///
    /// # Panics
    ///
    /// Panics unless `self` is `[N, K]` and `labels.len() == N` with every
    /// label `< K`.
    pub fn softmax_cross_entropy(&self, labels: &[usize]) -> Tensor {
        assert_eq!(self.shape().len(), 2, "logits must be [N, K]");
        let (n, k) = (self.shape()[0], self.shape()[1]);
        assert_eq!(labels.len(), n, "one label per sample");
        assert!(labels.iter().all(|&l| l < k), "label out of range");
        let x = self.to_vec();
        let mut probs = vec![0.0f32; n * k];
        let mut loss = 0.0f32;
        for i in 0..n {
            let row = &x[i * k..(i + 1) * k];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = row.iter().map(|&v| (v - max).exp()).collect();
            let sum: f32 = exps.iter().sum();
            for (j, &e) in exps.iter().enumerate() {
                probs[i * k + j] = e / sum;
            }
            loss -= (probs[i * k + labels[i]]).max(1e-12).ln();
        }
        loss /= n as f32;
        let labels = labels.to_vec();
        Tensor::from_op(
            vec![1],
            vec![loss],
            vec![self.clone()],
            Box::new(move |g, parents| {
                if parents[0].tracks_grad() {
                    let scale = g[0] / n as f32;
                    let mut gx = probs.clone();
                    for (i, &l) in labels.iter().enumerate() {
                        gx[i * k + l] -= 1.0;
                    }
                    for v in &mut gx {
                        *v *= scale;
                    }
                    parents[0].accumulate_grad(&gx);
                }
            }),
        )
    }

    /// Row-wise softmax probabilities of `[N, K]` logits (inference only —
    /// detached from the tape).
    ///
    /// # Panics
    ///
    /// Panics unless `self` is 2-D.
    pub fn softmax_rows(&self) -> Tensor {
        assert_eq!(self.shape().len(), 2, "softmax_rows expects [N, K]");
        let (n, k) = (self.shape()[0], self.shape()[1]);
        let x = self.to_vec();
        let mut out = vec![0.0f32; n * k];
        for i in 0..n {
            let row = &x[i * k..(i + 1) * k];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = row.iter().map(|&v| (v - max).exp()).collect();
            let sum: f32 = exps.iter().sum();
            for (j, &e) in exps.iter().enumerate() {
                out[i * k + j] = e / sum;
            }
        }
        Tensor::from_vec(vec![n, k], out)
    }
}

#[cfg(test)]
mod tests {
    use crate::Tensor;

    #[test]
    fn mse_of_identical_is_zero() {
        let a = Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]);
        assert_eq!(a.mse(&a).item(), 0.0);
        assert_eq!(a.l1(&a).item(), 0.0);
    }

    #[test]
    fn mse_gradient() {
        let x = Tensor::param(vec![2], vec![3.0, -1.0]);
        let t = Tensor::from_vec(vec![2], vec![1.0, 1.0]);
        x.mse(&t).backward();
        // d/dx mean((x-t)^2) = 2(x-t)/n
        assert_eq!(x.grad_vec(), vec![2.0, -2.0]);
    }

    #[test]
    fn masked_mse_ignores_masked_entries() {
        let x = Tensor::param(vec![2], vec![5.0, 7.0]);
        let t = Tensor::from_vec(vec![2], vec![0.0, 0.0]);
        let m = Tensor::from_vec(vec![2], vec![1.0, 0.0]);
        let loss = x.masked_mse(&t, &m);
        assert_eq!(loss.item(), 12.5); // 25/2
        loss.backward();
        assert_eq!(x.grad_vec(), vec![5.0, 0.0]);
    }

    #[test]
    fn cross_entropy_uniform_logits() {
        let logits = Tensor::from_vec(vec![1, 4], vec![0.0; 4]);
        let loss = logits.softmax_cross_entropy(&[2]);
        assert!((loss.item() - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_is_probs_minus_onehot() {
        let x = Tensor::param(vec![1, 3], vec![1.0, 0.0, -1.0]);
        x.softmax_cross_entropy(&[0]).backward();
        let g = x.grad_vec();
        let p = x.softmax_rows().to_vec();
        assert!((g[0] - (p[0] - 1.0)).abs() < 1e-5);
        assert!((g[1] - p[1]).abs() < 1e-5);
        assert!((g[2] - p[2]).abs() < 1e-5);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_vec(vec![2, 3], vec![5.0, 1.0, -2.0, 0.0, 0.0, 0.0]);
        let p = x.softmax_rows().to_vec();
        assert!((p[0..3].iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!((p[3..6].iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn cross_entropy_rejects_bad_label() {
        let x = Tensor::zeros(vec![1, 2]);
        let _ = x.softmax_cross_entropy(&[2]);
    }
}
