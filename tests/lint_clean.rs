//! Workspace self-check: the committed tree must satisfy every
//! `dcdiff-analysis` contract (panic-freedom in untrusted crates, audited
//! unsafe reconciled against `UNSAFE_LEDGER.md`, lock/condvar hygiene,
//! registered telemetry names). This is the same check CI gates on via
//! `dcdiff lint`; running it as a test keeps `cargo test` and the CI lint
//! step from drifting apart.

use std::path::Path;

use dcdiff_analysis::{analyze_workspace, Config, RULES};

fn workspace_root() -> &'static Path {
    // The root package's manifest dir IS the workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_is_lint_clean() {
    let report = analyze_workspace(workspace_root(), &Config::default_workspace())
        .expect("workspace walk succeeds");
    assert!(
        report.is_clean(),
        "workspace has lint violations:\n{}",
        report.render()
    );
    assert!(report.files > 0, "walker found no Rust files");
}

#[test]
fn every_rule_runs_clean_in_isolation() {
    // Exercises the --rule path: each rule individually must also be clean
    // (catches scoping mistakes where a rule only passes because another
    // rule's allow annotation shadows it).
    for rule in RULES {
        let mut cfg = Config::default_workspace();
        cfg.only = Some((*rule).to_string());
        let report = analyze_workspace(workspace_root(), &cfg)
            .unwrap_or_else(|e| panic!("rule {rule}: {e}"));
        assert!(
            report.is_clean(),
            "rule {rule} has violations:\n{}",
            report.render()
        );
    }
}

#[test]
fn committed_ledger_matches_generated() {
    // `--update-ledger` must be a no-op on a clean tree: if this fails, an
    // unsafe site changed without re-running the regeneration step.
    let root = workspace_root();
    let generated = dcdiff_analysis::generate_ledger(root, &Config::default_workspace())
        .expect("ledger generation succeeds");
    let committed = std::fs::read_to_string(root.join(dcdiff_analysis::LEDGER_FILE))
        .expect("UNSAFE_LEDGER.md is committed");
    assert_eq!(
        committed.trim(),
        generated.trim(),
        "UNSAFE_LEDGER.md is stale; run `dcdiff lint --update-ledger`"
    );
}
