//! Offline aggregation of a JSONL trace — the engine behind `dcdiff report`.
//!
//! Rebuilds spans from begin/end/complete events, checks the pairing is
//! well-formed, aggregates durations per span name (count, total, mean,
//! p50/p99/max via the shared log₂ [`Histogram`]), and measures how much of
//! the trace's wall time the root spans cover (merged-interval union, so
//! overlapping spans from parallel workers are not double-counted).

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt::Write as _;

use crate::metrics::Histogram;
use crate::trace::{EventKind, TraceEvent};

/// Aggregated statistics for one span name.
#[derive(Debug)]
pub struct SpanStats {
    /// Completed spans with this name.
    pub count: u64,
    /// Sum of durations in microseconds.
    pub total_us: u64,
    /// Duration histogram (for quantiles).
    pub histogram: Histogram,
    /// How many of these spans are roots (no parent).
    pub roots: u64,
}

/// A parsed, aggregated trace.
#[derive(Debug)]
pub struct TraceReport {
    /// Per-name statistics, sorted by name.
    pub spans: BTreeMap<String, SpanStats>,
    /// Completed span intervals of root spans: `(start_us, end_us)`.
    root_intervals: Vec<(u64, u64)>,
    /// Earliest event timestamp.
    pub first_us: u64,
    /// Latest event end timestamp.
    pub last_us: u64,
    /// Distinct thread indices seen.
    pub threads: usize,
    /// Spans left open at end of trace (e.g. an aborted run).
    pub unclosed: u64,
    /// Total events parsed.
    pub events: u64,
}

impl std::str::FromStr for TraceReport {
    type Err = String;

    /// Parse and aggregate a JSONL trace.
    ///
    /// # Errors
    ///
    /// Returns `line N: <reason>` for a malformed line, an end event whose
    /// id was never begun, or a duplicated span id.
    fn from_str(text: &str) -> Result<TraceReport, String> {
        let mut open: HashMap<u64, TraceEvent> = HashMap::new();
        let mut spans: BTreeMap<String, SpanStats> = BTreeMap::new();
        let mut root_intervals = Vec::new();
        let mut threads = std::collections::BTreeSet::new();
        let mut first_us = u64::MAX;
        let mut last_us = 0u64;
        let mut events = 0u64;

        let mut record =
            |spans: &mut BTreeMap<String, SpanStats>, name: &str, parent: u64, start: u64, dur: u64| {
                let stats = spans.entry(name.to_string()).or_insert_with(|| SpanStats {
                    count: 0,
                    total_us: 0,
                    histogram: Histogram::new(),
                    roots: 0,
                });
                stats.count += 1;
                stats.total_us += dur;
                stats.histogram.record(dur);
                if parent == 0 {
                    stats.roots += 1;
                    root_intervals.push((start, start + dur));
                }
            };

        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let ev = TraceEvent::parse_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            events += 1;
            first_us = first_us.min(ev.t_us);
            // An end event's `t_us` already is the span's end; begin and
            // complete events extend by their (possibly zero) duration.
            let end = match ev.kind {
                EventKind::End => ev.t_us,
                EventKind::Begin | EventKind::Complete => ev.t_us.saturating_add(ev.dur_us),
            };
            last_us = last_us.max(end);
            match ev.kind {
                EventKind::Begin => {
                    threads.insert(ev.thread);
                    if open.insert(ev.id, ev).is_some() {
                        return Err(format!("line {}: duplicate span id", i + 1));
                    }
                }
                EventKind::End => {
                    let begin = open.remove(&ev.id).ok_or_else(|| {
                        format!("line {}: end event for unknown span id {}", i + 1, ev.id)
                    })?;
                    let name = if ev.name.is_empty() { &begin.name } else { &ev.name };
                    record(&mut spans, name, begin.parent, begin.t_us, ev.dur_us);
                }
                EventKind::Complete => {
                    threads.insert(ev.thread);
                    record(&mut spans, &ev.name, ev.parent, ev.t_us, ev.dur_us);
                }
            }
        }
        if events == 0 {
            return Err("trace contains no events".to_string());
        }
        Ok(TraceReport {
            spans,
            root_intervals,
            first_us,
            last_us,
            threads: threads.len(),
            unclosed: open.len() as u64,
            events,
        })
    }
}

impl TraceReport {
    /// Trace wall time: first event to last event end, in microseconds.
    pub fn wall_us(&self) -> u64 {
        self.last_us.saturating_sub(self.first_us)
    }

    /// Microseconds of wall time covered by at least one root span
    /// (merged-interval union, immune to double counting by parallel
    /// workers).
    pub fn covered_us(&self) -> u64 {
        let mut intervals = self.root_intervals.clone();
        intervals.sort_unstable();
        let mut covered = 0u64;
        let mut current: Option<(u64, u64)> = None;
        for (start, end) in intervals {
            match &mut current {
                Some((_, cur_end)) if start <= *cur_end => *cur_end = (*cur_end).max(end),
                _ => {
                    if let Some((s, e)) = current.take() {
                        covered += e - s;
                    }
                    current = Some((start, end));
                }
            }
        }
        if let Some((s, e)) = current {
            covered += e - s;
        }
        covered
    }

    /// Fraction of the trace wall time covered by root spans, in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        let wall = self.wall_us();
        if wall == 0 {
            return 1.0;
        }
        self.covered_us() as f64 / wall as f64
    }

    /// Total completed spans.
    pub fn span_count(&self) -> u64 {
        self.spans.values().map(|s| s.count).sum()
    }

    /// Render the human-readable per-span breakdown and histogram table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace: {} events, {} spans, {} thread(s), wall {:.1} ms",
            self.events,
            self.span_count(),
            self.threads,
            self.wall_us() as f64 / 1e3,
        );
        let _ = writeln!(
            out,
            "root spans cover {:.1} ms ({:.1}% of wall)",
            self.covered_us() as f64 / 1e3,
            100.0 * self.coverage(),
        );
        if self.unclosed > 0 {
            let _ = writeln!(out, "warning: {} span(s) never closed", self.unclosed);
        }
        let _ = writeln!(
            out,
            "{:<24} {:>7} {:>10} {:>9} {:>9} {:>9} {:>9} {:>6}",
            "span", "count", "total ms", "mean ms", "p50 ms", "p99 ms", "max ms", "wall%"
        );
        // Largest total first: the breakdown reads as "where did time go".
        let mut names: Vec<&String> = self.spans.keys().collect();
        names.sort_by_key(|n| std::cmp::Reverse(self.spans[*n].total_us));
        let wall = self.wall_us().max(1);
        let mut unregistered = Vec::new();
        for name in names {
            let s = &self.spans[name];
            let snap = s.histogram.snapshot();
            let known = crate::names::is_registered(name);
            if !known {
                unregistered.push(name.clone());
            }
            let _ = writeln!(
                out,
                "{:<24} {:>7} {:>10.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>5.1}%{}",
                name,
                s.count,
                s.total_us as f64 / 1e3,
                snap.mean() / 1e3,
                snap.quantile(0.50).unwrap_or(0) as f64 / 1e3,
                snap.quantile(0.99).unwrap_or(0) as f64 / 1e3,
                snap.max as f64 / 1e3,
                100.0 * s.total_us as f64 / wall as f64,
                if known { "" } else { "  (?)" },
            );
        }
        if !unregistered.is_empty() {
            let _ = writeln!(
                out,
                "warning: {} span name(s) not in the telemetry registry \
                 (dcdiff_telemetry::names) — dashboards keyed on registered \
                 names will not see them: {}",
                unregistered.len(),
                unregistered.join(", "),
            );
        }
        out
    }

    /// Span names in this trace that are not in the telemetry name registry
    /// ([`crate::names`]) — producers emitting these have drifted from the
    /// registered namespaces dashboards key on.
    pub fn unregistered_names(&self) -> Vec<&str> {
        self.spans
            .keys()
            .map(String::as_str)
            .filter(|n| !crate::names::is_registered(n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use std::str::FromStr as _;

    use super::*;

    fn line(s: &str) -> String {
        s.to_string()
    }

    #[test]
    fn aggregates_nested_and_complete_spans() {
        let trace = [
            line(r#"{"ev":"B","id":1,"parent":0,"name":"batch.exec","thread":1,"t_us":0}"#),
            line(r#"{"ev":"B","id":2,"parent":1,"name":"job.recover","thread":1,"t_us":10}"#),
            line(r#"{"ev":"E","id":2,"name":"job.recover","t_us":60,"dur_us":50}"#),
            line(r#"{"ev":"E","id":1,"name":"batch.exec","t_us":100,"dur_us":100}"#),
            line(r#"{"ev":"X","id":3,"parent":0,"name":"queue.wait","thread":2,"t_us":100,"dur_us":40}"#),
        ]
        .join("\n");
        let report = TraceReport::from_str(&trace).unwrap();
        assert_eq!(report.span_count(), 3);
        assert_eq!(report.threads, 2);
        assert_eq!(report.unclosed, 0);
        assert_eq!(report.wall_us(), 140);
        // Roots: batch.exec [0,100] + queue.wait [100,140] -> full coverage.
        assert_eq!(report.covered_us(), 140);
        assert!((report.coverage() - 1.0).abs() < 1e-9);
        // job.recover is nested, so it is not part of root coverage.
        assert_eq!(report.spans["job.recover"].roots, 0);
        let rendered = report.render();
        assert!(rendered.contains("batch.exec"));
        assert!(rendered.contains("queue.wait"));
    }

    #[test]
    fn overlapping_roots_are_not_double_counted() {
        let trace = [
            line(r#"{"ev":"X","id":1,"parent":0,"name":"a","thread":1,"t_us":0,"dur_us":100}"#),
            line(r#"{"ev":"X","id":2,"parent":0,"name":"a","thread":2,"t_us":50,"dur_us":100}"#),
        ]
        .join("\n");
        let report = TraceReport::from_str(&trace).unwrap();
        assert_eq!(report.wall_us(), 150);
        assert_eq!(report.covered_us(), 150);
    }

    #[test]
    fn rejects_malformed_pairings() {
        let orphan_end = r#"{"ev":"E","id":7,"name":"x","t_us":5,"dur_us":5}"#;
        let err = TraceReport::from_str(orphan_end).unwrap_err();
        assert!(err.contains("unknown span id"), "{err}");
        assert!(TraceReport::from_str("").is_err());
        let dup = [
            r#"{"ev":"B","id":1,"parent":0,"name":"a","thread":1,"t_us":0}"#,
            r#"{"ev":"B","id":1,"parent":0,"name":"b","thread":1,"t_us":1}"#,
        ]
        .join("\n");
        assert!(TraceReport::from_str(&dup).unwrap_err().contains("duplicate"));
    }

    #[test]
    fn unclosed_spans_are_reported_not_fatal() {
        let trace = r#"{"ev":"B","id":1,"parent":0,"name":"a","thread":1,"t_us":0}"#;
        let report = TraceReport::from_str(trace).unwrap();
        assert_eq!(report.unclosed, 1);
        assert!(report.render().contains("never closed"));
    }
}
