//! JPEG (JFIF) full-range BT.601 colour conversion.
//!
//! These are the exact affine transforms used by baseline JPEG: luma and
//! chroma all span `0..=255`, with chroma centred at 128.

/// Convert one RGB pixel to full-range YCbCr.
///
/// Inputs are nominally in `[0, 255]`; outputs are clamped to that range.
///
/// # Example
///
/// ```
/// use dcdiff_image::rgb_to_ycbcr_pixel;
/// let (y, cb, cr) = rgb_to_ycbcr_pixel(255.0, 255.0, 255.0);
/// assert!((y - 255.0).abs() < 0.5);
/// assert!((cb - 128.0).abs() < 0.5);
/// assert!((cr - 128.0).abs() < 0.5);
/// ```
#[inline]
pub fn rgb_to_ycbcr_pixel(r: f32, g: f32, b: f32) -> (f32, f32, f32) {
    let y = 0.299 * r + 0.587 * g + 0.114 * b;
    let cb = -0.168_735_9 * r - 0.331_264_1 * g + 0.5 * b + 128.0;
    let cr = 0.5 * r - 0.418_687_6 * g - 0.081_312_4 * b + 128.0;
    (clamp255(y), clamp255(cb), clamp255(cr))
}

/// Convert one full-range YCbCr pixel back to RGB.
///
/// Outputs are clamped to `[0, 255]`.
///
/// # Example
///
/// ```
/// use dcdiff_image::{rgb_to_ycbcr_pixel, ycbcr_to_rgb_pixel};
/// let (y, cb, cr) = rgb_to_ycbcr_pixel(10.0, 200.0, 50.0);
/// let (r, g, b) = ycbcr_to_rgb_pixel(y, cb, cr);
/// assert!((r - 10.0).abs() < 1.0 && (g - 200.0).abs() < 1.0 && (b - 50.0).abs() < 1.0);
/// ```
#[inline]
pub fn ycbcr_to_rgb_pixel(y: f32, cb: f32, cr: f32) -> (f32, f32, f32) {
    let cb = cb - 128.0;
    let cr = cr - 128.0;
    let r = y + 1.402 * cr;
    let g = y - 0.344_136_3 * cb - 0.714_136_3 * cr;
    let b = y + 1.772 * cb;
    (clamp255(r), clamp255(g), clamp255(b))
}

#[inline]
fn clamp255(v: f32) -> f32 {
    v.clamp(0.0, 255.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primaries_map_to_standard_luma() {
        let (y, _, _) = rgb_to_ycbcr_pixel(255.0, 0.0, 0.0);
        assert!((y - 76.245).abs() < 0.1);
        let (y, _, _) = rgb_to_ycbcr_pixel(0.0, 255.0, 0.0);
        assert!((y - 149.685).abs() < 0.1);
        let (y, _, _) = rgb_to_ycbcr_pixel(0.0, 0.0, 255.0);
        assert!((y - 29.07).abs() < 0.1);
    }

    #[test]
    fn black_and_white_are_neutral() {
        assert_eq!(rgb_to_ycbcr_pixel(0.0, 0.0, 0.0), (0.0, 128.0, 128.0));
        let (y, cb, cr) = rgb_to_ycbcr_pixel(255.0, 255.0, 255.0);
        assert!((y - 255.0).abs() < 1e-3);
        assert!((cb - 128.0).abs() < 1e-3);
        assert!((cr - 128.0).abs() < 1e-3);
    }

    #[test]
    fn round_trip_all_grid() {
        for r in (0..=255).step_by(51) {
            for g in (0..=255).step_by(51) {
                for b in (0..=255).step_by(51) {
                    let (y, cb, cr) = rgb_to_ycbcr_pixel(r as f32, g as f32, b as f32);
                    let (r2, g2, b2) = ycbcr_to_rgb_pixel(y, cb, cr);
                    assert!((r as f32 - r2).abs() < 1.0, "r {r} {g} {b}");
                    assert!((g as f32 - g2).abs() < 1.0, "g {r} {g} {b}");
                    assert!((b as f32 - b2).abs() < 1.0, "b {r} {g} {b}");
                }
            }
        }
    }
}
