//! Named-tensor checkpoint format.
//!
//! Checkpoints are a flat list of `(name, shape, f32 data)` records in a
//! tiny little-endian binary container (magic `DCWT`). Modules register
//! their parameters under hierarchical names (`unet.down0.conv1.weight`);
//! loading restores data into existing tensors by name.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::path::Path;

use crate::Tensor;

const MAGIC: &[u8; 4] = b"DCWT";
const VERSION: u32 = 1;

/// Error produced by checkpoint (de)serialisation.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a valid checkpoint.
    Format(String),
    /// A tensor in the file does not match the destination tensor.
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "i/o error: {e}"),
            CheckpointError::Format(msg) => write!(f, "invalid checkpoint: {msg}"),
            CheckpointError::Mismatch(msg) => write!(f, "checkpoint mismatch: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// An in-memory checkpoint: an ordered map from parameter name to
/// `(shape, data)`.
///
/// # Example
///
/// ```
/// use dcdiff_tensor::{serial::Checkpoint, Tensor};
///
/// let w = Tensor::param(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
/// let mut ckpt = Checkpoint::new();
/// ckpt.insert("layer.weight", &w);
/// let bytes = ckpt.to_bytes();
/// let restored = Checkpoint::from_bytes(&bytes)?;
/// let w2 = Tensor::param(vec![2, 2], vec![0.0; 4]);
/// restored.load_into("layer.weight", &w2)?;
/// assert_eq!(w.to_vec(), w2.to_vec());
/// # Ok::<(), dcdiff_tensor::serial::CheckpointError>(())
/// ```
#[derive(Debug, Default, Clone)]
pub struct Checkpoint {
    entries: BTreeMap<String, (Vec<usize>, Vec<f32>)>,
}

impl Checkpoint {
    /// An empty checkpoint.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored tensors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the checkpoint holds no tensors.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Record a tensor's current data under `name` (overwrites).
    pub fn insert(&mut self, name: &str, tensor: &Tensor) {
        self.entries
            .insert(name.to_string(), (tensor.shape().to_vec(), tensor.to_vec()));
    }

    /// Names of stored tensors in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Copy the stored tensor `name` into `dst`.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Mismatch`] when the name is missing or
    /// shapes differ.
    pub fn load_into(&self, name: &str, dst: &Tensor) -> Result<(), CheckpointError> {
        let (shape, data) = self
            .entries
            .get(name)
            .ok_or_else(|| CheckpointError::Mismatch(format!("missing tensor {name}")))?;
        if shape != dst.shape() {
            return Err(CheckpointError::Mismatch(format!(
                "tensor {name}: file shape {shape:?} vs destination {:?}",
                dst.shape()
            )));
        }
        dst.set_data(data);
        Ok(())
    }

    /// Serialise to the binary container format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for (name, (shape, data)) in &self.entries {
            let nb = name.as_bytes();
            out.extend_from_slice(&(nb.len() as u32).to_le_bytes());
            out.extend_from_slice(nb);
            out.extend_from_slice(&(shape.len() as u32).to_le_bytes());
            for &d in shape {
                out.extend_from_slice(&(d as u64).to_le_bytes());
            }
            out.extend_from_slice(&(data.len() as u64).to_le_bytes());
            for &v in data {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    /// Parse the binary container format.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Format`] on any structural problem.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut cur = std::io::Cursor::new(bytes);
        let mut magic = [0u8; 4];
        cur.read_exact(&mut magic)
            .map_err(|_| CheckpointError::Format("truncated magic".into()))?;
        if &magic != MAGIC {
            return Err(CheckpointError::Format("bad magic".into()));
        }
        let version = read_u32(&mut cur)?;
        if version != VERSION {
            return Err(CheckpointError::Format(format!(
                "unsupported version {version}"
            )));
        }
        let count = read_u32(&mut cur)? as usize;
        let mut entries = BTreeMap::new();
        for _ in 0..count {
            let name_len = read_u32(&mut cur)? as usize;
            let mut name_buf = vec![0u8; name_len];
            cur.read_exact(&mut name_buf)
                .map_err(|_| CheckpointError::Format("truncated name".into()))?;
            let name = String::from_utf8(name_buf)
                .map_err(|_| CheckpointError::Format("name not utf-8".into()))?;
            let rank = read_u32(&mut cur)? as usize;
            if rank > 8 {
                return Err(CheckpointError::Format(format!("rank {rank} too large")));
            }
            let mut shape = Vec::with_capacity(rank);
            for _ in 0..rank {
                shape.push(read_u64(&mut cur)? as usize);
            }
            let len = read_u64(&mut cur)? as usize;
            if shape.iter().product::<usize>() != len {
                return Err(CheckpointError::Format(format!(
                    "tensor {name}: shape {shape:?} does not match length {len}"
                )));
            }
            let mut data = vec![0.0f32; len];
            let mut buf = [0u8; 4];
            for v in &mut data {
                cur.read_exact(&mut buf)
                    .map_err(|_| CheckpointError::Format("truncated data".into()))?;
                *v = f32::from_le_bytes(buf);
            }
            entries.insert(name, (shape, data));
        }
        Ok(Self { entries })
    }

    /// Write the checkpoint to a file.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] on filesystem failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(&self.to_bytes())?;
        Ok(())
    }

    /// Read a checkpoint from a file.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] or [`CheckpointError::Format`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
    }
}

fn read_u32(cur: &mut std::io::Cursor<&[u8]>) -> Result<u32, CheckpointError> {
    let mut buf = [0u8; 4];
    cur.read_exact(&mut buf)
        .map_err(|_| CheckpointError::Format("truncated u32".into()))?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64(cur: &mut std::io::Cursor<&[u8]>) -> Result<u64, CheckpointError> {
    let mut buf = [0u8; 8];
    cur.read_exact(&mut buf)
        .map_err(|_| CheckpointError::Format("truncated u64".into()))?;
    Ok(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_multiple_tensors() {
        let a = Tensor::param(vec![2, 3], (0..6).map(|v| v as f32).collect());
        let b = Tensor::param(vec![4], vec![9.0, 8.0, 7.0, 6.0]);
        let mut ckpt = Checkpoint::new();
        ckpt.insert("a", &a);
        ckpt.insert("b.weight", &b);
        let restored = Checkpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        assert_eq!(restored.len(), 2);
        let a2 = Tensor::param(vec![2, 3], vec![0.0; 6]);
        restored.load_into("a", &a2).unwrap();
        assert_eq!(a.to_vec(), a2.to_vec());
    }

    #[test]
    fn shape_mismatch_rejected_on_load() {
        let a = Tensor::param(vec![2, 2], vec![0.0; 4]);
        let mut ckpt = Checkpoint::new();
        ckpt.insert("a", &a);
        let wrong = Tensor::param(vec![4], vec![0.0; 4]);
        let err = ckpt.load_into("a", &wrong).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)));
    }

    #[test]
    fn missing_name_rejected() {
        let ckpt = Checkpoint::new();
        let t = Tensor::param(vec![1], vec![0.0]);
        assert!(matches!(
            ckpt.load_into("nope", &t),
            Err(CheckpointError::Mismatch(_))
        ));
    }

    #[test]
    fn corrupt_bytes_rejected() {
        assert!(Checkpoint::from_bytes(b"XXXX").is_err());
        assert!(Checkpoint::from_bytes(b"DCWT\x02\x00\x00\x00").is_err());
        let t = Tensor::param(vec![1], vec![1.0]);
        let mut ckpt = Checkpoint::new();
        ckpt.insert("t", &t);
        let mut bytes = ckpt.to_bytes();
        bytes.truncate(bytes.len() - 2);
        assert!(Checkpoint::from_bytes(&bytes).is_err());
    }

    #[test]
    fn file_round_trip() {
        let t = Tensor::param(vec![3], vec![1.5, -2.5, 0.0]);
        let mut ckpt = Checkpoint::new();
        ckpt.insert("t", &t);
        let mut path = std::env::temp_dir();
        path.push(format!("dcdiff-ckpt-test-{}", std::process::id()));
        ckpt.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let t2 = Tensor::param(vec![3], vec![0.0; 3]);
        loaded.load_into("t", &t2).unwrap();
        assert_eq!(t.to_vec(), t2.to_vec());
    }
}
