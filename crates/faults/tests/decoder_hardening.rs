//! The decoder contract over the fault corpus: untrusted bytes never
//! panic, and every failure is a typed, correctly-classified error.
//!
//! `JpegErrorKind::Internal` marks a caught panic or invariant breach
//! inside the codec, so these tests also assert it never appears — the
//! parser must reject corruption *by construction*, not by unwinding.

use dcdiff_faults::{corpus, marker_boundaries, reference_stream, truncations, FaultClass};
use dcdiff_jpeg::{JpegDecoder, JpegErrorKind};
use proptest::prelude::*;

fn streams() -> Vec<Vec<u8>> {
    vec![
        reference_stream(48, 32, 50).unwrap(),
        reference_stream(37, 21, 75).unwrap(), // odd dims
        reference_stream(16, 16, 10).unwrap(), // coarse quantisers
    ]
}

#[test]
fn every_marker_boundary_truncation_is_a_typed_error() {
    for bytes in streams() {
        assert!(!marker_boundaries(&bytes).is_empty());
        for cut in truncations(&bytes) {
            let err = JpegDecoder::decode(&cut)
                .expect_err("a truncated stream can never decode");
            assert_ne!(
                err.kind(),
                JpegErrorKind::Internal,
                "truncation at {} bytes hit a codec bug: {err}",
                cut.len()
            );
        }
    }
}

#[test]
fn header_truncations_classify_as_truncated() {
    // Cuts that end cleanly at a marker boundary before the scan are the
    // canonical transient case: more bytes would have fixed them.
    let bytes = reference_stream(48, 32, 50).unwrap();
    let sos = bytes.windows(2).position(|w| w == [0xFF, 0xDA]).unwrap();
    for b in marker_boundaries(&bytes) {
        if b == 0 || b > sos {
            continue; // empty prefix has no marker; post-SOS cuts differ
        }
        let err = JpegDecoder::decode(&bytes[..b]).unwrap_err();
        assert_eq!(
            err.kind(),
            JpegErrorKind::Truncated,
            "cut at header boundary {b}: {err}"
        );
        assert!(err.is_transient());
    }
}

#[test]
fn thousand_seeded_mutations_never_panic_or_hit_internal() {
    let mut total = 0usize;
    let mut failures_by_class = std::collections::HashMap::new();
    for (i, bytes) in streams().into_iter().enumerate() {
        for case in corpus(&bytes, 0xDC0F + i as u64 * 1_000, 400) {
            total += 1;
            // Ok is legitimate for e.g. a bit flip in an AC magnitude;
            // what is never legitimate is a panic or an Internal error.
            if let Err(err) = JpegDecoder::decode(&case.bytes) {
                assert_ne!(
                    err.kind(),
                    JpegErrorKind::Internal,
                    "seed {} ({}) exposed a codec bug: {err}",
                    case.seed,
                    case.class
                );
                *failures_by_class.entry(case.class).or_insert(0usize) += 1;
            }
        }
    }
    assert!(total >= 1000, "corpus too small: {total}");
    // The corpus must actually bite: each randomised family has to
    // produce decode failures, otherwise the harness tests nothing.
    for class in [
        FaultClass::BitFlip,
        FaultClass::ScanTruncation,
        FaultClass::LengthCorruption,
    ] {
        assert!(
            failures_by_class.get(&class).copied().unwrap_or(0) > 0,
            "{class} mutations never failed a decode"
        );
    }
}

#[test]
fn scan_truncations_classify_as_truncated() {
    let bytes = reference_stream(48, 32, 50).unwrap();
    for case in corpus(&bytes, 0x7413, 90) {
        if case.class != FaultClass::ScanTruncation {
            continue;
        }
        let err = JpegDecoder::decode(&case.bytes)
            .expect_err("cut scans cannot decode completely");
        assert_eq!(err.kind(), JpegErrorKind::Truncated, "seed {}", case.seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_cut_points_never_panic(keep_frac in 0.0f64..1.0) {
        let bytes = reference_stream(32, 24, 50).unwrap();
        let keep = (bytes.len() as f64 * keep_frac) as usize;
        if let Err(err) = JpegDecoder::decode(&bytes[..keep]) {
            prop_assert_ne!(err.kind(), JpegErrorKind::Internal, "{}", err);
        }
    }

    #[test]
    fn random_double_bit_flips_never_panic(
        a_frac in 0.0f64..1.0,
        b_frac in 0.0f64..1.0,
        bits in any::<u8>(),
    ) {
        let bytes = reference_stream(32, 24, 50).unwrap();
        let a = ((bytes.len() - 1) as f64 * a_frac) as usize;
        let b = ((bytes.len() - 1) as f64 * b_frac) as usize;
        let mut mutated = bytes;
        mutated[a] ^= 1 << (bits % 8);
        mutated[b] ^= 1 << ((bits >> 4) % 8);
        if let Err(err) = JpegDecoder::decode(&mutated) {
            prop_assert_ne!(err.kind(), JpegErrorKind::Internal, "{}", err);
        }
    }

    #[test]
    fn adversarial_dimension_headers_never_allocate_unbounded(
        w in any::<u16>(), h in any::<u16>()
    ) {
        // Rewrite the SOF dimensions to arbitrary values: the decoder must
        // reject oversized frames instead of allocating for them.
        let bytes = reference_stream(16, 16, 50).unwrap();
        let sof = bytes.windows(2).position(|win| win == [0xFF, 0xC0]).unwrap();
        let mut mutated = bytes;
        mutated[sof + 5..sof + 7].copy_from_slice(&h.to_be_bytes());
        mutated[sof + 7..sof + 9].copy_from_slice(&w.to_be_bytes());
        if let Err(err) = JpegDecoder::decode(&mutated) {
            prop_assert_ne!(err.kind(), JpegErrorKind::Internal, "{}", err);
        }
    }
}
