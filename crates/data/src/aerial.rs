//! Labelled aerial scenes for the downstream classification task
//! (Table V).
//!
//! The paper measures how much each DC-recovery method degrades a
//! remote-sensing classifier. This module provides a four-class synthetic
//! aerial dataset with visually distinct classes so a small CNN reaches
//! high clean accuracy, making recovery-induced drops measurable.

use dcdiff_image::{ColorSpace, Image, Plane};
use rand::Rng;
use rand::SeedableRng;

use crate::scenes::value_noise;

type StdRng = rand::rngs::StdRng;

/// Land-use class of an aerial tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AerialClass {
    /// Dense residential: fine road grid and many small roofs.
    Residential,
    /// Forest / fields: smooth green texture, no structures.
    Forest,
    /// Water body: very smooth, dark blue with gentle waves.
    Water,
    /// Industrial: few large bright rectangular halls.
    Industrial,
}

impl AerialClass {
    /// All classes in label order (label = index).
    pub const ALL: [AerialClass; 4] = [
        AerialClass::Residential,
        AerialClass::Forest,
        AerialClass::Water,
        AerialClass::Industrial,
    ];

    /// Integer label of the class.
    pub fn label(self) -> usize {
        Self::ALL.iter().position(|&c| c == self).expect("class listed")
    }
}

impl std::fmt::Display for AerialClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            AerialClass::Residential => "residential",
            AerialClass::Forest => "forest",
            AerialClass::Water => "water",
            AerialClass::Industrial => "industrial",
        };
        f.write_str(name)
    }
}

/// A labelled synthetic aerial dataset.
///
/// # Example
///
/// ```
/// use dcdiff_data::AerialDataset;
///
/// let ds = AerialDataset::new(48, 8);
/// let samples = ds.generate(0);
/// assert_eq!(samples.len(), 32); // 8 per class × 4 classes
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AerialDataset {
    size: usize,
    per_class: usize,
}

impl AerialDataset {
    /// Create a dataset of square `size × size` tiles, `per_class` samples
    /// each.
    ///
    /// # Panics
    ///
    /// Panics if `size` or `per_class` is zero.
    pub fn new(size: usize, per_class: usize) -> Self {
        assert!(size > 0 && per_class > 0, "dataset must be nonempty");
        Self { size, per_class }
    }

    /// Tile side length in pixels.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Samples per class.
    pub fn per_class(&self) -> usize {
        self.per_class
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        AerialClass::ALL.len()
    }

    /// Generate `(image, label)` pairs, `per_class` for each class,
    /// deterministically from `base_seed`.
    pub fn generate(&self, base_seed: u64) -> Vec<(Image, usize)> {
        let mut out = Vec::with_capacity(self.per_class * self.num_classes());
        for (ci, &class) in AerialClass::ALL.iter().enumerate() {
            for i in 0..self.per_class {
                let seed = base_seed
                    .wrapping_add((ci * self.per_class + i) as u64)
                    .wrapping_mul(0x9E3779B97F4A7C15);
                out.push((self.tile(class, seed), class.label()));
            }
        }
        out
    }

    /// Generate a single tile of `class`.
    pub fn tile(&self, class: AerialClass, seed: u64) -> Image {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = self.size;
        let mut planes: [Plane; 3] = match class {
            AerialClass::Forest => {
                let n = value_noise(s, s, 4, &mut rng);
                std::array::from_fn(|c| {
                    let (base, amp) = match c {
                        0 => (40.0, 50.0),
                        1 => (90.0, 70.0),
                        _ => (35.0, 40.0),
                    };
                    Plane::from_fn(s, s, |x, y| base + amp * n.get(x, y))
                })
            }
            AerialClass::Water => {
                // dark blue-green, close enough to forest that chroma
                // drift in a recovery method can flip the decision
                let waves = value_noise(s, s, 2, &mut rng);
                std::array::from_fn(|c| {
                    let (base, amp) = match c {
                        0 => (30.0, 10.0),
                        1 => (70.0, 14.0),
                        _ => (95.0, 18.0),
                    };
                    Plane::from_fn(s, s, |x, y| base + amp * waves.get(x, y))
                })
            }
            AerialClass::Residential => {
                let n = value_noise(s, s, 3, &mut rng);
                let mut planes: [Plane; 3] = std::array::from_fn(|c| {
                    let tint = [95.0, 105.0, 85.0][c];
                    Plane::from_fn(s, s, |x, y| tint * (0.7 + n.get(x, y) * 0.5))
                });
                // fine road grid
                let spacing = rng.gen_range(8..14usize);
                let off = rng.gen_range(0..spacing);
                for y in 0..s {
                    for x in 0..s {
                        if (x + off) % spacing < 2 || (y + off) % spacing < 2 {
                            for p in planes.iter_mut() {
                                p.set(x, y, 70.0);
                            }
                        }
                    }
                }
                // many small roofs
                for _ in 0..rng.gen_range(10..18) {
                    let rw = rng.gen_range(3..6);
                    let rh = rng.gen_range(3..6);
                    let x0 = rng.gen_range(0..s.saturating_sub(rw).max(1));
                    let y0 = rng.gen_range(0..s.saturating_sub(rh).max(1));
                    let shade = 150.0 + rng.gen::<f32>() * 90.0;
                    for y in y0..(y0 + rh).min(s) {
                        for x in x0..(x0 + rw).min(s) {
                            planes[0].set(x, y, shade);
                            planes[1].set(x, y, shade * 0.75);
                            planes[2].set(x, y, shade * 0.65);
                        }
                    }
                }
                planes
            }
            AerialClass::Industrial => {
                let n = value_noise(s, s, 2, &mut rng);
                let mut planes: [Plane; 3] = std::array::from_fn(|_| {
                    Plane::from_fn(s, s, |x, y| 110.0 + 30.0 * n.get(x, y))
                });
                // a few large bright halls; roofs carry a gradient and
                // corrugation texture as real industrial roofs do (a
                // perfectly flat grid-aligned hall would be a pure-DC
                // step, which no natural image contains)
                for _ in 0..rng.gen_range(2..4) {
                    let rw = rng.gen_range(s / 3..(2 * s / 3).max(s / 3 + 1));
                    let rh = rng.gen_range(s / 4..(s / 2).max(s / 4 + 1));
                    let x0 = rng.gen_range(0..s.saturating_sub(rw).max(1));
                    let y0 = rng.gen_range(0..s.saturating_sub(rh).max(1));
                    let shade = 185.0 + rng.gen::<f32>() * 55.0;
                    let slope = (rng.gen::<f32>() - 0.5) * 1.2;
                    let ridge = rng.gen_range(3..6usize);
                    for y in y0..(y0 + rh).min(s) {
                        for x in x0..(x0 + rw).min(s) {
                            let corrugation = if (x - x0) % ridge == 0 { -9.0 } else { 0.0 };
                            let v = shade + slope * (x - x0) as f32 + corrugation;
                            for p in planes.iter_mut() {
                                p.set(x, y, v);
                            }
                        }
                    }
                }
                planes
            }
        };
        for p in &mut planes {
            for v in p.as_mut_slice() {
                *v += (rng.gen::<f32>() - 0.5) * 4.0;
            }
            p.clamp_in_place(0.0, 255.0);
        }
        Image::from_planes(planes.to_vec(), ColorSpace::Rgb).expect("planes share dimensions")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_is_balanced_and_labelled() {
        let ds = AerialDataset::new(32, 5);
        let samples = ds.generate(0);
        assert_eq!(samples.len(), 20);
        for label in 0..4 {
            assert_eq!(samples.iter().filter(|(_, l)| *l == label).count(), 5);
        }
    }

    #[test]
    fn tiles_are_deterministic() {
        let ds = AerialDataset::new(32, 1);
        let a = ds.tile(AerialClass::Water, 42);
        let b = ds.tile(AerialClass::Water, 42);
        assert_eq!(a.plane(2).as_slice(), b.plane(2).as_slice());
    }

    #[test]
    fn classes_are_visually_distinct() {
        // per-class mean colours must separate (what the classifier learns)
        let ds = AerialDataset::new(32, 3);
        let mean_of = |class: AerialClass| -> [f32; 3] {
            let mut m = [0.0f32; 3];
            for i in 0..3u64 {
                let img = ds.tile(class, i);
                for (c, v) in m.iter_mut().enumerate() {
                    *v += img.plane(c).mean() / 3.0;
                }
            }
            m
        };
        let water = mean_of(AerialClass::Water);
        let forest = mean_of(AerialClass::Forest);
        let industrial = mean_of(AerialClass::Industrial);
        assert!(water[2] > water[1], "water is blue-ish");
        assert!(forest[1] > forest[0], "forest is green-ish");
        assert!(
            industrial.iter().sum::<f32>() > water.iter().sum::<f32>(),
            "industrial is brighter than water"
        );
    }

    #[test]
    fn water_is_smoother_than_residential() {
        let ds = AerialDataset::new(48, 1);
        let water = ds.tile(AerialClass::Water, 7).to_gray();
        let resi = ds.tile(AerialClass::Residential, 7).to_gray();
        assert!(water.plane(0).variance() < resi.plane(0).variance());
    }

    #[test]
    fn labels_match_class_order() {
        for (i, c) in AerialClass::ALL.iter().enumerate() {
            assert_eq!(c.label(), i);
        }
    }
}
