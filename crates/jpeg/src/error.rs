use std::error::Error;
use std::fmt;

/// Error type for JPEG encoding and decoding.
#[derive(Debug)]
pub enum JpegError {
    /// The image cannot be encoded (e.g. unsupported channel count).
    UnsupportedImage(String),
    /// The byte stream is not a decodable baseline JPEG.
    InvalidStream(String),
    /// The entropy-coded data ended unexpectedly.
    TruncatedScan,
}

impl fmt::Display for JpegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JpegError::UnsupportedImage(msg) => write!(f, "unsupported image: {msg}"),
            JpegError::InvalidStream(msg) => write!(f, "invalid jpeg stream: {msg}"),
            JpegError::TruncatedScan => write!(f, "entropy-coded scan ended unexpectedly"),
        }
    }
}

impl Error for JpegError {}
