//! A bounded MPMC queue built on `Mutex` + `Condvar`.
//!
//! This is the runtime's backpressure point: producers choose between
//! blocking ([`BoundedQueue::push_blocking`]) and fail-fast
//! ([`BoundedQueue::try_push`]) submission, consumers block in
//! [`BoundedQueue::pop`] until an item arrives or the queue is closed and
//! drained. Closing distinguishes *drain* (consumers finish what is queued)
//! from *abort* ([`BoundedQueue::close_and_take`] hands the remainder back to
//! the caller for rejection).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push did not enqueue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue was at capacity (fail-fast push only).
    Full,
    /// The queue was closed; no further items are accepted.
    Closed,
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::Full => write!(f, "queue full"),
            PushError::Closed => write!(f, "queue closed"),
        }
    }
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    /// Highest queue depth ever observed (for the stats block).
    high_water: usize,
}

/// Bounded multi-producer multi-consumer FIFO.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Queue holding at most `capacity` items (at least 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
                high_water: 0,
            }),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Maximum depth.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.lock().items.is_empty()
    }

    /// Highest depth observed since construction.
    pub fn high_water(&self) -> usize {
        self.lock().high_water
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        // Worker panics while holding the lock are bugs; poisoning would only
        // cascade them, so recover the guard.
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Fail-fast push: enqueue or return [`PushError::Full`] immediately.
    ///
    /// # Errors
    ///
    /// [`PushError::Closed`] after [`BoundedQueue::close`]; [`PushError::Full`]
    /// at capacity.
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        inner.items.push_back(item);
        inner.high_water = inner.high_water.max(inner.items.len());
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking push: wait while the queue is full.
    ///
    /// # Errors
    ///
    /// [`PushError::Closed`] if the queue is (or becomes, while waiting)
    /// closed.
    pub fn push_blocking(&self, item: T) -> Result<(), PushError> {
        let mut inner = self.lock();
        loop {
            if inner.closed {
                return Err(PushError::Closed);
            }
            if inner.items.len() < self.capacity {
                inner.items.push_back(item);
                inner.high_water = inner.high_water.max(inner.items.len());
                drop(inner);
                self.not_empty.notify_one();
                return Ok(());
            }
            inner = self
                .not_full
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Blocking pop: the next item, or `None` once the queue is closed *and*
    /// empty (drain semantics — queued items are still delivered after
    /// close).
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Non-blocking: remove and return up to `max` queued items for which
    /// `matches` is true, preserving FIFO order among them. Used by workers
    /// to gather a micro-batch behind an item they already popped.
    pub fn take_matching<F: FnMut(&T) -> bool>(&self, max: usize, mut matches: F) -> Vec<T> {
        let mut inner = self.lock();
        let mut taken = Vec::new();
        let mut i = 0;
        while i < inner.items.len() && taken.len() < max {
            if matches(&inner.items[i]) {
                // remove(i) preserves relative order of the rest; the loop
                // condition keeps i in bounds, so None cannot happen.
                if let Some(item) = inner.items.remove(i) {
                    taken.push(item);
                }
            } else {
                i += 1;
            }
        }
        if !taken.is_empty() {
            drop(inner);
            self.not_full.notify_all();
        }
        taken
    }

    /// Close for new pushes; queued items remain poppable (drain mode).
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Close for new pushes and hand back everything still queued (abort
    /// mode). Consumers observe an empty, closed queue and exit.
    pub fn close_and_take(&self) -> Vec<T> {
        let mut inner = self.lock();
        inner.closed = true;
        let remainder = inner.items.drain(..).collect();
        drop(inner);
        self.not_empty.notify_all();
        self.not_full.notify_all();
        remainder
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fail_fast_push_reports_full_then_closed() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Err(PushError::Full));
        assert_eq!(q.len(), 2);
        q.close();
        assert_eq!(q.try_push(4), Err(PushError::Closed));
        // Drain semantics: the two accepted items are still delivered.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocking_push_waits_for_space() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push_blocking(10).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push_blocking(20))
        };
        // Give the producer time to block on the full queue.
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(q.len(), 1, "producer must be blocked, not enqueued");
        assert_eq!(q.pop(), Some(10));
        assert_eq!(producer.join().unwrap(), Ok(()));
        assert_eq!(q.pop(), Some(20));
    }

    #[test]
    fn blocking_push_unblocks_on_close() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push_blocking(1).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push_blocking(2))
        };
        std::thread::sleep(Duration::from_millis(30));
        q.close();
        assert_eq!(producer.join().unwrap(), Err(PushError::Closed));
    }

    #[test]
    fn pop_blocks_until_item_arrives() {
        let q = Arc::new(BoundedQueue::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(Duration::from_millis(30));
        q.try_push(42).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(42));
    }

    #[test]
    fn abort_close_hands_back_remainder() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        let remainder = q.close_and_take();
        assert_eq!(remainder, vec![0, 1, 2, 3, 4]);
        assert_eq!(q.pop(), None);
        assert_eq!(q.try_push(9), Err(PushError::Closed));
    }

    #[test]
    fn take_matching_preserves_order_and_skips_nonmatching() {
        let q = BoundedQueue::new(8);
        for i in 0..6 {
            q.try_push(i).unwrap();
        }
        let even = q.take_matching(2, |v| v % 2 == 0);
        assert_eq!(even, vec![0, 2]);
        // Remaining order intact: 1, 3, 4, 5.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(4));
        assert_eq!(q.pop(), Some(5));
    }

    #[test]
    fn high_water_tracks_peak_depth() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        for _ in 0..3 {
            q.pop();
        }
        q.try_push(9).unwrap();
        assert_eq!(q.high_water(), 5);
    }

    #[test]
    fn mpmc_delivers_every_item_exactly_once() {
        let q = Arc::new(BoundedQueue::new(4));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..2)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        q.push_blocking(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expected: Vec<i32> = (0..50).chain(1000..1050).collect();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }
}
