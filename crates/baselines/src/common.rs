//! Shared machinery for the statistical recovery methods.
//!
//! Every method reasons in the *level-shifted pixel domain*: a block's
//! pixels are `ac_pixels + offset`, where `ac_pixels` is the IDCT of the
//! block with DC forced to zero (mean-free) and `offset` is the uniform
//! contribution of the DC level, `offset = dc_level * q0 / 8`.

use dcdiff_jpeg::dct::idct;
use dcdiff_jpeg::{CoeffPlane, BLOCK, BLOCK_AREA};
use dcdiff_jpeg::quant::QuantTable;

/// AC-only spatial decomposition of one coefficient plane.
#[derive(Debug, Clone)]
pub(crate) struct AcField {
    pub blocks_x: usize,
    pub blocks_y: usize,
    /// Level-shifted, mean-free pixels per block (row-major blocks).
    pub pixels: Vec<[f32; BLOCK_AREA]>,
    /// Pixel offset contributed by one DC level unit (`q0 / 8`).
    pub dc_step: f32,
    /// Known DC offsets (in pixels) at anchor blocks, `None` elsewhere.
    pub anchors: Vec<Option<f32>>,
}

impl AcField {
    /// Decompose `plane`. The four corner blocks are always treated as
    /// known anchors: under [`dcdiff_jpeg::DcDropMode::KeepCorners`] their
    /// DC levels were transmitted, and a transmitted value of zero is
    /// just as binding as any other (neutral-chroma planes rely on it).
    pub fn new(plane: &CoeffPlane, qtable: &QuantTable) -> Self {
        let (bx, by) = (plane.blocks_x(), plane.blocks_y());
        let dc_step = qtable.values()[0] as f32 / 8.0;
        let mut pixels = Vec::with_capacity(bx * by);
        let mut anchors = vec![None; bx * by];
        let corners = [(0, 0), (bx - 1, 0), (0, by - 1), (bx - 1, by - 1)];
        for y in 0..by {
            for x in 0..bx {
                let mut levels = *plane.block(x, y);
                let dc = levels[0];
                levels[0] = 0;
                let coeffs = qtable.dequantize(&levels);
                pixels.push(idct(&coeffs));
                if corners.contains(&(x, y)) {
                    anchors[y * bx + x] = Some(dc as f32 * dc_step);
                }
                // (kept unconditional: zero is a valid transmitted DC)
            }
        }
        Self {
            blocks_x: bx,
            blocks_y: by,
            pixels,
            dc_step,
            anchors,
        }
    }

    /// Index of block `(bx, by)`.
    #[inline]
    pub fn idx(&self, bx: usize, by: usize) -> usize {
        by * self.blocks_x + bx
    }

    /// Column `x` of block `b` as 8 pixels.
    pub fn column(&self, b: usize, x: usize) -> [f32; BLOCK] {
        std::array::from_fn(|y| self.pixels[b][y * BLOCK + x])
    }

    /// Row `y` of block `b` as 8 pixels.
    pub fn row(&self, b: usize, y: usize) -> [f32; BLOCK] {
        std::array::from_fn(|x| self.pixels[b][y * BLOCK + x])
    }

    /// Clamp a pixel offset to the representable range and convert to a DC
    /// level.
    pub fn offset_to_level(&self, offset: f32) -> i32 {
        let max_offset = 160.0; // generous headroom beyond ±128
        let clamped = offset.clamp(-max_offset, max_offset);
        (clamped / self.dc_step).round() as i32
    }

    /// Write estimated pixel offsets back into a coefficient plane as DC
    /// levels.
    pub fn apply_offsets(&self, offsets: &[f32], plane: &mut CoeffPlane) {
        assert_eq!(offsets.len(), self.pixels.len(), "one offset per block");
        for by in 0..self.blocks_y {
            for bx in 0..self.blocks_x {
                let level = self.offset_to_level(offsets[self.idx(bx, by)]);
                plane.set_dc(bx, by, level);
            }
        }
    }
}

/// Median of a non-empty slice (averaging the middle pair for even
/// lengths).
pub(crate) fn median(values: &mut [f32]) -> f32 {
    assert!(!values.is_empty(), "median of empty slice");
    values.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in pixel data"));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        0.5 * (values[n / 2 - 1] + values[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcdiff_image::{Image, Plane};
    use dcdiff_jpeg::{ChromaSampling, CoeffImage, DcDropMode};

    fn field_for(img: &Image) -> (CoeffImage, AcField) {
        let coeffs = CoeffImage::from_image(img, 50, ChromaSampling::Cs444);
        let dropped = coeffs.drop_dc(DcDropMode::KeepCorners);
        let f = AcField::new(dropped.plane(0), dropped.qtable(0));
        (coeffs, f)
    }

    #[test]
    fn ac_pixels_are_mean_free() {
        let img = Image::from_gray(Plane::from_fn(32, 32, |x, y| ((x * 9 + y * 5) % 256) as f32));
        let (_, f) = field_for(&img);
        for (i, block) in f.pixels.iter().enumerate() {
            let mean: f32 = block.iter().sum::<f32>() / 64.0;
            assert!(mean.abs() < 1e-3, "block {i} mean {mean}");
        }
    }

    #[test]
    fn anchors_are_the_corners() {
        let img = Image::from_gray(Plane::from_fn(48, 32, |x, y| ((x + y) * 3 % 256) as f32));
        let (_, f) = field_for(&img);
        let known: Vec<usize> = f
            .anchors
            .iter()
            .enumerate()
            .filter_map(|(i, a)| a.map(|_| i))
            .collect();
        assert_eq!(known.len(), 4);
        assert!(known.contains(&0));
        assert!(known.contains(&(f.blocks_x - 1)));
        assert!(known.contains(&(f.blocks_x * (f.blocks_y - 1))));
        assert!(known.contains(&(f.blocks_x * f.blocks_y - 1)));
    }

    #[test]
    fn anchor_offset_matches_true_block_mean() {
        // For a constant block the offset equals (value - 128), up to
        // quantisation of the DC level.
        let img = Image::from_gray(Plane::filled(16, 16, 200.0));
        let coeffs = CoeffImage::from_image(&img, 50, ChromaSampling::Cs444);
        let dropped = coeffs.drop_dc(DcDropMode::KeepCorners);
        let f = AcField::new(dropped.plane(0), dropped.qtable(0));
        let anchor = f.anchors[0].expect("corner is anchored");
        assert!((anchor - 72.0).abs() <= f.dc_step / 2.0 + 1e-3);
    }

    #[test]
    fn offset_level_round_trip() {
        let img = Image::from_gray(Plane::filled(16, 16, 100.0));
        let (_, f) = field_for(&img);
        for level in [-50i32, -3, 0, 7, 40] {
            let offset = level as f32 * f.dc_step;
            assert_eq!(f.offset_to_level(offset), level);
        }
    }

    #[test]
    fn median_basics() {
        assert_eq!(median(&mut [3.0]), 3.0);
        assert_eq!(median(&mut [1.0, 9.0, 4.0]), 4.0);
        assert_eq!(median(&mut [1.0, 2.0, 3.0, 10.0]), 2.5);
    }
}
