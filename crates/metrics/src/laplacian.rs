//! Diagnostics for the Laplacian property of adjacent-pixel differences.
//!
//! Every statistical DC-recovery method rests on the observation (Uehara
//! et al., 2006) that the difference between neighbouring pixels of a
//! natural image follows a zero-mean Laplacian distribution with a small
//! scale. Figure 4 of the paper shows that *masking out high-frequency
//! regions* makes this distribution dramatically tighter. The functions
//! here measure that: difference histograms, Laplacian maximum-likelihood
//! scale fits, and the masked variants used by the Fig. 4 reproduction.

use dcdiff_image::{Image, Plane};

/// A histogram of adjacent-pixel differences over `[-range, +range]`.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffHistogram {
    /// Bin counts; bin `i` covers difference `i - range`.
    pub counts: Vec<u64>,
    /// Half-width of the histogram support.
    pub range: usize,
    /// Total samples, including those clamped into the edge bins.
    pub total: u64,
}

impl DiffHistogram {
    /// Probability mass of each bin.
    pub fn probabilities(&self) -> Vec<f64> {
        let t = self.total.max(1) as f64;
        self.counts.iter().map(|&c| c as f64 / t).collect()
    }

    /// Fraction of differences with `|d| <= tol`.
    pub fn mass_within(&self, tol: usize) -> f64 {
        let centre = self.range;
        let lo = centre.saturating_sub(tol);
        let hi = (centre + tol).min(self.counts.len() - 1);
        let inside: u64 = self.counts[lo..=hi].iter().sum();
        inside as f64 / self.total.max(1) as f64
    }
}

/// Iterate horizontal and vertical adjacent-pixel differences of `plane`,
/// restricted to positions where both pixels are unmasked (mask > 0.5).
/// A `None` mask selects every pixel pair.
fn for_each_diff(plane: &Plane, mask: Option<&Plane>, mut f: impl FnMut(f32)) {
    let (w, h) = plane.dims();
    let selected = |x: usize, y: usize| -> bool {
        mask.map(|m| m.get(x, y) > 0.5).unwrap_or(true)
    };
    for y in 0..h {
        for x in 1..w {
            if selected(x, y) && selected(x - 1, y) {
                f(plane.get(x, y) - plane.get(x - 1, y));
            }
        }
    }
    for y in 1..h {
        for x in 0..w {
            if selected(x, y) && selected(x, y - 1) {
                f(plane.get(x, y) - plane.get(x, y - 1));
            }
        }
    }
}

/// Histogram of adjacent-pixel differences of the luma plane.
///
/// `mask` (optional, same size) restricts the statistics to unmasked
/// pixels — pass the DCDiff high-frequency mask to reproduce the
/// "w/ mask" curve of Fig. 4.
///
/// # Panics
///
/// Panics if the mask size differs from the image or `range == 0`.
pub fn diff_histogram(image: &Image, mask: Option<&Plane>, range: usize) -> DiffHistogram {
    assert!(range > 0, "histogram range must be positive");
    let luma = image.to_gray().into_planes().remove(0);
    if let Some(m) = mask {
        assert_eq!(m.dims(), luma.dims(), "mask size mismatch");
    }
    let mut counts = vec![0u64; 2 * range + 1];
    let mut total = 0u64;
    for_each_diff(&luma, mask, |d| {
        let bin = (d.round() as i64 + range as i64).clamp(0, 2 * range as i64) as usize;
        counts[bin] += 1;
        total += 1;
    });
    DiffHistogram {
        counts,
        range,
        total,
    }
}

/// Maximum-likelihood Laplacian scale `b = mean(|d|)` of adjacent-pixel
/// differences (optionally masked). Smaller scale means the Laplacian
/// prior predicts neighbours better.
///
/// Returns 0 when no pixel pair is selected.
pub fn laplacian_scale(image: &Image, mask: Option<&Plane>) -> f32 {
    let luma = image.to_gray().into_planes().remove(0);
    if let Some(m) = mask {
        assert_eq!(m.dims(), luma.dims(), "mask size mismatch");
    }
    let mut sum = 0.0f64;
    let mut count = 0u64;
    for_each_diff(&luma, mask, |d| {
        sum += d.abs() as f64;
        count += 1;
    });
    if count == 0 {
        0.0
    } else {
        (sum / count as f64) as f32
    }
}

/// Kolmogorov–Smirnov-style distance between the empirical difference
/// distribution and the fitted Laplacian (a goodness-of-fit diagnostic
/// used by the dataset-validation tests).
pub fn laplacian_fit_distance(image: &Image) -> f32 {
    let hist = diff_histogram(image, None, 64);
    let b = laplacian_scale(image, None).max(1e-3);
    let probs = hist.probabilities();
    // CDF comparison on bin centres
    let mut emp_cdf = 0.0f64;
    let mut max_gap = 0.0f64;
    for (i, &p) in probs.iter().enumerate() {
        emp_cdf += p;
        let x = i as f64 - hist.range as f64 + 0.5;
        let model_cdf = if x < 0.0 {
            0.5 * (x / b as f64).exp()
        } else {
            1.0 - 0.5 * (-x / b as f64).exp()
        };
        max_gap = max_gap.max((emp_cdf - model_cdf).abs());
    }
    max_gap as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcdiff_image::{ColorSpace, Image};

    #[test]
    fn constant_image_has_zero_scale() {
        let img = Image::filled(16, 16, ColorSpace::Gray, 77.0);
        assert_eq!(laplacian_scale(&img, None), 0.0);
        let h = diff_histogram(&img, None, 8);
        assert_eq!(h.mass_within(0), 1.0);
    }

    #[test]
    fn smooth_gradient_has_small_scale() {
        let img = Image::from_gray(Plane::from_fn(32, 32, |x, y| (x + y) as f32));
        let s = laplacian_scale(&img, None);
        assert!((s - 1.0).abs() < 0.01, "gradient scale {s}");
    }

    #[test]
    fn edges_increase_the_scale() {
        let smooth = Image::from_gray(Plane::from_fn(32, 32, |x, _| x as f32));
        let edgy = Image::from_gray(Plane::from_fn(32, 32, |x, _| {
            if x % 8 < 4 {
                0.0
            } else {
                200.0
            }
        }));
        assert!(laplacian_scale(&edgy, None) > laplacian_scale(&smooth, None) * 5.0);
    }

    #[test]
    fn masking_high_frequency_regions_tightens_distribution() {
        // left half smooth, right half alternating stripes
        let img = Image::from_gray(Plane::from_fn(32, 32, |x, y| {
            if x < 16 {
                (x + y) as f32
            } else if (x + y) % 2 == 0 {
                0.0
            } else {
                255.0
            }
        }));
        let mask = Plane::from_fn(32, 32, |x, _| if x < 16 { 1.0 } else { 0.0 });
        let full = laplacian_scale(&img, None);
        let masked = laplacian_scale(&img, Some(&mask));
        assert!(
            masked < full / 4.0,
            "mask should shrink scale: {masked} vs {full}"
        );
    }

    #[test]
    fn histogram_total_counts_every_pair() {
        let img = Image::filled(4, 3, ColorSpace::Gray, 1.0);
        let h = diff_histogram(&img, None, 4);
        // horizontal pairs: 3*3, vertical: 4*2
        assert_eq!(h.total, 9 + 8);
    }

    #[test]
    fn histogram_is_symmetric_for_symmetric_pattern() {
        let img = Image::from_gray(Plane::from_fn(33, 1, |x, _| {
            if x % 2 == 0 {
                100.0
            } else {
                104.0
            }
        }));
        let h = diff_histogram(&img, None, 8);
        assert_eq!(h.counts[8 + 4], h.counts[8 - 4]);
    }

    #[test]
    fn laplacian_fit_is_good_for_laplacian_like_data() {
        // build an image whose differences are roughly two-sided geometric
        let mut v = 128.0f32;
        let img = Image::from_gray(Plane::from_fn(256, 16, |x, y| {
            let step = match (x * 7 + y * 13) % 8 {
                0 => 3.0,
                1 => -3.0,
                2 | 3 => 1.0,
                4 | 5 => -1.0,
                _ => 0.0,
            };
            v = (v + step).clamp(0.0, 255.0);
            v
        }));
        let d = laplacian_fit_distance(&img);
        assert!(d < 0.35, "fit distance {d}");
    }
}
