use dcdiff_image::{Image, Plane};

const K1: f32 = 0.01;
const K2: f32 = 0.03;
const PEAK: f32 = 255.0;
/// Standard 5-scale MS-SSIM weights (Wang et al. 2003).
const MS_WEIGHTS: [f32; 5] = [0.0448, 0.2856, 0.3001, 0.2363, 0.1333];

/// 11-tap Gaussian window with sigma 1.5 (the SSIM reference window).
fn gaussian_window() -> [f32; 11] {
    let sigma = 1.5f32;
    let mut w = [0.0f32; 11];
    let mut sum = 0.0;
    for (i, v) in w.iter_mut().enumerate() {
        let d = i as f32 - 5.0;
        *v = (-d * d / (2.0 * sigma * sigma)).exp();
        sum += *v;
    }
    for v in &mut w {
        *v /= sum;
    }
    w
}

/// Separable Gaussian blur with replicate padding.
fn blur(plane: &Plane) -> Plane {
    let w = gaussian_window();
    let (pw, ph) = plane.dims();
    // horizontal pass
    let mut tmp = Plane::new(pw, ph);
    for y in 0..ph {
        for x in 0..pw {
            let mut acc = 0.0;
            for (k, &wk) in w.iter().enumerate() {
                acc += wk * plane.get_clamped(x as isize + k as isize - 5, y as isize);
            }
            tmp.set(x, y, acc);
        }
    }
    let mut out = Plane::new(pw, ph);
    for y in 0..ph {
        for x in 0..pw {
            let mut acc = 0.0;
            for (k, &wk) in w.iter().enumerate() {
                acc += wk * tmp.get_clamped(x as isize, y as isize + k as isize - 5);
            }
            out.set(x, y, acc);
        }
    }
    out
}

fn mul_planes(a: &Plane, b: &Plane) -> Plane {
    let (w, h) = a.dims();
    Plane::from_fn(w, h, |x, y| a.get(x, y) * b.get(x, y))
}

/// Per-pixel SSIM statistics: returns `(mean luminance-contrast-structure,
/// mean contrast-structure)` — the latter feeds MS-SSIM's coarse scales.
fn ssim_maps(a: &Plane, b: &Plane) -> (f32, f32) {
    let c1 = (K1 * PEAK) * (K1 * PEAK);
    let c2 = (K2 * PEAK) * (K2 * PEAK);
    let mu_a = blur(a);
    let mu_b = blur(b);
    let sigma_aa = blur(&mul_planes(a, a));
    let sigma_bb = blur(&mul_planes(b, b));
    let sigma_ab = blur(&mul_planes(a, b));
    let (w, h) = a.dims();
    let mut ssim_sum = 0.0f64;
    let mut cs_sum = 0.0f64;
    for y in 0..h {
        for x in 0..w {
            let ma = mu_a.get(x, y);
            let mb = mu_b.get(x, y);
            let saa = (sigma_aa.get(x, y) - ma * ma).max(0.0);
            let sbb = (sigma_bb.get(x, y) - mb * mb).max(0.0);
            let sab = sigma_ab.get(x, y) - ma * mb;
            let cs = (2.0 * sab + c2) / (saa + sbb + c2);
            let lum = (2.0 * ma * mb + c1) / (ma * ma + mb * mb + c1);
            ssim_sum += (lum * cs) as f64;
            cs_sum += cs as f64;
        }
    }
    let n = (w * h) as f64;
    ((ssim_sum / n) as f32, (cs_sum / n) as f32)
}

fn to_luma(image: &Image) -> Plane {
    image.to_gray().into_planes().remove(0)
}

fn downsample(plane: &Plane) -> Plane {
    let w2 = (plane.width() / 2).max(1);
    let h2 = (plane.height() / 2).max(1);
    Plane::from_fn(w2, h2, |x, y| {
        let x0 = (2 * x) as isize;
        let y0 = (2 * y) as isize;
        (plane.get_clamped(x0, y0)
            + plane.get_clamped(x0 + 1, y0)
            + plane.get_clamped(x0, y0 + 1)
            + plane.get_clamped(x0 + 1, y0 + 1))
            / 4.0
    })
}

/// Structural similarity index on luma (Gaussian 11×11 window).
///
/// Returns a value in `[-1, 1]`; 1 means identical structure.
///
/// # Panics
///
/// Panics if the images have different dimensions.
///
/// # Example
///
/// ```
/// use dcdiff_image::{ColorSpace, Image};
/// use dcdiff_metrics::ssim;
///
/// let a = Image::filled(32, 32, ColorSpace::Gray, 90.0);
/// assert!((ssim(&a, &a) - 1.0).abs() < 1e-6);
/// ```
pub fn ssim(a: &Image, b: &Image) -> f32 {
    assert_eq!(a.dims(), b.dims(), "image size mismatch");
    let (s, _) = ssim_maps(&to_luma(a), &to_luma(b));
    s
}

/// Multi-scale SSIM on luma with the standard five-scale weights.
///
/// For images too small for five dyadic scales the scale count shrinks and
/// the weights are renormalised, so any image of at least 16×16 samples is
/// accepted.
///
/// # Panics
///
/// Panics if the images have different dimensions or are smaller than
/// 16×16.
pub fn ms_ssim(a: &Image, b: &Image) -> f32 {
    assert_eq!(a.dims(), b.dims(), "image size mismatch");
    let (w, h) = a.dims();
    assert!(w >= 16 && h >= 16, "ms-ssim needs at least 16x16 images");
    // choose the largest scale count (<= 5) that keeps the coarsest scale
    // at >= 8 samples per side
    let mut scales = 1usize;
    let mut size = w.min(h);
    while scales < 5 && size / 2 >= 8 {
        scales += 1;
        size /= 2;
    }
    let weight_sum: f32 = MS_WEIGHTS[..scales].iter().sum();

    let mut pa = to_luma(a);
    let mut pb = to_luma(b);
    let mut result = 1.0f32;
    for (s, &weight) in MS_WEIGHTS[..scales].iter().enumerate() {
        let (ssim_full, cs) = ssim_maps(&pa, &pb);
        let wgt = weight / weight_sum;
        if s + 1 == scales {
            // the final (coarsest) scale uses the full SSIM
            result *= sign_pow(ssim_full, wgt);
        } else {
            result *= sign_pow(cs, wgt);
            pa = downsample(&pa);
            pb = downsample(&pb);
        }
    }
    result
}

/// `|v|^p * sign(v)` — keeps MS-SSIM defined for (rare) negative factors.
fn sign_pow(v: f32, p: f32) -> f32 {
    v.abs().powf(p).copysign(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcdiff_image::{ColorSpace, Image};

    fn textured(w: usize, h: usize, phase: f32) -> Image {
        Image::from_gray(Plane::from_fn(w, h, |x, y| {
            128.0 + 60.0 * ((x as f32 * 0.4 + phase).sin() + (y as f32 * 0.3).cos()) / 2.0
        }))
    }

    #[test]
    fn identical_images_score_one() {
        let a = textured(32, 32, 0.0);
        assert!((ssim(&a, &a) - 1.0).abs() < 1e-5);
        assert!((ms_ssim(&a, &a) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn ssim_penalises_structure_loss_more_than_offset() {
        let a = textured(48, 48, 0.0);
        // constant luminance shift preserves structure
        let shifted = Image::from_gray(a.plane(0).map(|v| (v + 12.0).min(255.0)));
        // blurring destroys structure
        let blurred = Image::from_gray(super::blur(&super::blur(&super::blur(a.plane(0)))));
        let s_shift = ssim(&a, &shifted);
        let s_blur = ssim(&a, &blurred);
        assert!(
            s_shift > s_blur,
            "shift {s_shift} should beat blur {s_blur}"
        );
    }

    #[test]
    fn ssim_is_symmetric() {
        let a = textured(32, 32, 0.0);
        let b = textured(32, 32, 1.2);
        assert!((ssim(&a, &b) - ssim(&b, &a)).abs() < 1e-5);
    }

    #[test]
    fn ms_ssim_orders_degradations() {
        let a = textured(64, 64, 0.0);
        let slight = Image::from_gray(a.plane(0).map(|v| v + 3.0));
        let heavy = Image::from_gray(super::blur(&super::blur(a.plane(0))));
        assert!(ms_ssim(&a, &slight) > ms_ssim(&a, &heavy));
    }

    #[test]
    fn ms_ssim_small_image_uses_fewer_scales() {
        let a = textured(16, 16, 0.0);
        let b = textured(16, 16, 0.4);
        let v = ms_ssim(&a, &b);
        assert!((-1.0..=1.0).contains(&v));
    }

    #[test]
    #[should_panic(expected = "at least 16x16")]
    fn ms_ssim_rejects_tiny_images() {
        let a = Image::filled(8, 8, ColorSpace::Gray, 0.0);
        ms_ssim(&a, &a);
    }

    #[test]
    fn rgb_images_compare_on_luma() {
        let mut a = Image::filled(32, 32, ColorSpace::Rgb, 128.0);
        // structured pattern on all channels
        for c in 0..3 {
            let p = Plane::from_fn(32, 32, |x, y| 100.0 + ((x * 7 + y * 5) % 64) as f32);
            *a.plane_mut(c) = p;
        }
        assert!((ssim(&a, &a) - 1.0).abs() < 1e-5);
    }
}
