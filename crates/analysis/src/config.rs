//! Rule catalogue and per-rule scoping.
//!
//! Every rule has a *scope*: the set of workspace-relative paths it applies
//! to. Contracts differ per layer — panic-freedom is a hard requirement in
//! the crates that parse untrusted bytes (`jpeg`), inject faults
//! (`faults`), or execute jobs (`runtime`), but a deliberate non-goal in
//! test fixtures and the CLI, where `assert!` on programmer error is
//! idiomatic. Scoping is data, not code, so the default workspace policy
//! is a single function a reader can audit in one screen.

/// All rule identifiers, in the order diagnostics are reported.
pub const RULES: &[&str] = &[
    "no-panic",
    "no-unchecked-index",
    "unsafe-audit",
    "unsafe-ledger",
    "lock-hygiene",
    "condvar-wait-loop",
    "telemetry-names",
    "panic-reachability",
    "lock-order-cycle",
    "hot-path-alloc",
    "bad-allow",
];

/// The interprocedural rules: they run over the whole workspace call
/// graph, never per file, so `--changed` does not narrow them.
pub const INTERPROC_RULES: &[&str] =
    &["panic-reachability", "lock-order-cycle", "hot-path-alloc"];

/// Is `rule` a known rule id?
pub fn is_rule(rule: &str) -> bool {
    RULES.contains(&rule)
}

/// Path scope for one rule.
#[derive(Debug, Clone, Default)]
pub struct Scope {
    /// Path prefixes the rule applies to; empty means the whole workspace.
    pub include: Vec<String>,
    /// Substrings that exempt a path (checked after `include`).
    pub exclude: Vec<String>,
}

impl Scope {
    /// Does the rule apply to workspace-relative `path` (forward slashes)?
    pub fn applies(&self, path: &str) -> bool {
        let included =
            self.include.is_empty() || self.include.iter().any(|p| path.starts_with(p.as_str()));
        included && !self.exclude.iter().any(|p| path.contains(p.as_str()))
    }
}

/// A lint configuration: which rules run, and where.
#[derive(Debug, Clone)]
pub struct Config {
    /// When set, only this rule runs (`dcdiff lint --rule <id>`).
    pub only: Option<String>,
    /// When set (`dcdiff lint --changed`), file-local rules run only on
    /// these workspace-relative paths; the interprocedural rules still
    /// see the whole workspace, and unused-allow detection is skipped
    /// (it needs a full run to know an allow suppressed nothing).
    pub changed: Option<Vec<String>>,
    /// Request-path entry points for `panic-reachability` and `--why`,
    /// matched as `::`-boundary symbol suffixes. Defaults to
    /// [`crate::interproc::DEFAULT_ENTRIES`].
    pub entries: Vec<String>,
    /// Count `assert!`-family macros as panic sites for
    /// `panic-reachability`. Off by default: asserts encode
    /// programmer-error contracts, not input-driven availability hazards.
    pub include_asserts: bool,
    /// Per-rule scopes, parallel to [`RULES`].
    scopes: Vec<(&'static str, Scope)>,
}

impl Config {
    /// The workspace policy this repository commits to.
    ///
    /// * `no-panic` — the untrusted-input and job-execution crates must
    ///   not contain reachable panics: `crates/jpeg` (bytes off the wire),
    ///   `crates/faults` library (runs inside recovery paths),
    ///   `crates/runtime` (must survive any job), and `crates/serve` (a
    ///   long-lived server parsing untrusted network bytes). The faults
    ///   *fixture binary* is a dev tool and exempt.
    /// * `no-unchecked-index` — the entropy-decode hot path is driven
    ///   directly by untrusted bits, so plain `x[i]` indexing is banned in
    ///   `bitstream.rs` and `huffman.rs` specifically.
    /// * `unsafe-audit` / `unsafe-ledger` — workspace-wide except the
    ///   vendored shims (third-party API stand-ins, not our contract).
    /// * `lock-hygiene` / `condvar-wait-loop` — the two places that do
    ///   nontrivial synchronisation: the tensor worker pool and the
    ///   runtime.
    /// * `telemetry-names` — workspace-wide except vendored shims and test
    ///   code (tests pin wire formats with raw literals on purpose).
    /// * `panic-reachability` / `lock-order-cycle` / `hot-path-alloc` —
    ///   the interprocedural rules; they walk the whole workspace call
    ///   graph and anchor findings at the offending site, so their scope
    ///   is everything but the vendored shims.
    /// * `bad-allow` — everywhere: a malformed escape hatch is never okay.
    pub fn default_workspace() -> Config {
        let scope = |include: &[&str], exclude: &[&str]| Scope {
            include: include.iter().map(|s| s.to_string()).collect(),
            exclude: exclude.iter().map(|s| s.to_string()).collect(),
        };
        Config {
            only: None,
            changed: None,
            entries: crate::interproc::DEFAULT_ENTRIES
                .iter()
                .map(|s| s.to_string())
                .collect(),
            include_asserts: false,
            scopes: vec![
                (
                    "no-panic",
                    scope(
                        &[
                            "crates/jpeg/src/",
                            "crates/faults/src/lib.rs",
                            "crates/runtime/src/",
                            "crates/serve/src/",
                        ],
                        &[],
                    ),
                ),
                (
                    "no-unchecked-index",
                    scope(
                        &["crates/jpeg/src/bitstream.rs", "crates/jpeg/src/huffman.rs"],
                        &[],
                    ),
                ),
                ("unsafe-audit", scope(&[], &["vendor/"])),
                ("unsafe-ledger", scope(&[], &["vendor/"])),
                (
                    "lock-hygiene",
                    scope(
                        &[
                            "crates/tensor/src/kernels/",
                            "crates/runtime/src/",
                            "crates/serve/src/",
                        ],
                        &[],
                    ),
                ),
                (
                    "condvar-wait-loop",
                    scope(
                        &[
                            "crates/tensor/src/kernels/",
                            "crates/runtime/src/",
                            "crates/serve/src/",
                        ],
                        &[],
                    ),
                ),
                (
                    "telemetry-names",
                    scope(&[], &["vendor/", "/tests/", "tests/"]),
                ),
                // The interprocedural rules anchor findings at the
                // offending site, which may be anywhere the request path
                // reaches — scope is the whole workspace minus the
                // vendored shims (the fact extractor already skips test
                // regions, examples, and benches).
                ("panic-reachability", scope(&[], &["vendor/"])),
                ("lock-order-cycle", scope(&[], &["vendor/"])),
                ("hot-path-alloc", scope(&[], &["vendor/"])),
                ("bad-allow", scope(&[], &["vendor/"])),
            ],
        }
    }

    /// Should `rule` run at all under this configuration?
    pub fn rule_enabled(&self, rule: &str) -> bool {
        match &self.only {
            Some(only) => only == rule,
            None => true,
        }
    }

    /// Should `rule` run on workspace-relative `path`?
    pub fn in_scope(&self, rule: &str, path: &str) -> bool {
        self.rule_enabled(rule)
            && self
                .scopes
                .iter()
                .find(|(r, _)| *r == rule)
                .is_some_and(|(_, s)| s.applies(path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scopes_cover_the_contract_crates() {
        let cfg = Config::default_workspace();
        assert!(cfg.in_scope("no-panic", "crates/jpeg/src/codec.rs"));
        assert!(cfg.in_scope("no-panic", "crates/runtime/src/exec.rs"));
        assert!(cfg.in_scope("no-panic", "crates/faults/src/lib.rs"));
        assert!(cfg.in_scope("no-panic", "crates/serve/src/server.rs"));
        assert!(cfg.in_scope("lock-hygiene", "crates/serve/src/server.rs"));
        assert!(cfg.in_scope("condvar-wait-loop", "crates/serve/src/http.rs"));
        assert!(!cfg.in_scope("no-panic", "crates/serve/tests/protocol.rs"));
        assert!(!cfg.in_scope("no-panic", "crates/faults/src/bin/fault_fixtures.rs"));
        assert!(!cfg.in_scope("no-panic", "crates/cli/src/commands.rs"));
    }

    #[test]
    fn unchecked_index_is_limited_to_the_entropy_decode_path() {
        let cfg = Config::default_workspace();
        assert!(cfg.in_scope("no-unchecked-index", "crates/jpeg/src/bitstream.rs"));
        assert!(cfg.in_scope("no-unchecked-index", "crates/jpeg/src/huffman.rs"));
        assert!(!cfg.in_scope("no-unchecked-index", "crates/jpeg/src/dct.rs"));
    }

    #[test]
    fn vendored_shims_are_exempt_from_global_rules() {
        let cfg = Config::default_workspace();
        assert!(cfg.in_scope("unsafe-audit", "crates/tensor/src/kernels/gemm.rs"));
        assert!(!cfg.in_scope("unsafe-audit", "vendor/rand/src/lib.rs"));
        assert!(!cfg.in_scope("telemetry-names", "crates/telemetry/tests/telemetry.rs"));
        assert!(cfg.in_scope("telemetry-names", "crates/runtime/src/exec.rs"));
    }

    #[test]
    fn interprocedural_rules_cover_everything_but_vendor() {
        let cfg = Config::default_workspace();
        for rule in INTERPROC_RULES {
            assert!(cfg.in_scope(rule, "crates/core/src/estimator.rs"));
            assert!(cfg.in_scope(rule, "crates/tensor/src/kernels/gemm.rs"));
            assert!(!cfg.in_scope(rule, "vendor/rand/src/lib.rs"));
        }
        assert!(!cfg.entries.is_empty());
        assert!(!cfg.include_asserts);
    }

    #[test]
    fn rule_filter_disables_everything_else() {
        let mut cfg = Config::default_workspace();
        cfg.only = Some("no-panic".to_string());
        assert!(cfg.in_scope("no-panic", "crates/jpeg/src/codec.rs"));
        assert!(!cfg.in_scope("unsafe-audit", "crates/tensor/src/kernels/gemm.rs"));
    }

    #[test]
    fn rule_catalogue_is_consistent() {
        let cfg = Config::default_workspace();
        for rule in RULES {
            assert!(is_rule(rule));
            // every rule must have a scope entry (empty include = global)
            assert!(
                cfg.in_scope(rule, "crates/jpeg/src/bitstream.rs")
                    || !cfg.in_scope(rule, "definitely/not/a/path.rs")
            );
        }
        assert!(!is_rule("no-such-rule"));
    }
}
