//! Decoder robustness: arbitrary and corrupted byte streams must produce
//! errors, never panics or unbounded work.

use dcdiff_image::{ColorSpace, Image, Plane};
use dcdiff_jpeg::{JpegDecoder, JpegEncoder};
use proptest::prelude::*;

fn valid_stream() -> Vec<u8> {
    let img = Image::from_planes(
        vec![
            Plane::from_fn(32, 24, |x, y| ((x * 9 + y * 5) % 256) as f32),
            Plane::from_fn(32, 24, |x, y| ((x * 3 + y * 11) % 256) as f32),
            Plane::from_fn(32, 24, |x, y| ((x + y * 2) % 256) as f32),
        ],
        ColorSpace::Rgb,
    )
    .unwrap();
    JpegEncoder::new(50).encode(&img).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = JpegDecoder::decode(&bytes);
    }

    #[test]
    fn random_bytes_with_soi_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut stream = vec![0xFF, 0xD8];
        stream.extend(bytes);
        let _ = JpegDecoder::decode(&stream);
    }

    #[test]
    fn single_byte_corruption_never_panics(pos_frac in 0.0f64..1.0, value in any::<u8>()) {
        let mut bytes = valid_stream();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] = value;
        // decode may fail or may succeed with altered pixels — both fine
        let _ = JpegDecoder::decode(&bytes);
    }

    #[test]
    fn truncation_never_panics(keep_frac in 0.0f64..1.0) {
        let bytes = valid_stream();
        let keep = (bytes.len() as f64 * keep_frac) as usize;
        let _ = JpegDecoder::decode(&bytes[..keep]);
    }

    #[test]
    fn byte_deletion_never_panics(pos_frac in 0.0f64..1.0) {
        let mut bytes = valid_stream();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes.remove(pos);
        let _ = JpegDecoder::decode(&bytes);
    }
}
