//! Binary NetPBM (PPM/PGM) readers and writers.
//!
//! The experiment binaries dump qualitative results (Figure 5) as PPM so
//! they can be inspected with any viewer without extra dependencies.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::{ColorSpace, Image, ImageError, Plane};

/// Write an image as binary PPM (`P6`).
///
/// Non-RGB images are converted to RGB first; samples are rounded and
/// clamped to `[0, 255]`.
///
/// # Errors
///
/// Returns [`ImageError::Io`] on filesystem failure.
pub fn write_ppm(path: impl AsRef<Path>, image: &Image) -> Result<(), ImageError> {
    let rgb = image.to_rgb();
    let (w, h) = rgb.dims();
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    write!(file, "P6\n{w} {h}\n255\n")?;
    let mut buf = Vec::with_capacity(w * h * 3);
    for i in 0..w * h {
        for c in 0..3 {
            buf.push(quantize(rgb.plane(c).as_slice()[i]));
        }
    }
    file.write_all(&buf)?;
    Ok(())
}

/// Write a grayscale image as binary PGM (`P5`).
///
/// Multi-channel images are converted to luma first.
///
/// # Errors
///
/// Returns [`ImageError::Io`] on filesystem failure.
pub fn write_pgm(path: impl AsRef<Path>, image: &Image) -> Result<(), ImageError> {
    let gray = image.to_gray();
    let (w, h) = gray.dims();
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    write!(file, "P5\n{w} {h}\n255\n")?;
    let buf: Vec<u8> = gray.plane(0).as_slice().iter().map(|&v| quantize(v)).collect();
    file.write_all(&buf)?;
    Ok(())
}

/// Read a binary PPM (`P6`) file into an RGB image.
///
/// # Errors
///
/// Returns [`ImageError::ParsePnm`] for malformed headers or truncated
/// payloads and [`ImageError::Io`] on filesystem failure.
pub fn read_ppm(path: impl AsRef<Path>) -> Result<Image, ImageError> {
    let mut reader = BufReader::new(std::fs::File::open(path)?);
    let (magic, w, h, maxval) = read_pnm_header(&mut reader)?;
    if magic != "P6" {
        return Err(ImageError::ParsePnm(format!("expected P6, got {magic}")));
    }
    let mut buf = vec![0u8; w * h * 3];
    reader.read_exact(&mut buf).map_err(|_| {
        ImageError::ParsePnm("truncated ppm payload".to_string())
    })?;
    let scale = 255.0 / maxval as f32;
    let mut planes: Vec<Plane> = (0..3).map(|_| Plane::new(w, h)).collect();
    for i in 0..w * h {
        for (c, plane) in planes.iter_mut().enumerate() {
            plane.as_mut_slice()[i] = buf[i * 3 + c] as f32 * scale;
        }
    }
    Image::from_planes(planes, ColorSpace::Rgb)
}

/// Read a binary PGM (`P5`) file into a grayscale image.
///
/// # Errors
///
/// Returns [`ImageError::ParsePnm`] for malformed headers or truncated
/// payloads and [`ImageError::Io`] on filesystem failure.
pub fn read_pgm(path: impl AsRef<Path>) -> Result<Image, ImageError> {
    let mut reader = BufReader::new(std::fs::File::open(path)?);
    let (magic, w, h, maxval) = read_pnm_header(&mut reader)?;
    if magic != "P5" {
        return Err(ImageError::ParsePnm(format!("expected P5, got {magic}")));
    }
    let mut buf = vec![0u8; w * h];
    reader.read_exact(&mut buf).map_err(|_| {
        ImageError::ParsePnm("truncated pgm payload".to_string())
    })?;
    let scale = 255.0 / maxval as f32;
    let mut plane = Plane::new(w, h);
    for (dst, &src) in plane.as_mut_slice().iter_mut().zip(&buf) {
        *dst = src as f32 * scale;
    }
    Ok(Image::from_gray(plane))
}

fn quantize(v: f32) -> u8 {
    v.round().clamp(0.0, 255.0) as u8
}

/// Parse `magic width height maxval` allowing `#` comments and arbitrary
/// whitespace, consuming exactly one whitespace byte after maxval.
fn read_pnm_header<R: BufRead>(reader: &mut R) -> Result<(String, usize, usize, u32), ImageError> {
    let mut tokens = Vec::new();
    while tokens.len() < 4 {
        let tok = read_token(reader)?;
        if tok.is_empty() {
            return Err(ImageError::ParsePnm("unexpected end of header".to_string()));
        }
        tokens.push(tok);
    }
    let magic = tokens[0].clone();
    let w: usize = tokens[1]
        .parse()
        .map_err(|_| ImageError::ParsePnm(format!("bad width {}", tokens[1])))?;
    let h: usize = tokens[2]
        .parse()
        .map_err(|_| ImageError::ParsePnm(format!("bad height {}", tokens[2])))?;
    let maxval: u32 = tokens[3]
        .parse()
        .map_err(|_| ImageError::ParsePnm(format!("bad maxval {}", tokens[3])))?;
    if w == 0 || h == 0 || maxval == 0 || maxval > 255 {
        return Err(ImageError::ParsePnm(format!(
            "unsupported header {w}x{h} maxval {maxval}"
        )));
    }
    Ok((magic, w, h, maxval))
}

fn read_token<R: BufRead>(reader: &mut R) -> Result<String, ImageError> {
    let mut tok = String::new();
    let mut byte = [0u8; 1];
    // skip whitespace and comments
    loop {
        if reader.read(&mut byte)? == 0 {
            return Ok(tok);
        }
        match byte[0] {
            b'#' => {
                // comment to end of line
                let mut junk = String::new();
                reader.read_line(&mut junk)?;
            }
            b if b.is_ascii_whitespace() => {}
            b => {
                tok.push(b as char);
                break;
            }
        }
    }
    loop {
        if reader.read(&mut byte)? == 0 {
            break;
        }
        if byte[0].is_ascii_whitespace() {
            break;
        }
        tok.push(byte[0] as char);
    }
    Ok(tok)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dcdiff-image-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn ppm_round_trip() {
        let img = Image::from_planes(
            vec![
                Plane::from_fn(5, 3, |x, _| (x * 50) as f32),
                Plane::from_fn(5, 3, |_, y| (y * 80) as f32),
                Plane::filled(5, 3, 7.0),
            ],
            ColorSpace::Rgb,
        )
        .unwrap();
        let path = temp_path("rt.ppm");
        write_ppm(&path, &img).unwrap();
        let back = read_ppm(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.dims(), (5, 3));
        assert!(img.mean_abs_diff(&back) < 0.5);
    }

    #[test]
    fn pgm_round_trip() {
        let img = Image::from_gray(Plane::from_fn(4, 4, |x, y| ((x + y) * 30) as f32));
        let path = temp_path("rt.pgm");
        write_pgm(&path, &img).unwrap();
        let back = read_pgm(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(img.mean_abs_diff(&back) < 0.5);
    }

    #[test]
    fn header_with_comments_parses() {
        let data = b"P5\n# a comment\n2 2\n255\n\x00\x40\x80\xff";
        let mut reader = std::io::BufReader::new(&data[..]);
        let (magic, w, h, maxval) = read_pnm_header(&mut reader).unwrap();
        assert_eq!((magic.as_str(), w, h, maxval), ("P5", 2, 2, 255));
    }

    #[test]
    fn bad_magic_rejected() {
        let path = temp_path("bad.ppm");
        std::fs::write(&path, b"P3\n1 1\n255\n0 0 0\n").unwrap();
        let err = read_ppm(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, ImageError::ParsePnm(_)));
    }
}
