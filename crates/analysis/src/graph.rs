//! Workspace call-graph construction over the extracted [`facts`].
//!
//! Resolution is best-effort and *conservative*: a call that could target
//! several workspace functions gets an edge to every candidate, so the
//! interprocedural rules over-approximate reachability rather than miss
//! paths. The precedence ladder:
//!
//! 1. **Path calls** (`a::b::f(…)`, `Type::method(…)`) resolve by symbol
//!    suffix match at segment boundaries.
//! 2. **Free calls** resolve to same-file definitions first, then
//!    same-crate, then workspace-wide name matches.
//! 3. **Method calls** resolve by name to workspace methods — except the
//!    [`UBIQUITOUS_METHODS`] (std trait vocabulary like `clone`, `len`,
//!    `get`) whose name match would connect everything to everything;
//!    those are classified external.
//!
//! Every call lands in exactly one bucket: `resolved` (≥1 workspace
//! edge), `external` (confidently not ours: std path roots, uppercase
//! constructors, ubiquitous methods, or a method name defined nowhere in
//! the workspace), or `unresolved` — a call that *looks* local (a
//! `dcdiff_*`/`crate::`/local-type path, or a lowercase free call) but
//! matched nothing. Unresolved calls are reported, counted, and gated in
//! CI via the unresolved-rate threshold so graph coverage cannot silently
//! regress.
//!
//! [`facts`]: crate::facts

use std::collections::{BTreeMap, HashSet};

use crate::facts::{CallKind, CallSite, WorkspaceFacts};

/// Method names so common in std/trait vocabulary that name-matching them
/// against workspace definitions would wire unrelated subsystems
/// together. Calls to these are classified external and never produce
/// edges (their allocation/blocking/panic behaviour is captured by the
/// dedicated fact extractors instead).
pub const UBIQUITOUS_METHODS: &[&str] = &[
    "clone", "to_string", "to_owned", "to_vec", "into", "from", "as_ref", "as_mut", "as_str",
    "as_slice", "as_bytes", "unwrap", "expect", "unwrap_or", "unwrap_or_else",
    "unwrap_or_default", "map", "map_err", "and_then", "or_else", "ok", "err", "ok_or",
    "ok_or_else", "iter", "iter_mut", "into_iter", "next", "len", "is_empty", "push", "pop",
    "insert", "remove", "contains", "contains_key", "get", "get_mut", "first", "last", "fmt",
    "eq", "ne", "cmp", "partial_cmp", "hash", "default", "min", "max", "clamp", "abs", "write",
    "read", "flush", "extend", "resize", "clear", "take", "replace", "send", "new", "add", "sub",
    "offset", "load", "store",
];

/// Free functions imported from std so routinely (`use std::panic::
/// catch_unwind`, `use std::sync::mpsc::channel`, …) that a bare call is
/// almost never a workspace function. Workspace definitions still win:
/// this list is only consulted after name matching finds no candidate.
const KNOWN_STD_FREE: &[&str] = &[
    "catch_unwind", "black_box", "channel", "sync_channel", "swap", "take", "replace", "drop",
    "size_of", "size_of_val", "align_of", "spawn", "sleep", "yield_now", "available_parallelism",
    "from_fn", "once", "repeat", "empty", "var", "args", "exit", "abort", "copy", "read_dir",
    "read_to_string", "write", "remove_file", "create_dir_all", "set_hook", "take_hook",
];

/// Path roots that are definitely not workspace modules.
const EXTERNAL_ROOTS: &[&str] = &[
    "std", "core", "alloc", "Vec", "String", "Box", "Option", "Result", "Some", "None", "Ok",
    "Err", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "VecDeque", "Arc", "Rc", "Mutex",
    "RwLock", "Condvar", "Instant", "Duration", "Ordering", "PathBuf", "Path", "OsStr",
    "OsString", "Iterator", "IntoIterator", "Default", "Clone", "Copy", "Drop", "From", "Into",
    "TryFrom", "TryInto", "AsRef", "AsMut", "Display", "Debug", "Deref", "DerefMut", "f32",
    "f64", "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128",
    "isize", "char", "str", "bool", "mem", "ptr", "slice", "iter", "cmp", "fmt", "env",
    "process", "thread", "time", "sync", "atomic", "io", "fs", "net", "panic", "hint", "array",
];

/// How one call was classified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// ≥1 workspace callee.
    Resolved,
    /// Confidently external (std, constructor, ubiquitous method).
    External,
    /// Looks local but matched nothing — a coverage gap.
    Unresolved,
}

/// One resolved edge: caller's call-site index and the callee function.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Index into the caller's `calls` vector.
    pub call: usize,
    /// Callee function index in [`WorkspaceFacts::functions`].
    pub callee: usize,
}

/// Aggregate resolution statistics, serialised into the lint report.
#[derive(Debug, Default, Clone)]
pub struct GraphStats {
    /// Functions with extracted facts.
    pub functions: usize,
    /// Total call sites considered.
    pub calls: usize,
    /// Calls with ≥1 workspace edge.
    pub resolved: usize,
    /// Calls classified confidently external.
    pub external: usize,
    /// Local-looking calls that matched nothing.
    pub unresolved: usize,
    /// Functions annotated `// analysis: hot`.
    pub hot_functions: usize,
    /// The most frequent unresolved call names, for `--graph` triage.
    pub unresolved_names: Vec<(String, usize)>,
}

impl GraphStats {
    /// Unresolved calls as a fraction of all calls (0 when there are no
    /// calls at all).
    pub fn unresolved_rate(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.unresolved as f64 / self.calls as f64
        }
    }
}

/// The workspace call graph: per-function resolved edges plus the
/// classification ledger.
pub struct CallGraph {
    /// Outgoing edges per function (indexed like
    /// [`WorkspaceFacts::functions`]).
    pub edges: Vec<Vec<Edge>>,
    /// Unresolved calls: (caller index, rendered name, line).
    pub unresolved: Vec<(usize, String, u32)>,
    /// Aggregate statistics.
    pub stats: GraphStats,
}

impl CallGraph {
    /// Build the graph from extracted facts.
    pub fn build(facts: &WorkspaceFacts) -> CallGraph {
        let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); facts.functions.len()];
        let mut unresolved: Vec<(usize, String, u32)> = Vec::new();
        let mut stats = GraphStats {
            functions: facts.functions.len(),
            hot_functions: facts.functions.iter().filter(|f| f.hot).count(),
            ..GraphStats::default()
        };
        for (fi, f) in facts.functions.iter().enumerate() {
            for (ci, call) in f.calls.iter().enumerate() {
                stats.calls += 1;
                let (resolution, targets) = resolve(facts, fi, call);
                match resolution {
                    Resolution::Resolved => {
                        stats.resolved += 1;
                        for t in targets {
                            edges[fi].push(Edge { call: ci, callee: t });
                        }
                    }
                    Resolution::External => stats.external += 1,
                    Resolution::Unresolved => {
                        stats.unresolved += 1;
                        unresolved.push((fi, render_name(call), call.line));
                    }
                }
            }
        }
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for (_, name, _) in &unresolved {
            *counts.entry(name.clone()).or_default() += 1;
        }
        let mut names: Vec<(String, usize)> = counts.into_iter().collect();
        names.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        names.truncate(20);
        stats.unresolved_names = names;
        CallGraph {
            edges,
            unresolved,
            stats,
        }
    }

    /// Transitive closure helper: every function reachable from `start`
    /// (inclusive), optionally skipping guarded call sites.
    pub fn reachable(
        &self,
        facts: &WorkspaceFacts,
        start: usize,
        skip_guarded: bool,
    ) -> HashSet<usize> {
        let mut seen: HashSet<usize> = HashSet::new();
        let mut stack = vec![start];
        while let Some(fi) = stack.pop() {
            if !seen.insert(fi) {
                continue;
            }
            for e in &self.edges[fi] {
                if skip_guarded && facts.functions[fi].calls[e.call].guarded {
                    continue;
                }
                if !seen.contains(&e.callee) {
                    stack.push(e.callee);
                }
            }
        }
        seen
    }
}

/// Render a call the way a human would grep for it.
pub fn render_name(call: &CallSite) -> String {
    match call.kind {
        CallKind::Method => format!(".{}()", call.name),
        CallKind::Free => format!("{}()", call.name),
        CallKind::Path => format!("{}()", call.path.join("::")),
    }
}

/// Classify one call and produce its workspace targets.
fn resolve(facts: &WorkspaceFacts, caller: usize, call: &CallSite) -> (Resolution, Vec<usize>) {
    match call.kind {
        CallKind::Path => resolve_path(facts, call),
        CallKind::Free => resolve_free(facts, caller, call),
        CallKind::Method => resolve_method(facts, call),
    }
}

fn resolve_path(facts: &WorkspaceFacts, call: &CallSite) -> (Resolution, Vec<usize>) {
    // Suffix-match the meaningful tail: strip leading `crate`/`self`/
    // `super` qualifiers, which name *our* modules by construction.
    let segs: Vec<&str> = call
        .path
        .iter()
        .map(String::as_str)
        .skip_while(|s| matches!(*s, "crate" | "self" | "super"))
        .collect();
    if segs.is_empty() {
        return (Resolution::External, Vec::new());
    }
    let root = segs[0];
    // A known-external root decides *before* suffix matching: otherwise
    // `std::array::from_fn` falls through its 3- and 2-segment suffixes
    // and the bare `from_fn` tail name-matches some workspace method.
    if EXTERNAL_ROOTS.contains(&root) {
        return (Resolution::External, Vec::new());
    }
    // Longest-suffix match first: `jpeg::decode` should prefer the exact
    // module over any bare `decode`. A qualified path (≥ 2 segments) must
    // match at least its last TWO segments — falling back to the bare
    // final name would wire e.g. `OnceLock::new()` to every workspace
    // constructor named `new`.
    let min_take = segs.len().min(2);
    for take in (min_take..=segs.len().min(3)).rev() {
        let suffix = segs[segs.len() - take..].join("::");
        let hits = facts.by_suffix(&suffix);
        if !hits.is_empty() {
            return (Resolution::Resolved, hits);
        }
    }
    let last = segs[segs.len() - 1];
    // `Type::Variant(…)` / `Some(…)`-style constructors.
    if last.chars().next().is_some_and(char::is_uppercase) {
        return (Resolution::External, Vec::new());
    }
    // Crate-root re-exports: `dcdiff_core::project_dc()` names a function
    // whose true module path has a segment in between (`pub use`). Match
    // the bare name within the named crate.
    if root.starts_with("dcdiff") {
        if let Some(candidates) = facts.by_name.get(last) {
            let in_crate: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&i| crate_of(&facts.functions[i].symbol) == root)
                .collect();
            if !in_crate.is_empty() {
                return (Resolution::Resolved, in_crate);
            }
        }
    }
    // `Type::default()` / `Type::clone()` on a local type with no written
    // impl is a derive-generated method — external, not a coverage gap.
    if UBIQUITOUS_METHODS.contains(&last) {
        return (Resolution::External, Vec::new());
    }
    // A path rooted in a workspace crate or a locally-defined type that
    // still matched nothing is a genuine coverage gap.
    if root.starts_with("dcdiff") || facts.local_types.contains_key(root) {
        return (Resolution::Unresolved, Vec::new());
    }
    // Unknown root, e.g. a std type not in the list: assume external but
    // only when it looks like a type (uppercase); otherwise report it.
    if root.chars().next().is_some_and(char::is_uppercase) {
        (Resolution::External, Vec::new())
    } else {
        (Resolution::Unresolved, Vec::new())
    }
}

fn resolve_free(facts: &WorkspaceFacts, caller: usize, call: &CallSite) -> (Resolution, Vec<usize>) {
    // `Some(…)`, `Ok(…)`, tuple-struct constructors.
    if call.name.chars().next().is_some_and(char::is_uppercase) {
        return (Resolution::External, Vec::new());
    }
    // SIMD intrinsics (`_mm256_fmadd_ps` & co.) and other `_`-prefixed
    // imports are never workspace functions.
    if call.name.starts_with('_') {
        return (Resolution::External, Vec::new());
    }
    // A call to a name this file binds as a closure (`let f = |…| …`) is
    // local control flow: the closure body's facts are already attributed
    // to the enclosing function, so the call itself carries no edge.
    if facts
        .closures
        .get(&facts.functions[caller].file)
        .is_some_and(|set| set.contains(&call.name))
    {
        return (Resolution::External, Vec::new());
    }
    let Some(candidates) = facts.by_name.get(&call.name) else {
        // A lowercase bare call defined nowhere: an imported std free
        // function, a closure/callback variable, or an indexing gap.
        // Closures are common enough that flagging every one would drown
        // the signal, but they are also almost always short names bound
        // with `let f = |…|`; report only the ones that look like real
        // functions (≥ 4 chars) to keep the metric meaningful.
        if KNOWN_STD_FREE.contains(&call.name.as_str()) {
            return (Resolution::External, Vec::new());
        }
        return if call.name.len() >= 4 {
            (Resolution::Unresolved, Vec::new())
        } else {
            (Resolution::External, Vec::new())
        };
    };
    let caller_file = &facts.functions[caller].file;
    let caller_crate = crate_of(&facts.functions[caller].symbol);
    let same_file: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&i| &facts.functions[i].file == caller_file)
        .collect();
    if !same_file.is_empty() {
        return (Resolution::Resolved, same_file);
    }
    let same_crate: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&i| crate_of(&facts.functions[i].symbol) == caller_crate)
        .collect();
    if !same_crate.is_empty() {
        return (Resolution::Resolved, same_crate);
    }
    (Resolution::Resolved, candidates.clone())
}

fn resolve_method(facts: &WorkspaceFacts, call: &CallSite) -> (Resolution, Vec<usize>) {
    if UBIQUITOUS_METHODS.contains(&call.name.as_str()) {
        return (Resolution::External, Vec::new());
    }
    let candidates: Vec<usize> = facts
        .by_name
        .get(&call.name)
        .map(|v| {
            v.iter()
                .copied()
                .filter(|&i| facts.functions[i].is_method)
                .collect()
        })
        .unwrap_or_default();
    if candidates.is_empty() {
        // A method name defined nowhere in the workspace is a std/trait
        // method we do not model (e.g. `.as_micros()`).
        return (Resolution::External, Vec::new());
    }
    (Resolution::Resolved, candidates)
}

/// `dcdiff_jpeg::huffman::decode` → `dcdiff_jpeg`.
fn crate_of(symbol: &str) -> &str {
    symbol.split("::").next().unwrap_or(symbol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::FileModel;

    fn ws(files: &[(&str, &str)]) -> WorkspaceFacts {
        let mut out = WorkspaceFacts::default();
        for (rel, src) in files {
            let model = FileModel::build(src);
            out.add_file(rel, src, &model, false);
        }
        out
    }

    fn idx(facts: &WorkspaceFacts, name: &str) -> usize {
        facts.by_name[name][0]
    }

    #[test]
    fn free_calls_prefer_same_file_then_same_crate() {
        let facts = ws(&[
            (
                "crates/a/src/lib.rs",
                "fn caller() { helper(); }\nfn helper() {}\n",
            ),
            ("crates/b/src/lib.rs", "fn helper() {}\n"),
        ]);
        let g = CallGraph::build(&facts);
        let caller = idx(&facts, "caller");
        assert_eq!(g.edges[caller].len(), 1);
        assert_eq!(
            facts.functions[g.edges[caller][0].callee].symbol,
            "dcdiff_a::helper"
        );
    }

    #[test]
    fn path_calls_resolve_by_suffix_and_std_paths_are_external() {
        let facts = ws(&[
            (
                "crates/a/src/lib.rs",
                "fn caller() { dcdiff_b::work::run(); std::mem::swap(a, b); }\n",
            ),
            ("crates/b/src/work.rs", "pub fn run() {}\n"),
        ]);
        let g = CallGraph::build(&facts);
        let caller = idx(&facts, "caller");
        assert_eq!(g.edges[caller].len(), 1);
        assert_eq!(g.stats.resolved, 1);
        assert_eq!(g.stats.external, 1);
        assert_eq!(g.stats.unresolved, 0);
    }

    #[test]
    fn method_calls_match_workspace_methods_but_not_ubiquitous_names() {
        let facts = ws(&[
            (
                "crates/a/src/lib.rs",
                "fn caller(q: &Q) { q.submit_watched(s); v.clone(); }\n",
            ),
            (
                "crates/b/src/rt.rs",
                "impl Runtime {\n    pub fn submit_watched(&self) {}\n}\n",
            ),
        ]);
        let g = CallGraph::build(&facts);
        let caller = idx(&facts, "caller");
        assert_eq!(g.edges[caller].len(), 1);
        assert_eq!(
            facts.functions[g.edges[caller][0].callee].symbol,
            "dcdiff_b::rt::Runtime::submit_watched"
        );
    }

    #[test]
    fn local_looking_misses_are_unresolved_and_counted() {
        let facts = ws(&[(
            "crates/a/src/lib.rs",
            "fn caller() { crate::missing::thing(); definitely_local_fn(); }\n",
        )]);
        let g = CallGraph::build(&facts);
        assert_eq!(g.stats.unresolved, 2, "{:?}", g.unresolved);
        assert!(g.stats.unresolved_rate() > 0.99);
        assert!(g
            .stats
            .unresolved_names
            .iter()
            .any(|(n, _)| n.contains("missing::thing")));
    }

    #[test]
    fn reachability_skips_guarded_calls_when_asked() {
        let facts = ws(&[(
            "crates/a/src/lib.rs",
            "fn top() { let r = catch_unwind(AssertUnwindSafe(|| risky())); safe(); }\nfn risky() {}\nfn safe() {}\n",
        )]);
        let g = CallGraph::build(&facts);
        let top = idx(&facts, "top");
        let all = g.reachable(&facts, top, false);
        let unguarded = g.reachable(&facts, top, true);
        assert!(all.contains(&idx(&facts, "risky")));
        assert!(!unguarded.contains(&idx(&facts, "risky")));
        assert!(unguarded.contains(&idx(&facts, "safe")));
    }

    #[test]
    fn constructors_are_external() {
        let facts = ws(&[(
            "crates/a/src/lib.rs",
            "fn caller() -> Option<u8> { Some(1) }\n",
        )]);
        let g = CallGraph::build(&facts);
        assert_eq!(g.stats.external, 1);
        assert_eq!(g.stats.unresolved, 0);
    }
}
