//! Lock-free runtime counters.
//!
//! A single [`RuntimeStats`] block is shared by the submitters and every
//! worker; all fields are relaxed `AtomicU64`s, so recording never contends.
//! [`RuntimeStats::snapshot`] materialises a plain [`StatsSnapshot`] struct
//! the CLI can print. Richer observability — span tracing, latency
//! histograms with quantiles, gauges and leveled logging — lives in the
//! `dcdiff-telemetry` crate; these counters remain the cheap always-on
//! summary behind `report.stats.render()`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::job::Stage;

/// Shared atomic counter block.
#[derive(Debug, Default)]
pub struct RuntimeStats {
    /// Jobs accepted into the queue.
    pub submitted: AtomicU64,
    /// Jobs that finished successfully.
    pub completed: AtomicU64,
    /// Jobs that terminally failed (error or deadline).
    pub failed: AtomicU64,
    /// Transient-failure retry attempts.
    pub retried: AtomicU64,
    /// Jobs rejected: fail-fast submits against a full queue plus jobs shed
    /// by an abort shutdown.
    pub rejected: AtomicU64,
    /// Jobs that missed their deadline before executing.
    pub deadline_missed: AtomicU64,
    /// Micro-batches executed (size ≥ 1).
    pub batches: AtomicU64,
    /// Jobs that rode in a batch of size ≥ 2.
    pub batched_jobs: AtomicU64,
    /// Highest queue depth observed at submission time.
    pub queue_high_water: AtomicU64,
    /// Execution nanoseconds per pipeline stage (see [`Stage::index`]).
    pub stage_ns: [AtomicU64; 4],
    /// Jobs executed per pipeline stage.
    pub stage_jobs: [AtomicU64; 4],
}

impl RuntimeStats {
    /// Fresh zeroed block.
    pub fn new() -> Self {
        RuntimeStats::default()
    }

    /// Add one counted increment.
    pub fn bump(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `depth` as a queue-depth observation.
    pub fn observe_queue_depth(&self, depth: u64) {
        self.queue_high_water.fetch_max(depth, Ordering::Relaxed);
    }

    /// Record one executed job of `stage` taking `elapsed`.
    pub fn record_stage(&self, stage: Stage, elapsed: Duration) {
        let i = stage.index();
        self.stage_ns[i].fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        self.stage_jobs[i].fetch_add(1, Ordering::Relaxed);
    }

    /// Materialise a plain-data snapshot of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        StatsSnapshot {
            submitted: load(&self.submitted),
            completed: load(&self.completed),
            failed: load(&self.failed),
            retried: load(&self.retried),
            rejected: load(&self.rejected),
            deadline_missed: load(&self.deadline_missed),
            batches: load(&self.batches),
            batched_jobs: load(&self.batched_jobs),
            queue_high_water: load(&self.queue_high_water),
            stage_ns: std::array::from_fn(|i| load(&self.stage_ns[i])),
            stage_jobs: std::array::from_fn(|i| load(&self.stage_jobs[i])),
        }
    }
}

/// Point-in-time copy of [`RuntimeStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Jobs that finished successfully.
    pub completed: u64,
    /// Jobs that terminally failed (error or deadline).
    pub failed: u64,
    /// Transient-failure retry attempts.
    pub retried: u64,
    /// Fail-fast rejections plus abort-shed jobs.
    pub rejected: u64,
    /// Jobs that missed their deadline before executing.
    pub deadline_missed: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Jobs that rode in a batch of size ≥ 2.
    pub batched_jobs: u64,
    /// Highest observed queue depth.
    pub queue_high_water: u64,
    /// Execution nanoseconds per stage.
    pub stage_ns: [u64; 4],
    /// Executed jobs per stage.
    pub stage_jobs: [u64; 4],
}

impl StatsSnapshot {
    /// Multi-line human-readable rendering (used by `dcdiff batch`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "jobs: {} submitted, {} completed, {} failed, {} rejected\n",
            self.submitted, self.completed, self.failed, self.rejected
        ));
        out.push_str(&format!(
            "      {} retries, {} deadline misses, queue high-water {}\n",
            self.retried, self.deadline_missed, self.queue_high_water
        ));
        out.push_str(&format!(
            "      {} batches ({} jobs rode in multi-job batches)\n",
            self.batches, self.batched_jobs
        ));
        for stage in Stage::ALL {
            let i = stage.index();
            if self.stage_jobs[i] > 0 {
                out.push_str(&format!(
                    "      {:<9} {:>5} jobs, {:.1} ms total exec\n",
                    stage.name(),
                    self.stage_jobs[i],
                    self.stage_ns[i] as f64 / 1e6,
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_recorded_activity() {
        let stats = RuntimeStats::new();
        stats.bump(&stats.submitted);
        stats.bump(&stats.submitted);
        stats.bump(&stats.completed);
        stats.observe_queue_depth(3);
        stats.observe_queue_depth(1);
        stats.record_stage(Stage::Recover, Duration::from_micros(1500));
        let snap = stats.snapshot();
        assert_eq!(snap.submitted, 2);
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.queue_high_water, 3);
        assert_eq!(snap.stage_jobs[Stage::Recover.index()], 1);
        assert_eq!(snap.stage_ns[Stage::Recover.index()], 1_500_000);
        let text = snap.render();
        assert!(text.contains("2 submitted"));
        assert!(text.contains("recover"));
    }

    #[test]
    fn concurrent_bumps_do_not_lose_counts() {
        let stats = std::sync::Arc::new(RuntimeStats::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let stats = std::sync::Arc::clone(&stats);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        stats.bump(&stats.completed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(stats.snapshot().completed, 40_000);
    }
}
