//! Kernel tuning knobs: thread count and cache/register block sizes.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Depth block: one packed `mr x KC` A strip plus one `KC x nr` B strip
/// (a few KiB each; `mr`/`nr` come from the runtime-selected microkernel)
/// stay L1-resident through the microkernel.
pub const KC: usize = 256;
/// Row block: the packed `MC x KC` A block (256 KiB) targets L2.
pub const MC: usize = 256;
/// Column block: the packed `KC x NC` B block (512 KiB) targets L2/L3.
pub const NC: usize = 512;

/// Minimum FLOPs (2·m·k·n) before a GEMM is worth sharding across the
/// pool: below this the dispatch latency dominates the kernel time.
pub const PAR_FLOP_THRESHOLD: usize = 1 << 21;

/// 0 = uninitialised; resolved lazily by [`configured_threads`].
static THREADS: AtomicUsize = AtomicUsize::new(0);

fn detect_threads() -> usize {
    if let Ok(raw) = std::env::var("DCDIFF_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// The kernel layer's thread budget: `DCDIFF_THREADS` when set to a
/// positive integer, otherwise `std::thread::available_parallelism`.
pub fn configured_threads() -> usize {
    let cached = THREADS.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let detected = detect_threads();
    // Racing initialisers compute the same value; last write wins.
    THREADS.store(detected, Ordering::Relaxed);
    detected
}

/// Override the thread budget (benchmarks sweeping 1..cores). Affects the
/// whole process; not intended for concurrent test use. The worker pool is
/// sized at first use by `max(budget, hardware cores)`, so sweeping above
/// the hardware core count after the pool exists caps at whichever was
/// larger when it was created.
pub fn set_threads(threads: usize) {
    THREADS.store(threads.max(1), Ordering::Relaxed);
}

/// Snapshot of the kernel configuration, recorded into bench JSON so perf
/// numbers stay attributable across machines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelConfig {
    /// Thread budget in effect (env override or detected cores).
    pub threads: usize,
    /// Detected hardware parallelism (regardless of override).
    pub cpu_cores: usize,
    /// Microkernel selected for this CPU (e.g. `avx2_fma_6x16`).
    pub isa: &'static str,
    /// Micro-tile rows of the selected microkernel.
    pub mr: usize,
    /// Micro-tile columns of the selected microkernel.
    pub nr: usize,
    /// Depth block.
    pub kc: usize,
    /// Row block.
    pub mc: usize,
    /// Column block.
    pub nc: usize,
    /// FLOP threshold below which GEMMs stay single-threaded.
    pub par_flop_threshold: usize,
}

impl KernelConfig {
    /// The configuration currently in effect.
    pub fn current() -> Self {
        let (isa, mr, nr) = super::gemm::microkernel_info();
        KernelConfig {
            threads: configured_threads(),
            cpu_cores: std::thread::available_parallelism()
                .map_or(1, std::num::NonZeroUsize::get),
            isa,
            mr,
            nr,
            kc: KC,
            mc: MC,
            nc: NC,
            par_flop_threshold: PAR_FLOP_THRESHOLD,
        }
    }

    /// Render as a JSON object (for embedding in bench artifacts).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"threads\": {}, \"cpu_cores\": {}, \"isa\": \"{}\", \"mr\": {}, \"nr\": {}, \
             \"kc\": {}, \"mc\": {}, \"nc\": {}, \"par_flop_threshold\": {}}}",
            self.threads,
            self.cpu_cores,
            self.isa,
            self.mr,
            self.nr,
            self.kc,
            self.mc,
            self.nc,
            self.par_flop_threshold
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_are_at_least_one() {
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn config_json_names_every_knob() {
        let json = KernelConfig::current().to_json();
        for key in
            ["threads", "cpu_cores", "isa", "mr", "nr", "kc", "mc", "nc", "par_flop_threshold"]
        {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
