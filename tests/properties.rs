//! Workspace-level property-based tests over the core data paths:
//! arbitrary pixel content must survive the transform, entropy-coding and
//! recovery machinery without panics and with the documented invariants.

use proptest::prelude::*;

use dcdiff::image::{ColorSpace, Image, Plane};
use dcdiff::jpeg::bitstream::{magnitude_code, magnitude_decode};
use dcdiff::jpeg::dct::{fdct, idct};
use dcdiff::jpeg::quant::QuantTable;
use dcdiff::jpeg::zigzag::{from_zigzag, to_zigzag};
use dcdiff::jpeg::{encode_coefficients, ChromaSampling, CoeffImage, DcDropMode, JpegDecoder};

fn arbitrary_image(max_blocks: usize) -> impl Strategy<Value = Image> {
    (1usize..=max_blocks, 1usize..=max_blocks, any::<u64>()).prop_map(|(bw, bh, seed)| {
        let (w, h) = (bw * 8, bh * 8);
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 256) as f32
        };
        Image::from_planes(
            vec![
                Plane::from_fn(w, h, |_, _| next()),
                Plane::from_fn(w, h, |_, _| next()),
                Plane::from_fn(w, h, |_, _| next()),
            ],
            ColorSpace::Rgb,
        )
        .expect("planes share dimensions")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// DCT round trip is lossless to numerical precision for any block.
    #[test]
    fn dct_round_trip(values in proptest::collection::vec(-128.0f32..=127.0, 64)) {
        let mut block = [0.0f32; 64];
        block.copy_from_slice(&values);
        let back = idct(&fdct(&block));
        for i in 0..64 {
            prop_assert!((block[i] - back[i]).abs() < 1e-2);
        }
    }

    /// Zig-zag reordering is a bijection for arbitrary data.
    #[test]
    fn zigzag_bijection(values in proptest::collection::vec(any::<i32>(), 64)) {
        let mut block = [0i32; 64];
        block.copy_from_slice(&values);
        prop_assert_eq!(from_zigzag(&to_zigzag(&block)), block);
    }

    /// Magnitude coding inverts for the full baseline coefficient range.
    #[test]
    fn magnitude_coding_inverts(v in -32_768i32..=32_767) {
        let (size, bits) = magnitude_code(v);
        prop_assert!(size <= 16);
        prop_assert_eq!(magnitude_decode(size, bits), v);
    }

    /// Quantisation error is bounded by half the quantiser step.
    #[test]
    fn quantisation_error_bounded(
        values in proptest::collection::vec(-1000.0f32..=1000.0, 64),
        quality in 1u8..=100,
    ) {
        let mut block = [0.0f32; 64];
        block.copy_from_slice(&values);
        let table = QuantTable::luma(quality);
        let back = table.dequantize(&table.quantize(&block));
        for i in 0..64 {
            prop_assert!(
                (back[i] - block[i]).abs() <= 0.5 * table.values()[i] as f32 + 1e-3,
                "coeff {}: {} -> {}", i, block[i], back[i]
            );
        }
    }

    /// Entropy coding is lossless for arbitrary image content, and the
    /// full decode stays within the quantisation error bound.
    #[test]
    fn entropy_round_trip_any_content(image in arbitrary_image(4), quality in 5u8..=95) {
        let coeffs = CoeffImage::from_image(&image, quality, ChromaSampling::Cs444);
        let bytes = encode_coefficients(&coeffs).expect("encodable");
        let decoded = JpegDecoder::decode_coefficients(&bytes).expect("decodable");
        for c in 0..3 {
            prop_assert_eq!(coeffs.plane(c), decoded.plane(c));
        }
    }

    /// DC dropping never touches AC; zeroing *all* DC levels never grows
    /// the stream (a zero differential is the cheapest DC symbol). Keeping
    /// corner anchors can add a few bytes on pathological noise images —
    /// the realistic-content saving is asserted by the integration test
    /// `dc_drop_always_saves_bytes`.
    #[test]
    fn dc_drop_invariants(image in arbitrary_image(4)) {
        let coeffs = CoeffImage::from_image(&image, 50, ChromaSampling::Cs444);
        let dropped_all = coeffs.drop_dc(DcDropMode::All);
        let dropped = coeffs.drop_dc(DcDropMode::KeepCorners);
        let full = encode_coefficients(&coeffs).expect("encodable").len();
        let small = encode_coefficients(&dropped_all).expect("encodable").len();
        // A zero differential is the cheapest DC symbol, but zeroing DC also
        // shifts the bit alignment of every following AC codeword, which can
        // create (or remove) 0xFF bytes that need a stuffed 0x00 — so allow a
        // small stuffing-sized slack instead of strict monotonicity.
        let slack = 2 + full / 64;
        prop_assert!(
            small <= full + slack,
            "all-drop grew the stream beyond stuffing slack: {} > {} + {}",
            small,
            full,
            slack
        );
        for c in 0..3 {
            for by in 0..coeffs.plane(c).blocks_y() {
                for bx in 0..coeffs.plane(c).blocks_x() {
                    prop_assert_eq!(
                        &coeffs.plane(c).block(bx, by)[1..],
                        &dropped.plane(c).block(bx, by)[1..]
                    );
                    prop_assert_eq!(
                        &coeffs.plane(c).block(bx, by)[1..],
                        &dropped_all.plane(c).block(bx, by)[1..]
                    );
                }
            }
        }
    }

    /// Recovery methods are total: any content in, valid image out with
    /// the original dimensions.
    #[test]
    fn recovery_is_total(image in arbitrary_image(3)) {
        use dcdiff::baselines::{DcRecovery, Icip2022, SmartCom2019, Tip2006};
        let coeffs = CoeffImage::from_image(&image, 50, ChromaSampling::Cs444);
        let dropped = coeffs.drop_dc(DcDropMode::KeepCorners);
        for method in [
            Box::new(Tip2006::new()) as Box<dyn DcRecovery>,
            Box::new(SmartCom2019::new()),
            Box::new(Icip2022::new()),
        ] {
            let out = method.recover(&dropped);
            prop_assert_eq!(out.dims(), image.dims());
            for c in 0..3 {
                prop_assert!(out.plane(c).min() >= 0.0);
                prop_assert!(out.plane(c).max() <= 255.0);
            }
        }
    }

    /// The Eq. 3 mask coverage is monotone in the threshold.
    #[test]
    fn mask_coverage_monotone(image in arbitrary_image(3), t1 in 0.0f32..20.0, t2 in 0.0f32..20.0) {
        use dcdiff::core::mask::{high_frequency_mask, mask_coverage};
        let coeffs = CoeffImage::from_image(&image, 50, ChromaSampling::Cs444);
        let x_tilde = coeffs.drop_dc(DcDropMode::All).to_image();
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let c_lo = mask_coverage(&high_frequency_mask(&x_tilde, lo));
        let c_hi = mask_coverage(&high_frequency_mask(&x_tilde, hi));
        prop_assert!(c_lo <= c_hi + 1e-6);
    }
}
