//! Finite-difference gradient checking utilities.
//!
//! Used by the test suites of every crate that builds differentiable
//! computations on [`Tensor`]: construct the loss twice with a perturbed
//! input and compare the central difference against the autograd result.

use crate::Tensor;

/// Result of a gradient check: the largest absolute and relative error
/// across the checked coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradCheckReport {
    /// Maximum absolute difference between analytic and numeric gradient.
    pub max_abs_err: f32,
    /// Maximum relative difference (normalised by magnitudes + 1).
    pub max_rel_err: f32,
    /// Number of coordinates compared.
    pub checked: usize,
}

impl GradCheckReport {
    /// Whether the check passed at the given relative tolerance.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_rel_err <= tol
    }
}

/// Compare the autograd gradient of `f` at `x0` against central finite
/// differences.
///
/// `f` must build a *scalar* loss from a constant tensor of shape
/// `shape`. `indices` selects which coordinates to probe (probing all of
/// a large tensor is slow); pass `&[]` to probe every coordinate.
///
/// # Panics
///
/// Panics if `f` returns a non-scalar tensor or an index is out of
/// bounds.
///
/// # Example
///
/// ```
/// use dcdiff_tensor::gradcheck::check_gradient;
///
/// let report = check_gradient(
///     &[4],
///     &[0.5, -1.0, 2.0, 0.0],
///     &[],
///     1e-2,
///     |x| x.square().sum_all(),
/// );
/// assert!(report.passes(1e-2), "{report:?}");
/// ```
pub fn check_gradient(
    shape: &[usize],
    x0: &[f32],
    indices: &[usize],
    step: f32,
    f: impl Fn(&Tensor) -> Tensor,
) -> GradCheckReport {
    assert_eq!(
        shape.iter().product::<usize>(),
        x0.len(),
        "x0 must match shape"
    );
    // analytic gradient
    let x = Tensor::param(shape.to_vec(), x0.to_vec());
    let loss = f(&x);
    assert_eq!(loss.len(), 1, "loss must be scalar");
    loss.backward();
    let analytic = x.grad_vec();

    let probe: Vec<usize> = if indices.is_empty() {
        (0..x0.len()).collect()
    } else {
        indices.to_vec()
    };
    let mut report = GradCheckReport {
        max_abs_err: 0.0,
        max_rel_err: 0.0,
        checked: probe.len(),
    };
    for &i in &probe {
        assert!(i < x0.len(), "probe index out of bounds");
        let mut plus = x0.to_vec();
        plus[i] += step;
        let mut minus = x0.to_vec();
        minus[i] -= step;
        let fp = f(&Tensor::from_vec(shape.to_vec(), plus)).item();
        let fm = f(&Tensor::from_vec(shape.to_vec(), minus)).item();
        let numeric = (fp - fm) / (2.0 * step);
        let abs = (numeric - analytic[i]).abs();
        let rel = abs / (numeric.abs() + analytic[i].abs() + 1.0);
        report.max_abs_err = report.max_abs_err.max(abs);
        report.max_rel_err = report.max_rel_err.max(rel);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;

    #[test]
    fn passes_on_polynomial() {
        let report = check_gradient(&[3], &[1.0, -2.0, 0.5], &[], 1e-3, |x| {
            x.square().mul(x).sum_all() // x^3
        });
        assert!(report.passes(1e-2), "{report:?}");
        assert_eq!(report.checked, 3);
    }

    #[test]
    fn catches_wrong_gradients() {
        // detach() deliberately breaks the gradient: check must fail
        let report = check_gradient(&[2], &[1.0, 2.0], &[], 1e-3, |x| {
            x.detach().square().sum_all().add(&x.sum_all())
        });
        assert!(!report.passes(1e-3), "detached path must be flagged");
    }

    #[test]
    fn subset_probing() {
        let report = check_gradient(&[8], &[0.3; 8], &[0, 7], 1e-3, |x| x.square().sum_all());
        assert_eq!(report.checked, 2);
        assert!(report.passes(1e-2));
    }

    #[test]
    fn composite_network_gradients() {
        let mut rng = seeded_rng(0);
        let w = Tensor::randn(vec![4, 4], 0.5, &mut rng);
        let x0 = Tensor::randn(vec![2, 4], 1.0, &mut rng).to_vec();
        let report = check_gradient(&[2, 4], &x0, &[], 1e-2, |x| {
            x.matmul(&w).silu().square().mean_all()
        });
        assert!(report.passes(2e-2), "{report:?}");
    }

    #[test]
    fn conv_and_norm_gradients() {
        let mut rng = seeded_rng(1);
        let k = Tensor::randn(vec![2, 1, 3, 3], 0.5, &mut rng);
        let gamma = Tensor::from_vec(vec![2], vec![1.2, 0.8]);
        let beta = Tensor::from_vec(vec![2], vec![0.1, -0.1]);
        let x0 = Tensor::randn(vec![1, 1, 4, 4], 1.0, &mut rng).to_vec();
        let report = check_gradient(&[1, 1, 4, 4], &x0, &[0, 5, 10, 15], 1e-2, |x| {
            x.conv2d(&k, 1, 1)
                .group_norm(1, &gamma, &beta, 1e-5)
                .silu()
                .mean_all()
        });
        assert!(report.passes(5e-2), "{report:?}");
    }
}
