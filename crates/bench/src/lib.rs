//! Experiment harness for reproducing every table and figure of the
//! DCDiff paper.
//!
//! Each `src/bin/tableN.rs` / `src/bin/figureN.rs` binary regenerates one
//! artifact of the paper's evaluation section; this library holds the
//! shared machinery: the method roster, model training with on-disk
//! checkpoint caching, and plain-text table rendering.
//!
//! Run e.g. `cargo run --release -p dcdiff-bench --bin table1 -- --quick`.
//!
//! # Example
//!
//! The roster machinery is usable directly — here the training-free
//! TIP-2006 ancestor recovers a DC-dropped encode of a synthetic scene:
//!
//! ```
//! use dcdiff_bench::{code_image, Method};
//! use dcdiff_data::{SceneGenerator, SceneKind};
//! use dcdiff_metrics::psnr;
//!
//! let image = SceneGenerator::new(SceneKind::Smooth, 48, 48).generate(1);
//! let (_coeffs, dropped, reference) = code_image(&image);
//! let ancestor = Method::Baseline(Box::new(dcdiff_baselines::Tip2006::new()));
//! let recovered = ancestor.recover(&dropped);
//! assert!(psnr(&reference, &recovered) > psnr(&reference, &dropped.to_image()));
//! ```

use std::path::PathBuf;

use dcdiff_baselines::{DcRecovery, Icip2022, SmartCom2019, Tii2021, Tip2006};
use dcdiff_core::{DcDiff, DcDiffConfig, RecoverOptions, TrainBudget};
use dcdiff_data::DatasetProfile;
use dcdiff_image::Image;
use dcdiff_jpeg::{ChromaSampling, CoeffImage, DcDropMode};
use dcdiff_tensor::serial::Checkpoint;

/// JPEG quality used throughout the paper's experiments (`Q_50`).
pub const QUALITY: u8 = 50;

/// Where cached model checkpoints live (the workspace-root `artifacts/`).
pub fn artifact_dir() -> PathBuf {
    let mut dir = std::env::current_dir().expect("cwd accessible");
    while !std::fs::read_to_string(dir.join("Cargo.toml"))
        .map(|s| s.contains("[workspace]"))
        .unwrap_or(false)
    {
        if !dir.pop() {
            dir = std::env::current_dir().expect("cwd accessible");
            break;
        }
    }
    let artifacts = dir.join("artifacts");
    std::fs::create_dir_all(&artifacts).ok();
    artifacts
}

/// Whether the process was invoked with `--quick` (reduced counts).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Parse `--flag value` style integer arguments.
pub fn arg_usize(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The mixed-content training corpus standing in for the paper's 300 K
/// OpenImages crops (all 96×96, deterministic).
pub fn training_corpus(quick: bool) -> Vec<Image> {
    let per = if quick { 2 } else { 6 };
    let mut images = Vec::new();
    for profile in [
        DatasetProfile::set14().with_dims(96, 96),
        DatasetProfile::kodak().with_dims(96, 96),
        DatasetProfile::urban100().with_dims(96, 96),
        DatasetProfile::inria().with_dims(96, 96),
    ] {
        images.extend(profile.with_count(per).generate(0xBA5E));
    }
    images
}

/// Training budget scaled to the run mode.
pub fn training_budget(quick: bool) -> TrainBudget {
    if quick {
        TrainBudget {
            stage1_steps: 60,
            ldm_steps: 60,
            mld_steps: 20,
            fmpp_steps: 10,
            batch: 2,
        }
    } else {
        TrainBudget {
            stage1_steps: 400,
            ldm_steps: 400,
            mld_steps: 150,
            fmpp_steps: 60,
            batch: 2,
        }
    }
}

/// Train (or load from the artifact cache) the DCDiff system.
pub fn dcdiff_system(quick: bool) -> DcDiff {
    let tag = if quick { "quick" } else { "full" };
    let path = artifact_dir().join(format!("dcdiff-{tag}.ckpt"));
    let mut system = DcDiff::new(DcDiffConfig::default(), 0xDCD1FF);
    let tel = dcdiff_telemetry::global();
    if let Ok(ckpt) = Checkpoint::load(&path) {
        if system.load(&ckpt).is_ok() {
            tel.info(format!(
                "[harness] loaded cached DCDiff checkpoint from {}",
                path.display()
            ));
            return system;
        }
    }
    tel.info(format!("[harness] training DCDiff ({tag} budget)..."));
    let corpus = training_corpus(quick);
    let report = system.train(&corpus, training_budget(quick), 0x5EED);
    tel.info(format!(
        "[harness] stage1 loss {:.4} -> {:.4}, ldm {:.4} -> {:.4}",
        report.stage1_losses.first().copied().unwrap_or(0.0),
        report.stage1_losses.last().copied().unwrap_or(0.0),
        report.ldm_losses.first().copied().unwrap_or(0.0),
        report.ldm_losses.last().copied().unwrap_or(0.0),
    ));
    system.save().save(&path).ok();
    system
}

/// Train (or load from cache) the TII-2021 learned baseline.
pub fn tii_baseline(quick: bool) -> Tii2021 {
    let tag = if quick { "quick" } else { "full" };
    let path = artifact_dir().join(format!("tii2021-{tag}.ckpt"));
    let mut method = Tii2021::new(0x7112021);
    let tel = dcdiff_telemetry::global();
    if let Ok(ckpt) = Checkpoint::load(&path) {
        if method.load(&ckpt).is_ok() {
            tel.info("[harness] loaded cached TII-2021 checkpoint");
            return method;
        }
    }
    tel.info(format!("[harness] training TII-2021 corrector ({tag} budget)..."));
    let corpus = training_corpus(quick);
    method.train(&corpus, QUALITY, if quick { 60 } else { 400 }, 0x7EAC);
    let mut ckpt = Checkpoint::new();
    method.save(&mut ckpt);
    ckpt.save(&path).ok();
    method
}

/// A recovery method under evaluation (the Table I roster).
pub enum Method {
    /// A statistical / learned baseline.
    Baseline(Box<dyn DcRecovery>),
    /// The DCDiff system with explicit options.
    DcDiff(Box<DcDiff>, RecoverOptions),
}

impl Method {
    /// Display name.
    pub fn name(&self) -> String {
        match self {
            Method::Baseline(m) => m.name().to_string(),
            Method::DcDiff(..) => "DCDiff".to_string(),
        }
    }

    /// Recover a DC-dropped coefficient image.
    pub fn recover(&self, dropped: &CoeffImage) -> Image {
        match self {
            Method::Baseline(m) => m.recover(dropped),
            Method::DcDiff(system, options) => system.recover_with(dropped, options),
        }
    }
}

/// The paper's Table I roster: three baselines plus DCDiff.
pub fn table1_roster(quick: bool) -> Vec<Method> {
    let system = dcdiff_system(quick);
    let mut options = RecoverOptions::from_config(system.config());
    if quick {
        options.ddim_steps = 10;
    }
    vec![
        Method::Baseline(Box::new(SmartCom2019::new())),
        Method::Baseline(Box::new(tii_baseline(quick))),
        Method::Baseline(Box::new(Icip2022::new())),
        Method::DcDiff(Box::new(system), options),
    ]
}

/// The TIP-2006 ancestor method (used by extension experiments).
pub fn ancestor_method() -> Method {
    Method::Baseline(Box::new(Tip2006::new()))
}

/// Code an image at the paper's settings and return
/// `(coeffs, dropped, jpeg_reference)`.
pub fn code_image(image: &Image) -> (CoeffImage, CoeffImage, Image) {
    let coeffs = CoeffImage::from_image(image, QUALITY, ChromaSampling::Cs444);
    let dropped = coeffs.drop_dc(DcDropMode::KeepCorners);
    let reference = coeffs.to_image();
    (coeffs, dropped, reference)
}

/// Render a plain-text table with a header row.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_owned: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_owned));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// The six evaluation profiles at experiment scale.
pub fn evaluation_profiles(quick: bool) -> Vec<DatasetProfile> {
    let profiles = dcdiff_data::all_profiles();
    if quick {
        profiles.into_iter().map(|p| p.with_count(2)).collect()
    } else {
        profiles.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_16_aligned_and_nonempty() {
        let corpus = training_corpus(true);
        assert!(!corpus.is_empty());
        for img in &corpus {
            assert_eq!(img.width() % 16, 0);
            assert_eq!(img.height() % 16, 0);
        }
    }

    #[test]
    fn render_table_aligns_columns() {
        let table = render_table(
            "demo",
            &["a", "longer"],
            &[
                vec!["x".into(), "y".into()],
                vec!["wide cell".into(), "z".into()],
            ],
        );
        assert!(table.contains("demo"));
        assert!(table.contains("wide cell"));
    }

    #[test]
    fn code_image_produces_consistent_triple() {
        let img = dcdiff_data::SceneGenerator::new(dcdiff_data::SceneKind::Smooth, 32, 32)
            .generate(0);
        let (coeffs, dropped, reference) = code_image(&img);
        assert_eq!(coeffs.plane(0).blocks_x(), dropped.plane(0).blocks_x());
        assert_eq!(reference.dims(), (32, 32));
        assert_eq!(dropped.plane(0).dc(1, 1), 0);
    }

    #[test]
    fn quick_profiles_are_small() {
        for p in evaluation_profiles(true) {
            assert_eq!(p.count(), 2);
        }
    }
}
