//! Vendored, std-only stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, implementing the API subset the DCDiff workspace uses:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]` and `arg in strategy`
//!   bindings), [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`];
//! * [`strategy::Strategy`] with `prop_map`, implemented for ranges, tuples and
//!   `any::<T>()`;
//! * [`collection::vec`] and [`sample::select`];
//! * [`test_runner::ProptestConfig`] (`with_cases`).
//!
//! The build container has no registry access, so the workspace vendors this
//! shim instead of the real crate. Semantics are deliberately simpler than
//! upstream: inputs are random but **deterministic per test name**, failures
//! report the failing case without shrinking, and `proptest-regressions`
//! files are ignored.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng as _;

    /// A recipe for generating values of type [`Strategy::Value`].
    ///
    /// Unlike upstream there is no shrinking tree: a strategy is just a
    /// sampler over a deterministic RNG.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.sample(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod arbitrary {
    //! `any::<T>()` — the whole-type uniform strategy.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng as _;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen::<$t>()
                }
            }
        )*};
    }
    impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool);

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng as _;

    /// Length specification for [`vec()`]: a fixed length or a length range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec length range");
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `Vec` strategy: `size` is a fixed `usize` or a `usize` range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod sample {
    //! Sampling from explicit value sets.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng as _;

    /// Strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }

    /// Uniformly select one of the given options.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }
}

pub mod test_runner {
    //! Case execution: configuration, RNG and the runner driving each test.

    use rand::SeedableRng;

    /// RNG handed to strategies — deterministic per (test name, case index).
    pub type TestRng = rand::rngs::StdRng;

    /// Subset of upstream `ProptestConfig`: only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is retried.
        Reject,
        /// A `prop_assert*!` failed; the whole test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// Construct a failure with a rendered message.
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }
    }

    /// Deterministic per-test seed: FNV-1a over the test name.
    fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Drive `case` until `config.cases` cases pass.
    ///
    /// # Panics
    ///
    /// Panics when a case fails, or when too many cases are rejected by
    /// `prop_assume!` (more than `10 × cases + 100`, as upstream).
    pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = seed_for(name);
        let max_rejects = 10 * u64::from(config.cases) + 100;
        let mut rejects = 0u64;
        let mut passed = 0u64;
        let mut index = 0u64;
        while passed < u64::from(config.cases) {
            let mut rng = TestRng::seed_from_u64(base.wrapping_add(index));
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejects += 1;
                    assert!(
                        rejects <= max_rejects,
                        "property '{name}': too many prop_assume! rejections \
                         ({rejects} rejected, {passed} passed)"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "property '{name}' failed at case #{index} \
                         (seed {base:#x}+{index}): {msg}"
                    );
                }
            }
            index += 1;
        }
    }
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude::*`.

    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ..) { .. }` becomes a
/// `#[test]` that samples inputs and runs the body for the configured number
/// of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal muncher for [`proptest!`] — one test function per step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    { $body }
                    ::core::result::Result::Ok(())
                })()
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fallible assertion inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fallible equality assertion inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Fallible inequality assertion inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, $($fmt)+);
    }};
}

/// Reject the current case (inputs did not meet a precondition).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -1.5f32..=1.5, b in any::<bool>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.5..=1.5).contains(&y));
            prop_assert!(u8::from(b) <= 1);
        }

        #[test]
        fn tuples_and_map(v in (1u8..=4, 1u8..=4).prop_map(|(a, b)| a as u16 * b as u16)) {
            prop_assert!((1..=16).contains(&v));
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(any::<u8>(), 0..5), w in prop::collection::vec(0i32..3, 4)) {
            prop_assert!(v.len() < 5);
            prop_assert_eq!(w.len(), 4);
            prop_assert!(w.iter().all(|&x| (0..3).contains(&x)));
        }

        #[test]
        fn select_picks_an_option(k in prop::sample::select(vec![1usize, 3, 5])) {
            prop_assert!(k == 1 || k == 3 || k == 5);
            prop_assert_ne!(k, 2);
        }

        #[test]
        fn assume_rejects_cases(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn failing_property_panics_with_case_info() {
        let result = std::panic::catch_unwind(|| {
            crate::test_runner::run_cases(
                &ProptestConfig::with_cases(8),
                "always_fails",
                |_rng| Err(TestCaseError::fail("boom".to_string())),
            );
        });
        let err = result.expect_err("must panic");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("always_fails") && msg.contains("boom"), "{msg}");
    }
}
