//! Named counters, gauges and log₂-bucketed latency histograms.
//!
//! All recording paths are lock-free atomics so submitters and workers never
//! contend; only registry lookups (get-or-create by name, done once per
//! handle) and the JSON export take a lock. Histogram quantiles interpolate
//! linearly inside the matching power-of-two bucket and clamp to the observed
//! min/max, so single-sample and all-equal distributions report exactly.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::json::escape_into;

/// Monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Fresh unregistered counter (registry handles come from
    /// [`Registry::counter`]).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins signed gauge.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Fresh unregistered gauge.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Set the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raise the value to at least `v` (high-water semantics).
    pub fn fetch_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket 0 holds zeros, bucket `k ≥ 1` holds
/// values in `[2^(k-1), 2^k - 1]`, up to bucket 64 for the top of the `u64`
/// range.
pub const BUCKETS: usize = 65;

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// Lock-free log₂-bucketed histogram of `u64` samples (latencies in
/// microseconds, batch sizes, ...).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }))
    }
}

/// Bucket index of a sample.
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive `[lo, hi]` value range of bucket `k` (see [`BUCKETS`]).
pub fn bucket_bounds(k: usize) -> (u64, u64) {
    if k == 0 {
        (0, 0)
    } else if k >= 64 {
        (1 << 63, u64::MAX)
    } else {
        (1 << (k - 1), (1 << k) - 1)
    }
}

impl Histogram {
    /// Fresh unregistered histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&self, value: u64) {
        let inner = &self.0;
        inner.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(value, Ordering::Relaxed);
        inner.min.fetch_min(value, Ordering::Relaxed);
        inner.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record a duration in microseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Approximate `p`-quantile (`p` in `[0, 1]`); `None` when empty.
    /// See [`HistogramSnapshot::quantile`].
    pub fn quantile(&self, p: f64) -> Option<u64> {
        self.snapshot().quantile(p)
    }

    /// Point-in-time copy for consistent multi-quantile reads.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &self.0;
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| inner.buckets[i].load(Ordering::Relaxed)),
            count: inner.count.load(Ordering::Relaxed),
            sum: inner.sum.load(Ordering::Relaxed),
            min: inner.min.load(Ordering::Relaxed),
            max: inner.max.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of a [`Histogram`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`BUCKETS`]).
    pub buckets: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Approximate `p`-quantile (`p` clamped to `[0, 1]`); `None` when empty.
    ///
    /// Uses the fractional rank `p · (n − 1)`, interpolated linearly inside
    /// the bucket that contains it and clamped to the observed min/max — so
    /// an all-equal sample set reports its exact value at every `p`, and the
    /// worst-case error elsewhere is one power-of-two bucket width.
    pub fn quantile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 1.0);
        if p == 0.0 {
            return Some(self.min);
        }
        if p == 1.0 {
            return Some(self.max);
        }
        let target = p * (self.count - 1) as f64;
        let mut cum = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if target < (cum + c) as f64 {
                let (lo, hi) = bucket_bounds(k);
                let pos = (target - cum as f64) / c as f64;
                let value = lo as f64 + pos * (hi - lo) as f64;
                return Some((value as u64).clamp(self.min, self.max));
            }
            cum += c;
        }
        Some(self.max)
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The samples recorded between `earlier` and `self` (two snapshots of
    /// the same histogram, `earlier` taken first) as a standalone snapshot —
    /// the primitive behind rolling-window quantiles.
    ///
    /// Bucket counts, `count` and `sum` subtract exactly. `min`/`max` are
    /// not recoverable from cumulative extrema, so they are approximated
    /// from the bounds of the lowest/highest bucket that gained samples,
    /// clamped into the cumulative `[min, max]` range; quantiles of the
    /// delta therefore stay within one power-of-two bucket of the truth,
    /// same as the cumulative guarantee.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let buckets: [u64; BUCKETS] =
            std::array::from_fn(|i| self.buckets[i].saturating_sub(earlier.buckets[i]));
        let mut min = u64::MAX;
        let mut max = 0u64;
        for (k, &c) in buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let (lo, hi) = bucket_bounds(k);
            if min == u64::MAX {
                min = lo.max(self.min);
            }
            max = hi.min(self.max).max(lo);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            min,
            max,
        }
    }
}

/// Point-in-time plain-data copy of an entire [`Registry`], the unit the
/// rolling-window machinery ([`crate::windows`]) stores per epoch and the
/// Prometheus renderer ([`crate::prometheus`]) reads.
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Name-keyed registry of counters, gauges and histograms.
///
/// `counter`/`gauge`/`histogram` get-or-create by name and hand back a
/// cloneable handle sharing the underlying atomics, so hot paths resolve
/// their metrics once and never touch the registry lock again.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Registry {
    /// Fresh empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter registered under `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        lock(&self.counters)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        lock(&self.gauges)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The histogram registered under `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        lock(&self.histograms)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Point-in-time copy of every registered metric. Each section is read
    /// under its own lock, so the snapshot is per-metric consistent (the
    /// same relaxed-atomics guarantee recording itself gives).
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: lock(&self.counters)
                .iter()
                .map(|(name, c)| (name.clone(), c.get()))
                .collect(),
            gauges: lock(&self.gauges)
                .iter()
                .map(|(name, g)| (name.clone(), g.get()))
                .collect(),
            histograms: lock(&self.histograms)
                .iter()
                .map(|(name, h)| (name.clone(), h.snapshot()))
                .collect(),
        }
    }

    /// Export everything as one pretty-printed JSON object with `counters`,
    /// `gauges` and `histograms` sections; histograms carry count/sum/
    /// min/max, p50/p90/p99 and their non-empty `[lo, hi, count]` buckets.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let counters = lock(&self.counters);
        for (i, (name, c)) in counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            escape_into(&mut out, name);
            let _ = write!(out, ": {}", c.get());
        }
        if !counters.is_empty() {
            out.push('\n');
            out.push_str("  ");
        }
        drop(counters);
        out.push_str("},\n  \"gauges\": {");
        let gauges = lock(&self.gauges);
        for (i, (name, g)) in gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            escape_into(&mut out, name);
            let _ = write!(out, ": {}", g.get());
        }
        if !gauges.is_empty() {
            out.push('\n');
            out.push_str("  ");
        }
        drop(gauges);
        out.push_str("},\n  \"histograms\": {");
        let histograms = lock(&self.histograms);
        for (i, (name, h)) in histograms.iter().enumerate() {
            let snap = h.snapshot();
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            escape_into(&mut out, name);
            let _ = write!(
                out,
                ": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [",
                snap.count,
                snap.sum,
                if snap.count == 0 { 0 } else { snap.min },
                snap.max,
                snap.quantile(0.50).unwrap_or(0),
                snap.quantile(0.90).unwrap_or(0),
                snap.quantile(0.99).unwrap_or(0),
            );
            let mut first = true;
            for (k, &c) in snap.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                let (lo, hi) = bucket_bounds(k);
                if !first {
                    out.push_str(", ");
                }
                first = false;
                let _ = write!(out, "[{lo}, {hi}, {c}]");
            }
            out.push_str("]}");
        }
        if !histograms.is_empty() {
            out.push('\n');
            out.push_str("  ");
        }
        drop(histograms);
        out.push_str("}\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_matches_bounds() {
        for v in [0u64, 1, 2, 3, 4, 7, 8, 255, 256, u64::MAX] {
            let k = bucket_index(v);
            let (lo, hi) = bucket_bounds(k);
            assert!(v >= lo && v <= hi, "{v} outside [{lo}, {hi}] of bucket {k}");
        }
    }

    #[test]
    fn registry_handles_share_state() {
        let reg = Registry::new();
        reg.counter("a").inc();
        reg.counter("a").add(2);
        assert_eq!(reg.counter("a").get(), 3);
        reg.gauge("g").set(-5);
        assert_eq!(reg.gauge("g").get(), -5);
        reg.histogram("h").record(7);
        assert_eq!(reg.histogram("h").count(), 1);
    }

    #[test]
    fn delta_since_isolates_window_samples() {
        let h = Histogram::new();
        for v in [10u64, 12, 11] {
            h.record(v);
        }
        let earlier = h.snapshot();
        for v in [5000u64, 6000, 7000, 8000] {
            h.record(v);
        }
        let delta = h.snapshot().delta_since(&earlier);
        assert_eq!(delta.count, 4);
        assert_eq!(delta.sum, 26_000);
        // Window quantiles reflect only the burst, not the earlier samples.
        assert!(delta.quantile(0.5).unwrap() >= 4096, "{:?}", delta.quantile(0.5));
        assert!(delta.min >= 4096 && delta.max <= 8191);
        // An empty delta behaves like an empty histogram.
        let same = h.snapshot().delta_since(&h.snapshot());
        assert_eq!(same.count, 0);
        assert_eq!(same.quantile(0.99), None);
    }

    #[test]
    fn registry_snapshot_copies_all_sections() {
        let reg = Registry::new();
        reg.counter("c").add(3);
        reg.gauge("g").set(-2);
        reg.histogram("h").record(100);
        let snap = reg.snapshot();
        assert_eq!(snap.counters.get("c"), Some(&3));
        assert_eq!(snap.gauges.get("g"), Some(&-2));
        assert_eq!(snap.histograms.get("h").map(|h| h.count), Some(1));
        // The snapshot is detached from later recording.
        reg.counter("c").inc();
        assert_eq!(snap.counters.get("c"), Some(&3));
    }

    #[test]
    fn json_export_is_flat_parseable_per_section() {
        let reg = Registry::new();
        reg.counter("jobs.completed").add(4);
        reg.gauge("queue.depth").set(2);
        reg.histogram("wait_us").record(100);
        let json = reg.to_json();
        assert!(json.contains("\"jobs.completed\": 4"));
        assert!(json.contains("\"queue.depth\": 2"));
        assert!(json.contains("\"wait_us\""));
        assert!(json.contains("\"p50\": 100"));
    }
}
