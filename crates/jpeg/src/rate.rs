//! Rate-controlled encoding: hit a byte budget by searching the quality
//! factor.
//!
//! IoT uplinks are provisioned in bytes, not quality factors; this module
//! provides the sender-side policy the paper's scenario implies — encode
//! the largest quality that fits the budget, optionally after DC dropping
//! and/or with optimised tables.

use dcdiff_image::Image;

use crate::codec::{encode_coefficients, ChromaSampling, JpegEncoder};
use crate::coeff::DcDropMode;
use crate::optimize::encode_coefficients_optimized;
use crate::JpegError;

/// Options for [`encode_to_budget`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateControl {
    /// Byte budget the coded stream must not exceed.
    pub max_bytes: usize,
    /// Chroma sampling to encode with.
    pub sampling: ChromaSampling,
    /// Drop DC coefficients (keeping the corner anchors) before coding.
    pub drop_dc: bool,
    /// Use two-pass optimised Huffman tables.
    pub optimize: bool,
}

impl RateControl {
    /// Budget-only constructor with 4:4:4, no dropping, standard tables.
    pub fn new(max_bytes: usize) -> Self {
        Self {
            max_bytes,
            sampling: ChromaSampling::Cs444,
            drop_dc: false,
            optimize: false,
        }
    }
}

/// Result of a rate-controlled encode.
#[derive(Debug, Clone, PartialEq)]
pub struct RateControlled {
    /// The coded stream (within budget).
    pub bytes: Vec<u8>,
    /// The quality factor selected.
    pub quality: u8,
}

/// Encode `image` at the highest quality whose coded size fits
/// `control.max_bytes` (binary search over the IJG quality factor,
/// monotone in coded size to within entropy-coding noise).
///
/// # Errors
///
/// Returns a [`crate::JpegErrorKind::Unsupported`] error when even
/// quality 1 exceeds the budget, and propagates encoder errors.
///
/// # Example
///
/// ```
/// use dcdiff_image::{ColorSpace, Image};
/// use dcdiff_jpeg::rate::{encode_to_budget, RateControl};
///
/// let img = Image::filled(64, 64, ColorSpace::Rgb, 130.0);
/// let out = encode_to_budget(&img, RateControl::new(900))?;
/// assert!(out.bytes.len() <= 900);
/// # Ok::<(), dcdiff_jpeg::JpegError>(())
/// ```
pub fn encode_to_budget(image: &Image, control: RateControl) -> Result<RateControlled, JpegError> {
    let encode_at = |quality: u8| -> Result<Vec<u8>, JpegError> {
        let encoder = JpegEncoder::new(quality).with_sampling(control.sampling);
        let mut coeffs = encoder.to_coefficients(image);
        if control.drop_dc {
            coeffs = coeffs.drop_dc(DcDropMode::KeepCorners);
        }
        if control.optimize {
            encode_coefficients_optimized(&coeffs)
        } else {
            encode_coefficients(&coeffs)
        }
    };
    // binary search the largest fitting quality in 1..=100
    let mut lo = 1u8;
    let mut hi = 100u8;
    let mut best: Option<RateControlled> = None;
    while lo <= hi {
        let mid = lo + (hi - lo) / 2;
        let bytes = encode_at(mid)?;
        if bytes.len() <= control.max_bytes {
            best = Some(RateControlled {
                bytes,
                quality: mid,
            });
            if mid == 100 {
                break;
            }
            lo = mid + 1;
        } else {
            if mid == 1 {
                break;
            }
            hi = mid - 1;
        }
    }
    best.ok_or_else(|| {
        JpegError::unsupported(format!(
            "budget of {} bytes unreachable even at quality 1",
            control.max_bytes
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcdiff_data::{SceneGenerator, SceneKind};
    use crate::codec::JpegDecoder;

    fn scene() -> Image {
        SceneGenerator::new(SceneKind::Natural, 64, 64).generate(0)
    }

    #[test]
    fn fits_the_budget_and_maximises_quality() {
        let img = scene();
        let loose = encode_to_budget(&img, RateControl::new(100_000)).unwrap();
        assert_eq!(loose.quality, 100, "unbounded budget should pick Q100");
        let tight_budget = loose.bytes.len() / 2;
        let tight = encode_to_budget(&img, RateControl::new(tight_budget)).unwrap();
        assert!(tight.bytes.len() <= tight_budget);
        assert!(tight.quality < 100);
        // one quality step up must overflow the budget (maximality), up to
        // entropy non-monotonicity of a single step
        if tight.quality < 99 {
            let encoder = JpegEncoder::new(tight.quality + 2);
            let bigger = encoder.encode(&img).unwrap();
            assert!(
                bigger.len() > tight_budget,
                "quality {} should not also fit",
                tight.quality + 2
            );
        }
    }

    #[test]
    fn impossible_budget_is_an_error() {
        let img = scene();
        assert!(encode_to_budget(&img, RateControl::new(10)).is_err());
    }

    #[test]
    fn dropping_dc_raises_the_affordable_quality() {
        let img = scene();
        let budget = JpegEncoder::new(50).encode(&img).unwrap().len();
        let plain = encode_to_budget(&img, RateControl::new(budget)).unwrap();
        let dropped = encode_to_budget(
            &img,
            RateControl {
                drop_dc: true,
                ..RateControl::new(budget)
            },
        )
        .unwrap();
        assert!(
            dropped.quality >= plain.quality,
            "dropping DC must afford at least the same quality: {} vs {}",
            dropped.quality,
            plain.quality
        );
    }

    #[test]
    fn optimised_tables_raise_the_affordable_quality() {
        let img = scene();
        let budget = JpegEncoder::new(40).encode(&img).unwrap().len();
        let plain = encode_to_budget(&img, RateControl::new(budget)).unwrap();
        let optimised = encode_to_budget(
            &img,
            RateControl {
                optimize: true,
                ..RateControl::new(budget)
            },
        )
        .unwrap();
        assert!(optimised.quality >= plain.quality);
        // the stream still decodes
        let decoded = JpegDecoder::decode(&optimised.bytes).unwrap();
        assert_eq!(decoded.dims(), (64, 64));
    }
}
