//! Regenerates the committed fault-corpus fixtures under
//! `tests/fixtures/faults/` — one file per [`dcdiff_faults::FaultClass`].
//!
//! The fixtures pin the decoder-hardening contract outside proptest: a
//! regression test decodes each committed file and asserts a typed error.
//! Everything here is deterministic (fixed reference stream, fixed seeds),
//! so rerunning the tool reproduces the exact committed bytes:
//!
//! ```text
//! cargo run -p dcdiff-faults --bin fault_fixtures -- tests/fixtures/faults
//! ```

use dcdiff_faults::{corpus, marker_boundaries, reference_stream, FaultClass};

fn main() {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "tests/fixtures/faults".to_string());
    std::fs::create_dir_all(&dir).expect("create fixture directory");

    let bytes = reference_stream(48, 32, 50).expect("reference stream");

    // Marker truncation: cut immediately before the SOS marker, the deepest
    // header-boundary cut (everything after it is entropy-coded payload).
    let sos = bytes
        .windows(2)
        .position(|w| w == [0xFF, 0xDA])
        .expect("reference stream has a scan");
    assert!(marker_boundaries(&bytes).contains(&sos));
    write(&dir, FaultClass::MarkerTruncation, &bytes[..sos]);

    // The randomised families: for each class, the first corpus case (under
    // the base seed the regression test documents) that actually fails to
    // decode — some bit flips land in tolerated AC magnitudes.
    for class in [
        FaultClass::ScanTruncation,
        FaultClass::BitFlip,
        FaultClass::LengthCorruption,
    ] {
        let case = corpus(&bytes, 0xF1C5, 120)
            .into_iter()
            .find(|c| c.class == class && dcdiff_jpeg::JpegDecoder::decode(&c.bytes).is_err())
            .expect("corpus produces a failing case per randomised class");
        write(&dir, class, &case.bytes);
    }
}

fn write(dir: &str, class: FaultClass, bytes: &[u8]) {
    let path = format!("{dir}/{class}.jpg");
    std::fs::write(&path, bytes).expect("write fixture");
    println!("{path}: {} bytes", bytes.len());
}
