//! Rolling-window metric views built from periodic registry snapshots.
//!
//! Cumulative-since-start counters and histograms answer "what happened
//! ever"; operators ask "what is happening *now*". Rather than adding a
//! second, time-aware recording path to the lock-free hot path, a ticker
//! (the server's, or any caller of [`WindowedMetrics::tick`]) takes one
//! [`RegistrySnapshot`] per epoch and keeps them in a bounded ring. A
//! window view is then pure arithmetic over two snapshots:
//!
//! * counter **rate** = `(newest − baseline) / elapsed` per second;
//! * windowed **histogram** = bucket-wise difference
//!   ([`HistogramSnapshot::delta_since`]), giving true windowed quantiles
//!   (p99 over the last 10 s, not since process start);
//! * gauges are instantaneous by nature and pass through unchanged.
//!
//! The baseline for a window of length `w` is the newest snapshot at least
//! `w` old; early in life (ring shorter than `w`) the oldest snapshot
//! serves, and the view reports the span it actually covers. Recording
//! paths are untouched — windows cost one registry walk per epoch, off the
//! request path.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::metrics::{HistogramSnapshot, Registry, RegistrySnapshot};

/// One stored epoch: when it was taken and what the registry held.
#[derive(Debug, Clone)]
struct Epoch {
    at: Instant,
    snapshot: RegistrySnapshot,
}

/// Ring of periodic registry snapshots serving rolling-window views.
#[derive(Debug)]
pub struct WindowedMetrics {
    windows: Vec<Duration>,
    /// Oldest-first ring, bounded to cover the longest window plus slack.
    ring: Mutex<VecDeque<Epoch>>,
    capacity: usize,
}

impl WindowedMetrics {
    /// Windows of the given lengths, fed by one snapshot per `epoch` tick.
    /// Capacity is sized so the longest window always has a baseline even
    /// with jittery tickers; both inputs are clamped to sane minimums.
    pub fn new(epoch: Duration, windows: &[Duration]) -> Self {
        let epoch = epoch.max(Duration::from_millis(1));
        let mut ws: Vec<Duration> = windows
            .iter()
            .copied()
            .filter(|w| !w.is_zero())
            .collect();
        ws.sort();
        ws.dedup();
        let longest = ws.last().copied().unwrap_or(epoch);
        let capacity = (longest.as_secs_f64() / epoch.as_secs_f64()).ceil() as usize + 2;
        WindowedMetrics {
            windows: ws,
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
        }
    }

    /// The configured window lengths, shortest first.
    pub fn windows(&self) -> &[Duration] {
        &self.windows
    }

    /// Take one snapshot of `registry` now and append it to the ring,
    /// evicting the oldest epoch when full.
    pub fn tick(&self, registry: &Registry) {
        let epoch = Epoch {
            at: Instant::now(),
            snapshot: registry.snapshot(),
        };
        let mut ring = self
            .ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if ring.len() >= self.capacity {
            ring.pop_front();
        }
        ring.push_back(epoch);
    }

    /// The rolling view over the newest snapshots spanning `window`, or
    /// `None` before two epochs exist (no interval to difference yet).
    pub fn view(&self, window: Duration) -> Option<WindowView> {
        let ring = self
            .ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let newest = ring.back()?;
        // Newest snapshot at least `window` old; else the oldest we have.
        let baseline = ring
            .iter()
            .rev()
            .find(|e| newest.at.duration_since(e.at) >= window)
            .or_else(|| ring.front())?;
        let span = newest.at.duration_since(baseline.at);
        if span.is_zero() {
            return None;
        }
        let secs = span.as_secs_f64();
        let counter_rates = newest
            .snapshot
            .counters
            .iter()
            .map(|(name, &value)| {
                let before = baseline.snapshot.counters.get(name).copied().unwrap_or(0);
                (name.clone(), value.saturating_sub(before) as f64 / secs)
            })
            .collect();
        let histograms = newest
            .snapshot
            .histograms
            .iter()
            .map(|(name, snap)| {
                let delta = match baseline.snapshot.histograms.get(name) {
                    Some(before) => snap.delta_since(before),
                    None => snap.clone(),
                };
                (name.clone(), delta)
            })
            .collect();
        Some(WindowView {
            window,
            span,
            counter_rates,
            histograms,
        })
    }

    /// One view per configured window (windows without data yet omitted).
    pub fn views(&self) -> Vec<WindowView> {
        self.windows
            .iter()
            .filter_map(|&w| self.view(w))
            .collect()
    }
}

/// Rolling-window computation over two registry snapshots.
#[derive(Debug, Clone)]
pub struct WindowView {
    /// The requested window length.
    pub window: Duration,
    /// The interval the view actually covers (≤ `window` early in life).
    pub span: Duration,
    /// Per-second increase of each counter over the span.
    pub counter_rates: std::collections::BTreeMap<String, f64>,
    /// Samples recorded during the span, as standalone histograms (windowed
    /// quantiles via [`HistogramSnapshot::quantile`]).
    pub histograms: std::collections::BTreeMap<String, HistogramSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_and_quantiles_cover_only_the_window() {
        let reg = Registry::new();
        let wm = WindowedMetrics::new(Duration::from_millis(10), &[Duration::from_millis(30)]);

        // Slow phase: small latencies.
        for _ in 0..20 {
            reg.histogram("lat_us").record(100);
        }
        reg.counter("reqs").add(20);
        wm.tick(&reg);
        std::thread::sleep(Duration::from_millis(5));

        // Burst phase: much larger latencies after the first epoch.
        for _ in 0..50 {
            reg.histogram("lat_us").record(50_000);
        }
        reg.counter("reqs").add(50);
        std::thread::sleep(Duration::from_millis(5));
        wm.tick(&reg);

        let view = wm.view(Duration::from_millis(30)).expect("two epochs");
        assert!(view.span >= Duration::from_millis(5));
        // Only the burst is inside the window...
        let lat = &view.histograms["lat_us"];
        assert_eq!(lat.count, 50);
        assert!(lat.quantile(0.5).unwrap() > 10_000);
        // ...while the cumulative histogram still sees both phases.
        assert_eq!(reg.histogram("lat_us").count(), 70);
        let rate = view.counter_rates["reqs"];
        assert!(rate > 0.0, "rate {rate}");
    }

    #[test]
    fn view_needs_two_epochs_and_ring_stays_bounded() {
        let reg = Registry::new();
        let wm = WindowedMetrics::new(Duration::from_millis(1), &[Duration::from_millis(4)]);
        assert!(wm.view(Duration::from_millis(4)).is_none());
        wm.tick(&reg);
        assert!(wm.view(Duration::from_millis(4)).is_none(), "one epoch has no interval");
        for _ in 0..50 {
            std::thread::sleep(Duration::from_millis(1));
            wm.tick(&reg);
        }
        let ring_len = wm
            .ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len();
        assert!(ring_len <= wm.capacity, "{ring_len} > {}", wm.capacity);
        assert!(wm.view(Duration::from_millis(4)).is_some());
        assert_eq!(wm.views().len(), 1);
    }

    #[test]
    fn counters_new_in_the_window_rate_from_zero() {
        let reg = Registry::new();
        let wm = WindowedMetrics::new(Duration::from_millis(1), &[Duration::from_millis(10)]);
        wm.tick(&reg);
        std::thread::sleep(Duration::from_millis(2));
        reg.counter("late").add(8);
        reg.histogram("late_us").record(7);
        wm.tick(&reg);
        let view = wm.view(Duration::from_millis(10)).unwrap();
        assert!(view.counter_rates["late"] > 0.0);
        assert_eq!(view.histograms["late_us"].count, 1);
    }
}
