//! First-order optimizers over parameter lists.

use crate::Tensor;

/// Stochastic gradient descent with optional momentum.
///
/// # Example
///
/// ```
/// use dcdiff_tensor::{optim::Sgd, Tensor};
///
/// let w = Tensor::param(vec![1], vec![10.0]);
/// let mut opt = Sgd::new(vec![w.clone()], 0.1, 0.0);
/// for _ in 0..50 {
///     opt.zero_grad();
///     let loss = w.square().mean_all();
///     loss.backward();
///     opt.step();
/// }
/// assert!(w.to_vec()[0].abs() < 0.01);
/// ```
#[derive(Debug)]
pub struct Sgd {
    params: Vec<Tensor>,
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Create an SGD optimizer over `params`.
    pub fn new(params: Vec<Tensor>, lr: f32, momentum: f32) -> Self {
        let velocity = params.iter().map(|p| vec![0.0; p.len()]).collect();
        Self {
            params,
            lr,
            momentum,
            velocity,
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Set the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Clear every parameter's gradient.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    /// Apply one update using the accumulated gradients.
    pub fn step(&mut self) {
        for (p, vel) in self.params.iter().zip(&mut self.velocity) {
            let g = p.grad_vec();
            let mut data = p.to_vec();
            for i in 0..data.len() {
                vel[i] = self.momentum * vel[i] + g[i];
                data[i] -= self.lr * vel[i];
            }
            p.set_data(&data);
        }
    }
}

/// Adam optimizer (Kingma & Ba), the paper's training optimizer.
///
/// # Example
///
/// ```
/// use dcdiff_tensor::{optim::Adam, Tensor};
///
/// let w = Tensor::param(vec![1], vec![4.0]);
/// let mut opt = Adam::new(vec![w.clone()], 0.1);
/// for _ in 0..200 {
///     opt.zero_grad();
///     w.add_scalar(-2.0).square().mean_all().backward();
///     opt.step();
/// }
/// assert!((w.to_vec()[0] - 2.0).abs() < 0.05);
/// ```
#[derive(Debug)]
pub struct Adam {
    params: Vec<Tensor>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
    /// Optional global-norm gradient clip (disabled when `None`).
    clip_norm: Option<f32>,
}

impl Adam {
    /// Create an Adam optimizer with the standard betas `(0.9, 0.999)`.
    pub fn new(params: Vec<Tensor>, lr: f32) -> Self {
        Self::with_betas(params, lr, 0.9, 0.999)
    }

    /// Create an Adam optimizer with custom betas.
    pub fn with_betas(params: Vec<Tensor>, lr: f32, beta1: f32, beta2: f32) -> Self {
        let m = params.iter().map(|p| vec![0.0; p.len()]).collect();
        let v = params.iter().map(|p| vec![0.0; p.len()]).collect();
        Self {
            params,
            lr,
            beta1,
            beta2,
            eps: 1e-8,
            t: 0,
            m,
            v,
            clip_norm: None,
        }
    }

    /// Enable global-norm gradient clipping.
    pub fn set_clip_norm(&mut self, clip: f32) {
        self.clip_norm = Some(clip);
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Set the learning rate (for schedules / stage transitions).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Clear every parameter's gradient.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    /// Apply one Adam update with bias correction.
    pub fn step(&mut self) {
        self.t += 1;
        let mut grads: Vec<Vec<f32>> = self.params.iter().map(Tensor::grad_vec).collect();
        if let Some(clip) = self.clip_norm {
            let norm: f32 = grads
                .iter()
                .flat_map(|g| g.iter())
                .map(|&v| v * v)
                .sum::<f32>()
                .sqrt();
            if norm > clip {
                let scale = clip / norm;
                for g in &mut grads {
                    for v in g.iter_mut() {
                        *v *= scale;
                    }
                }
            }
        }
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, g), (m, v)) in self
            .params
            .iter()
            .zip(&grads)
            .zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            let mut data = p.to_vec();
            for i in 0..data.len() {
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g[i];
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g[i] * g[i];
                let mh = m[i] / bc1;
                let vh = v[i] / bc2;
                data[i] -= self.lr * mh / (vh.sqrt() + self.eps);
            }
            p.set_data(&data);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    #[test]
    fn sgd_converges_on_quadratic() {
        let w = Tensor::param(vec![2], vec![5.0, -3.0]);
        let target = Tensor::from_vec(vec![2], vec![1.0, 2.0]);
        let mut opt = Sgd::new(vec![w.clone()], 0.2, 0.5);
        for _ in 0..100 {
            opt.zero_grad();
            w.mse(&target).backward();
            opt.step();
        }
        let d = w.to_vec();
        assert!((d[0] - 1.0).abs() < 1e-3 && (d[1] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn adam_converges_on_linear_regression() {
        // fit y = 2x + 1 from four points
        let xs = [0.0f32, 1.0, 2.0, 3.0];
        let ys: Vec<f32> = xs.iter().map(|&x| 2.0 * x + 1.0).collect();
        let w = Tensor::param(vec![1], vec![0.0]);
        let b = Tensor::param(vec![1], vec![0.0]);
        let mut opt = Adam::new(vec![w.clone(), b.clone()], 0.05);
        for _ in 0..500 {
            opt.zero_grad();
            let mut loss = Tensor::zeros(vec![1]);
            for (&x, &y) in xs.iter().zip(&ys) {
                let pred = w.scale(x).add(&b);
                loss = loss.add(&pred.add_scalar(-y).square());
            }
            loss.backward();
            opt.step();
        }
        assert!((w.to_vec()[0] - 2.0).abs() < 0.05, "w={}", w.to_vec()[0]);
        assert!((b.to_vec()[0] - 1.0).abs() < 0.05, "b={}", b.to_vec()[0]);
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let w = Tensor::param(vec![1], vec![0.0]);
        let mut opt = Adam::new(vec![w.clone()], 1.0);
        opt.set_clip_norm(1e-3);
        opt.zero_grad();
        w.scale(1e6).square().mean_all().backward();
        opt.step();
        // step size is at most lr regardless of the huge gradient
        assert!(w.to_vec()[0].abs() <= 1.0 + 1e-4);
    }

    #[test]
    fn zero_grad_resets_accumulation() {
        let w = Tensor::param(vec![1], vec![1.0]);
        let opt = Sgd::new(vec![w.clone()], 0.1, 0.0);
        w.square().mean_all().backward();
        assert_ne!(w.grad_vec(), vec![0.0]);
        opt.zero_grad();
        assert_eq!(w.grad_vec(), vec![0.0]);
    }
}

/// Exponential moving average of a parameter set — the standard trick for
/// stabilising diffusion-model weights (the sampled network uses the EMA
/// copy rather than the raw optimisation iterates).
///
/// # Example
///
/// ```
/// use dcdiff_tensor::{optim::Ema, Tensor};
///
/// let w = Tensor::param(vec![1], vec![0.0]);
/// let mut ema = Ema::new(vec![w.clone()], 0.9);
/// w.set_data(&[1.0]);
/// ema.update();
/// assert!((ema.shadow()[0].to_vec()[0] - 0.1).abs() < 1e-6);
/// ```
#[derive(Debug)]
pub struct Ema {
    params: Vec<Tensor>,
    shadow: Vec<Tensor>,
    decay: f32,
}

impl Ema {
    /// Track `params` with the given decay (e.g. 0.999).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < decay < 1`.
    pub fn new(params: Vec<Tensor>, decay: f32) -> Self {
        assert!(
            (0.0..1.0).contains(&decay) && decay > 0.0,
            "decay must be in (0, 1)"
        );
        let shadow = params
            .iter()
            .map(|p| Tensor::from_vec(p.shape().to_vec(), p.to_vec()))
            .collect();
        Self {
            params,
            shadow,
            decay,
        }
    }

    /// Fold the current parameter values into the shadow copies:
    /// `shadow = decay * shadow + (1 - decay) * param`.
    pub fn update(&mut self) {
        for (p, s) in self.params.iter().zip(&self.shadow) {
            let pv = p.to_vec();
            let mut sv = s.to_vec();
            for (sv_i, pv_i) in sv.iter_mut().zip(&pv) {
                *sv_i = self.decay * *sv_i + (1.0 - self.decay) * pv_i;
            }
            s.set_data(&sv);
        }
    }

    /// Borrow the shadow (averaged) tensors.
    pub fn shadow(&self) -> &[Tensor] {
        &self.shadow
    }

    /// Copy the shadow values into the live parameters (switch the model
    /// to its EMA weights before sampling).
    pub fn apply_to_params(&self) {
        for (p, s) in self.params.iter().zip(&self.shadow) {
            p.set_data(&s.to_vec());
        }
    }

    /// Copy the live parameters into the shadow (restore point).
    pub fn sync_from_params(&mut self) {
        for (p, s) in self.params.iter().zip(&self.shadow) {
            s.set_data(&p.to_vec());
        }
    }
}

#[cfg(test)]
mod ema_tests {
    use super::*;

    #[test]
    fn shadow_lags_behind_parameters() {
        let w = Tensor::param(vec![2], vec![0.0, 0.0]);
        let mut ema = Ema::new(vec![w.clone()], 0.5);
        w.set_data(&[4.0, -2.0]);
        ema.update();
        assert_eq!(ema.shadow()[0].to_vec(), vec![2.0, -1.0]);
        ema.update();
        assert_eq!(ema.shadow()[0].to_vec(), vec![3.0, -1.5]);
    }

    #[test]
    fn apply_and_sync_round_trip() {
        let w = Tensor::param(vec![1], vec![1.0]);
        let mut ema = Ema::new(vec![w.clone()], 0.9);
        w.set_data(&[5.0]);
        ema.update();
        ema.apply_to_params();
        assert!((w.to_vec()[0] - 1.4).abs() < 1e-6);
        w.set_data(&[7.0]);
        ema.sync_from_params();
        assert_eq!(ema.shadow()[0].to_vec(), vec![7.0]);
    }

    #[test]
    #[should_panic(expected = "decay must be in")]
    fn invalid_decay_rejected() {
        let w = Tensor::param(vec![1], vec![0.0]);
        Ema::new(vec![w], 1.0);
    }
}
