//! Figure 2 — why dropping DC saves bits: the distribution of quantised
//! DC vs. AC coefficient magnitudes and the Huffman bit cost each
//! category pays.
//!
//! Usage: `cargo run --release -p dcdiff-bench --bin figure2 [-- --quick]`

use dcdiff_bench::{quick_mode, render_table, QUALITY};
use dcdiff_data::DatasetProfile;
use dcdiff_jpeg::bitstream::magnitude_code;
use dcdiff_jpeg::huffman::HuffmanTable;
use dcdiff_jpeg::{encode_coefficients, ChromaSampling, CoeffImage, DcDropMode};

fn main() {
    let quick = quick_mode();
    let count = if quick { 3 } else { 12 };
    let images = DatasetProfile::kodak().with_count(count).generate(0xF16);

    // magnitude-category histograms for DC (differential) and AC levels
    let mut dc_hist = [0u64; 12];
    let mut ac_hist = [0u64; 12];
    let mut dc_bits_total = 0u64;
    let mut ac_bits_total = 0u64;
    let mut dc_count = 0u64;
    let mut ac_count = 0u64;
    let dc_table = HuffmanTable::dc_luma();
    let ac_table = HuffmanTable::ac_luma();

    let mut full_bytes = 0usize;
    let mut dropped_bytes = 0usize;

    for image in &images {
        let coeffs = CoeffImage::from_image(image, QUALITY, ChromaSampling::Cs444);
        full_bytes += encode_coefficients(&coeffs).expect("encodable").len();
        dropped_bytes += encode_coefficients(&coeffs.drop_dc(DcDropMode::KeepCorners))
            .expect("encodable")
            .len();
        let plane = coeffs.plane(0);
        let mut pred = 0i32;
        for by in 0..plane.blocks_y() {
            for bx in 0..plane.blocks_x() {
                let block = plane.block(bx, by);
                let diff = block[0] - pred;
                pred = block[0];
                let (cat, _) = magnitude_code(diff);
                dc_hist[(cat as usize).min(11)] += 1;
                dc_bits_total += (dc_table.code_len(cat as u8) as u32 + cat) as u64;
                dc_count += 1;
                for &level in &block[1..] {
                    if level != 0 {
                        let (cat, _) = magnitude_code(level);
                        ac_hist[(cat as usize).min(11)] += 1;
                        // approximate: run/size symbol with zero run
                        ac_bits_total += (ac_table.code_len(cat as u8).max(2) as u32 + cat) as u64;
                        ac_count += 1;
                    }
                }
            }
        }
    }

    let mut rows = Vec::new();
    for cat in 0..12 {
        let dc_pct = 100.0 * dc_hist[cat] as f64 / dc_count.max(1) as f64;
        let ac_pct = 100.0 * ac_hist[cat] as f64 / ac_count.max(1) as f64;
        rows.push(vec![
            format!("{cat}"),
            format!("{:.1}%", dc_pct),
            format!("{:.1}%", ac_pct),
        ]);
    }
    println!(
        "{}",
        render_table(
            "Figure 2 (a) — magnitude-category distribution of luma coefficients",
            &["size category", "DC (diff-coded)", "AC (nonzero)"],
            &rows,
        )
    );

    println!(
        "{}",
        render_table(
            "Figure 2 (b) — average Huffman cost and coded size impact",
            &["quantity", "value"],
            &[
                vec![
                    "avg bits per coded DC".to_string(),
                    format!("{:.2}", dc_bits_total as f64 / dc_count.max(1) as f64),
                ],
                vec![
                    "avg bits per coded AC".to_string(),
                    format!("{:.2}", ac_bits_total as f64 / ac_count.max(1) as f64),
                ],
                vec![
                    "full JPEG bytes".to_string(),
                    format!("{full_bytes}"),
                ],
                vec![
                    "DC-dropped bytes".to_string(),
                    format!(
                        "{dropped_bytes} ({:.1}% of full)",
                        100.0 * dropped_bytes as f64 / full_bytes as f64
                    ),
                ],
            ],
        )
    );
}
