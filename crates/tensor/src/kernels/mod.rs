//! High-performance CPU kernels for the U-Net / DDIM hot path.
//!
//! Every DCDiff recover call bottoms out in dense matrix products (linear
//! layers, attention, im2col convolution). This module supplies the fast
//! path the [`crate::Tensor`] ops build on:
//!
//! * [`sgemm`] — cache-blocked, register-tiled `C += op(A)·op(B)` with
//!   packed panels and a dense microkernel (no per-element zero-skip
//!   branch), sharded across a std-only persistent thread pool;
//! * [`Trans`] — stride-aware operand views so backward passes
//!   (`dA = dC·Bᵀ`, `dB = Aᵀ·dC`) never materialise transposed copies;
//! * [`parallel_for`] / [`parallel_chunks_mut`] — the scoped pool, also
//!   used to fan im2col/col2im across samples;
//! * [`scratch`] — per-thread buffer recycling for packing, im2col and
//!   rearrange temporaries;
//! * [`gemm_naive`] — the seed repo's scalar reference, kept for parity
//!   tests and as the baseline in `kernel_bench`;
//! * [`KernelConfig`] — the thread/block configuration, embedded in bench
//!   artifacts so speedups stay attributable across machines.
//!
//! Threading is sized from `DCDIFF_THREADS` (when set to a positive
//! integer) or `std::thread::available_parallelism`, and engages only above
//! [`config::PAR_FLOP_THRESHOLD`] so small tape ops stay on the calling
//! thread. Kernel activity is exported through `dcdiff-telemetry` as the
//! `tensor.gemm_us` / `tensor.conv_us` histograms and
//! `tensor.{gemm,conv}_flops` counters.

pub mod config;
pub mod f16;
mod gemm;
pub(crate) mod metrics;
mod pool;
pub mod scratch;

pub use config::{
    configured_threads, quantised_inference, set_quantised_inference, set_threads, KernelConfig,
};
pub use f16::{f16_to_f32, f32_to_f16, hgemm, hgemm_info, hgemm_with_threads, quantize_f16_slice};
pub use gemm::{gemm_naive, microkernel_info, sgemm, sgemm_with_threads, Trans};
pub use pool::{parallel_for, parallel_chunks_mut};

/// Inference-aware GEMM dispatch: routes to the f16-storage [`hgemm`]
/// when quantised inference is enabled **and** the autograd tape is off,
/// otherwise to the full-precision [`sgemm`].
///
/// Ops call this from their *forward* GEMMs only — backward passes call
/// [`sgemm`] directly, so enabling quantisation can never perturb
/// gradients (training inside a `no_grad` scope does not exist by
/// construction). The accuracy contract for the f16 route is pinned by
/// the workspace accuracy gate (see `PERFORMANCE.md`).
#[allow(clippy::too_many_arguments)]
pub fn gemm_infer(
    ta: Trans,
    tb: Trans,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    if quantised_inference() && !crate::tensor::grad_enabled() {
        hgemm(ta, tb, m, k, n, a, b, c);
    } else {
        sgemm(ta, tb, m, k, n, a, b, c);
    }
}
