//! Job execution: one function per [`Job`] kind, mirroring the CLI
//! sub-commands byte-for-byte, plus the per-worker [`EngineCache`] that lets
//! a micro-batch of Recover jobs reuse one constructed method object instead
//! of rebuilding state per image (the CLI's one-shot behaviour).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dcdiff_baselines::{DcRecovery, Icip2022, SmartCom2019, Tip2006};
use dcdiff_core::{
    content_seed, refine_dc_offsets, BatchRecoverJob, CircuitBreaker, DcDiff, DcDiffConfig,
    EstimateError, RecoverOptions,
};
use dcdiff_image::{read_pgm, read_ppm, write_pgm, write_ppm, Image};
use dcdiff_jpeg::{
    encode_coefficients, encode_coefficients_optimized, encode_coefficients_with_restarts,
    CoeffImage, DcDropMode, JpegDecoder, JpegEncoder,
};
use dcdiff_metrics::{psnr, ssim};
use dcdiff_telemetry::names;
use dcdiff_telemetry::Telemetry;

use crate::job::{CodingOpts, Job, JobError, JobOutput, RecoverMethod};

/// Read a PPM or PGM image based on the file extension (CLI-compatible).
fn read_image(path: &str) -> Result<Image, JobError> {
    let loaded = if path.to_ascii_lowercase().ends_with(".pgm") {
        read_pgm(path)
    } else {
        read_ppm(path)
    };
    loaded.map_err(|e| classify_image_error(path, &e))
}

/// Write a PPM or PGM image based on the file extension (CLI-compatible).
fn write_image(path: &str, image: &Image) -> Result<(), JobError> {
    let written = if path.to_ascii_lowercase().ends_with(".pgm") {
        write_pgm(path, image)
    } else {
        write_ppm(path, image)
    };
    written.map_err(|e| classify_image_error(path, &e))
}

/// Image-crate errors render as strings; keep the path and treat them as
/// permanent unless the message clearly names a transient I/O condition.
fn classify_image_error(path: &str, err: &impl std::fmt::Display) -> JobError {
    JobError::permanent(format!("{path}: {err}"))
}

fn read_bytes(path: &str) -> Result<Vec<u8>, JobError> {
    std::fs::read(path).map_err(|e| {
        let mut err = JobError::from_io(&e);
        err.message = format!("{path}: {}", err.message);
        err
    })
}

fn write_bytes(path: &str, bytes: &[u8]) -> Result<(), JobError> {
    std::fs::write(path, bytes).map_err(|e| {
        let mut err = JobError::from_io(&e);
        err.message = format!("{path}: {}", err.message);
        err
    })
}

/// Entropy-code `coeffs` under the shared coding options.
fn code(coeffs: &CoeffImage, opts: &CodingOpts) -> Result<Vec<u8>, JobError> {
    let coded = if opts.optimize {
        encode_coefficients_optimized(coeffs)
    } else if opts.restart > 0 {
        encode_coefficients_with_restarts(coeffs, opts.restart)
    } else {
        encode_coefficients(coeffs)
    };
    coded.map_err(|e| JobError::permanent(e.to_string()))
}

/// How Recover jobs degrade when the selected method fails.
///
/// One policy is shared by every worker of a [`crate::Runtime`] (the
/// breaker is behind an `Arc`), so consecutive failures across workers
/// accumulate into one per-runtime trip decision. The default enables the
/// ladder — a panicking engine falls back to the TIP-2006 baseline, and a
/// panicking baseline falls back to flat DC — mirroring the estimator-side
/// ladder in `dcdiff_core::FallbackEstimator`. `dcdiff batch --no-fallback`
/// selects [`RecoveryPolicy::no_fallback`] instead, surfacing the primary
/// failure as a permanent [`JobError`].
#[derive(Debug, Clone)]
pub struct RecoveryPolicy {
    /// Whether failed recoveries degrade to lower tiers (default) or fail
    /// the job.
    pub fallback: bool,
    /// Per-runtime breaker in front of the primary method; after its
    /// threshold of consecutive failures, jobs skip straight to the
    /// baseline tier until the cooldown elapses.
    pub breaker: Arc<CircuitBreaker>,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            fallback: true,
            breaker: Arc::new(CircuitBreaker::new(3, Duration::from_secs(30))),
        }
    }
}

impl RecoveryPolicy {
    /// The `--no-fallback` escape hatch: primary failures fail the job.
    pub fn no_fallback() -> Self {
        RecoveryPolicy { fallback: false, ..RecoveryPolicy::default() }
    }
}

/// The paper's estimator behind [`RecoverMethod::Diffusion`]: latent DDIM
/// sampling conditioned on FMPP features, masked-Laplacian refinement, and
/// DC projection, wrapped in the same [`DcRecovery`] object shape as the
/// statistical baselines so batching, caching, and the degradation ladder
/// treat it uniformly. Weights come from a fixed construction seed and each
/// recovery samples under a seed derived from the stream's own content
/// ([`content_seed`]), so results are reproducible run to run *and*
/// bit-identical whether a request is served alone or fused into a
/// cross-request cohort. Per-DDIM-step spans flow through the process-wide
/// telemetry handle and therefore carry the submitting request's trace
/// context.
struct DiffusionEngine {
    model: DcDiff,
    options: RecoverOptions,
}

impl DiffusionEngine {
    fn new(ddim_steps: usize) -> Self {
        let config = DcDiffConfig::default();
        let mut options = RecoverOptions::from_config(&config);
        // `DcDiff::recover_with` panics outside 1..=diffusion_steps; clamp so
        // a misconfigured job runs at a legal step count instead of unwinding
        // into the fallback ladder.
        options.ddim_steps = ddim_steps.clamp(1, config.diffusion_steps);
        DiffusionEngine { model: DcDiff::new(config, 0xdcd1ff), options }
    }
}

impl DcRecovery for DiffusionEngine {
    fn name(&self) -> &'static str {
        "diffusion"
    }

    fn recover(&self, dropped: &CoeffImage) -> Image {
        // Content-derived seed: the same input pixels regardless of whether
        // this request runs here or as one lane of a fused cohort.
        let options = RecoverOptions { seed: content_seed(dropped), ..self.options };
        self.model.recover_with(dropped, &options)
    }

    fn recover_coefficients(&self, dropped: &CoeffImage) -> CoeffImage {
        dcdiff_core::project_dc(dropped, &self.recover(dropped))
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// Per-worker cache of constructed recovery objects, keyed by method config.
///
/// The statistical baselines are stateless once built, so one instance can
/// serve every image in a batch — and every later batch on the same worker.
/// Also carries the runtime's [`RecoveryPolicy`] so [`execute`] keeps its
/// signature while the degradation ladder stays configurable per runtime.
#[derive(Default)]
pub struct EngineCache {
    engines: Vec<(RecoverMethod, Box<dyn DcRecovery>)>,
    policy: RecoveryPolicy,
    /// Batch jobs served by an already-constructed engine.
    pub hits: u64,
    /// Engine constructions.
    pub misses: u64,
}

impl EngineCache {
    /// Fresh, empty cache with the default [`RecoveryPolicy`].
    pub fn new() -> Self {
        EngineCache::default()
    }

    /// Fresh cache executing Recover jobs under `policy`.
    pub fn with_policy(policy: RecoveryPolicy) -> Self {
        EngineCache { policy, ..EngineCache::default() }
    }

    /// The degradation policy this cache executes Recover jobs under.
    pub fn policy(&self) -> &RecoveryPolicy {
        &self.policy
    }

    /// Replace a method's engine (tests inject failing engines with this).
    #[cfg(test)]
    fn inject(&mut self, method: RecoverMethod, engine: Box<dyn DcRecovery>) {
        self.engines.retain(|(m, _)| !m.same_config(&method));
        self.engines.push((method, engine));
    }

    /// The engine for `method`, constructing it on first use. `None` for
    /// [`RecoverMethod::Mld`], which is a pure function rather than an
    /// object.
    pub fn engine(&mut self, method: &RecoverMethod) -> Option<&dyn DcRecovery> {
        if matches!(method, RecoverMethod::Mld { .. }) {
            return None;
        }
        if let Some(i) = self.engines.iter().position(|(m, _)| m.same_config(method)) {
            self.hits += 1;
            return Some(self.engines[i].1.as_ref());
        }
        let engine: Box<dyn DcRecovery> = match method {
            RecoverMethod::Tip2006 => Box::new(Tip2006::new()),
            RecoverMethod::SmartCom => Box::new(SmartCom2019::new()),
            RecoverMethod::Icip => Box::new(Icip2022::new()),
            RecoverMethod::Diffusion { ddim_steps } => {
                Box::new(DiffusionEngine::new(*ddim_steps))
            }
            RecoverMethod::Mld { .. } => return None, // early-returned above
        };
        self.misses += 1;
        self.engines.push((*method, engine));
        self.engines.last().map(|(_, e)| e.as_ref())
    }
}

/// Execute one job, using (and warming) `engines` for Recover work.
///
/// Sub-phases (read, transform, entropy-code, write) are wrapped in `tel`
/// spans; with tracing disabled each span is a no-op.
///
/// # Errors
///
/// Returns a classified [`JobError`]; only I/O interruptions are transient.
pub fn execute(
    job: &Job,
    engines: &mut EngineCache,
    tel: &Telemetry,
) -> Result<JobOutput, JobError> {
    match job {
        Job::Encode { input, output, quality, sampling, opts } => {
            if !(1..=100).contains(quality) {
                return Err(JobError::permanent("--quality must be 1..=100"));
            }
            let read = tel.span(names::SPAN_ENCODE_READ);
            let image = read_image(input)?;
            drop(read);
            let dct = tel.span(names::SPAN_ENCODE_DCT);
            let encoder = JpegEncoder::new(*quality).with_sampling(*sampling);
            let mut coeffs = encoder.to_coefficients(&image);
            drop(dct);
            if opts.drop_dc {
                let _drop_dc = tel.span(names::SPAN_ENCODE_DROP_DC);
                coeffs = coeffs.drop_dc(DcDropMode::KeepCorners);
            }
            let entropy = tel.span(names::SPAN_ENCODE_ENTROPY);
            let bytes = code(&coeffs, opts)?;
            drop(entropy);
            let _write = tel.span(names::SPAN_ENCODE_WRITE);
            write_bytes(output, &bytes)?;
            Ok(JobOutput::Encoded { bytes: bytes.len() })
        }
        Job::Transcode { input, output, opts } => {
            let read = tel.span(names::SPAN_TRANSCODE_READ);
            let bytes = read_bytes(input)?;
            drop(read);
            let decode = tel.span(names::SPAN_TRANSCODE_ENTROPY_DECODE);
            let mut coeffs = JpegDecoder::decode_coefficients(&bytes).map_err(|e| {
                let mut err = JobError::from_jpeg(&e);
                err.message = format!("{input}: {}", err.message);
                err
            })?;
            drop(decode);
            if opts.drop_dc {
                let _drop_dc = tel.span(names::SPAN_TRANSCODE_DROP_DC);
                coeffs = coeffs.drop_dc(DcDropMode::KeepCorners);
            }
            let encode = tel.span(names::SPAN_TRANSCODE_ENTROPY_ENCODE);
            let out = code(&coeffs, opts)?;
            drop(encode);
            let _write = tel.span(names::SPAN_TRANSCODE_WRITE);
            write_bytes(output, &out)?;
            Ok(JobOutput::Transcoded { bytes_in: bytes.len(), bytes_out: out.len() })
        }
        Job::Recover { input, output, method } => {
            let dropped = decode_recover_input(input, tel)?;
            let estimate = tel.span(names::SPAN_RECOVER_ESTIMATE);
            let image = recover_guarded(&dropped, method, engines, tel)?;
            drop(estimate);
            write_recover_output(output, &image, tel)?;
            Ok(JobOutput::Recovered { output: output.clone() })
        }
        Job::Metrics { reference, test } => {
            let read = tel.span(names::SPAN_METRICS_READ);
            let reference_img = read_image(reference)?;
            let test_img = read_image(test)?;
            drop(read);
            if reference_img.dims() != test_img.dims() {
                return Err(JobError::permanent(format!(
                    "size mismatch: {}x{} vs {}x{}",
                    reference_img.width(),
                    reference_img.height(),
                    test_img.width(),
                    test_img.height()
                )));
            }
            let _compare = tel.span(names::SPAN_METRICS_COMPARE);
            Ok(JobOutput::Metrics {
                psnr: f64::from(psnr(&reference_img, &test_img)),
                ssim: f64::from(ssim(&reference_img, &test_img)),
            })
        }
    }
}

/// Read and entropy-decode one Recover input, emitting the same
/// `recover.read` / `recover.entropy_decode` spans as the sequential
/// [`execute`] path. Shared with the cohort scheduler so per-lane pre-flight
/// cannot drift from the one-job-at-a-time behaviour.
///
/// # Errors
///
/// Classified [`JobError`]: truncated streams and interrupted I/O are
/// transient, everything else permanent.
pub fn decode_recover_input(input: &str, tel: &Telemetry) -> Result<CoeffImage, JobError> {
    let read = tel.span(names::SPAN_RECOVER_READ);
    let bytes = read_bytes(input)?;
    drop(read);
    let _decode = tel.span(names::SPAN_RECOVER_ENTROPY_DECODE);
    JpegDecoder::decode_coefficients(&bytes).map_err(|e| {
        let mut err = JobError::from_jpeg(&e);
        err.message = format!("{input}: {}", err.message);
        err
    })
}

/// Write one recovered image under the sequential path's `recover.write`
/// span (shared with the cohort scheduler, like [`decode_recover_input`]).
///
/// # Errors
///
/// Classified [`JobError`] from the underlying image write.
pub fn write_recover_output(output: &str, image: &Image, tel: &Telemetry) -> Result<(), JobError> {
    let _write = tel.span(names::SPAN_RECOVER_WRITE);
    write_image(output, image)
}

/// Recover `dropped` with `method`, reusing a cached engine when one exists.
///
/// This is the exact computation `dcdiff recover` performs, factored out so
/// the batch path and the sequential CLI path cannot drift apart.
pub fn recover_with(
    dropped: &CoeffImage,
    method: &RecoverMethod,
    engines: &mut EngineCache,
) -> Image {
    match method {
        RecoverMethod::Mld { threshold, sweeps } => {
            // Masked-Laplacian refinement with a neutral prior — identical
            // constants to the CLI `recover --method mld` path.
            refine_dc_offsets(dropped, dropped, *threshold, 5e-4, (*sweeps).max(1)).to_image()
        }
        _ => engines
            .engine(method)
            // analysis: allow(no-panic) — engine() is None only for MLD, which the arm above matches; backstopped by the job-level catch_unwind
            .expect("non-MLD methods are object-backed")
            .recover(dropped),
    }
}

/// Extract a human-readable message from a caught panic payload.
fn panic_msg(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "recovery engine panicked".to_string())
}

/// [`recover_with`] behind the cache's [`RecoveryPolicy`] ladder.
///
/// The primary method runs inside `catch_unwind`, fronted by the policy's
/// per-runtime circuit breaker. On failure (and with fallback enabled) the
/// job degrades to the TIP-2006 baseline, then to flat DC — always producing
/// an image, with the tier recorded in telemetry counters
/// (`estimator.primary_ok` / `estimator.primary_fail` /
/// `estimator.fallback_baseline` / `estimator.fallback_flat` /
/// `estimator.breaker_short_circuit`) and the `breaker.state` gauge.
///
/// # Errors
///
/// With fallback disabled ([`RecoveryPolicy::no_fallback`]), a primary
/// failure returns a permanent [`JobError`] instead of degrading.
pub fn recover_guarded(
    dropped: &CoeffImage,
    method: &RecoverMethod,
    engines: &mut EngineCache,
    tel: &Telemetry,
) -> Result<Image, JobError> {
    let policy = engines.policy.clone();
    if !policy.fallback {
        return catch_unwind(AssertUnwindSafe(|| recover_with(dropped, method, engines))).map_err(
            |payload| {
                JobError::permanent(format!(
                    "recovery ({}) failed with --no-fallback: {}",
                    method.name(),
                    panic_msg(payload)
                ))
            },
        );
    }
    if policy.breaker.allow() {
        match catch_unwind(AssertUnwindSafe(|| recover_with(dropped, method, engines))) {
            Ok(image) => {
                policy.breaker.record_success();
                tel.counter(names::CTR_ESTIMATOR_PRIMARY_OK).inc();
                tel.gauge(names::GAUGE_BREAKER_STATE).set(policy.breaker.state().as_gauge());
                return Ok(image);
            }
            Err(payload) => {
                policy.breaker.record_failure();
                tel.counter(names::CTR_ESTIMATOR_PRIMARY_FAIL).inc();
                tel.warn(format!(
                    "recovery ({}) failed ({}); degrading to baseline",
                    method.name(),
                    panic_msg(payload)
                ));
            }
        }
    } else {
        tel.counter(names::CTR_ESTIMATOR_BREAKER_SHORT_CIRCUIT).inc();
    }
    tel.gauge(names::GAUGE_BREAKER_STATE).set(policy.breaker.state().as_gauge());
    // Baseline tier: TIP-2006 is training-free and has no failure modes of
    // its own, but a panic here must not kill the ladder either.
    let baseline = catch_unwind(AssertUnwindSafe(|| {
        engines
            .engine(&RecoverMethod::Tip2006)
            // analysis: allow(no-panic) — engine() is None only for MLD; this unwind is caught by the enclosing catch_unwind and falls through to the flat tier
            .expect("tip2006 is object-backed")
            .recover(dropped)
    }));
    match baseline {
        Ok(image) => {
            tel.counter(names::CTR_ESTIMATOR_FALLBACK_BASELINE).inc();
            Ok(image)
        }
        Err(_) => {
            // Flat-DC tier: decode with the dropped DC left at zero. Cannot
            // fail; the picture is degraded but structurally valid.
            tel.counter(names::CTR_ESTIMATOR_FALLBACK_FLAT).inc();
            Ok(dropped.to_image())
        }
    }
}

/// One lane of a fused Recover cohort: the already-decoded input plus its
/// serving metadata.
pub struct CohortLane<'a> {
    /// DC-dropped coefficients (read and entropy-decoded by the caller).
    pub dropped: &'a CoeffImage,
    /// Absolute deadline; expiry mid-flight evicts this lane only.
    pub deadline: Option<Instant>,
    /// Submitting request's trace context, re-installed for this lane's
    /// per-phase spans.
    pub trace: Option<dcdiff_telemetry::TraceCtx>,
}

/// Per-lane non-image outcome of [`recover_cohort_guarded`].
#[derive(Debug)]
pub enum CohortFailure {
    /// The lane's deadline expired mid-flight; it was evicted from the
    /// cohort at the named phase without aborting its batch-mates.
    Deadline(&'static str),
    /// With fallback disabled, a primary failure surfaces as a job error.
    Error(JobError),
}

/// Run the fused batched primary: one `DcDiff::try_recover_batch` call
/// covering every lane, with per-lane content seeds so each result is
/// bit-identical to a width-1 recovery of the same stream.
fn run_cohort_primary(
    lanes: &[CohortLane<'_>],
    method: &RecoverMethod,
    engines: &mut EngineCache,
    tel: &Telemetry,
) -> Vec<Result<Image, EstimateError>> {
    let jobs: Vec<BatchRecoverJob<'_>> = lanes
        .iter()
        .map(|lane| BatchRecoverJob {
            dropped: lane.dropped,
            seed: content_seed(lane.dropped),
            deadline: lane.deadline,
            trace: lane.trace,
        })
        .collect();
    let start = Instant::now();
    let results = {
        let engine = engines
            .engine(method)
            // analysis: allow(no-panic) — recover_cohort_guarded probes the downcast before dispatching here
            .expect("cohort method is object-backed");
        let diffusion = engine
            .as_any()
            .and_then(|any| any.downcast_ref::<DiffusionEngine>())
            // analysis: allow(no-panic) — same probe guarantees a diffusion-backed engine
            .expect("cohort engine is diffusion-backed");
        diffusion.model.try_recover_batch(&jobs, &diffusion.options)
    };
    let end = Instant::now();
    // The estimate phase is physically shared by the cohort; emit one
    // complete `recover.estimate` span per lane under its own trace so every
    // request's causal chain still shows the phase.
    for lane in lanes {
        let _trace = lane.trace.map(dcdiff_telemetry::install_trace);
        tel.record_span(names::SPAN_RECOVER_ESTIMATE, start, end);
    }
    results
}

/// The cohort counterpart of [`recover_guarded`]: K same-config Diffusion
/// lanes share one batched estimate (one U-Net forward per DDIM step for
/// the whole cohort), then each lane is taken through the sequential
/// degradation ladder individually — per-lane breaker accounting, TIP-2006
/// baseline, flat DC — so a single broken lane degrades alone.
///
/// Deadline-evicted lanes report [`CohortFailure::Deadline`] rather than
/// degrading: a blown deadline is the lane's budget running out, not an
/// engine fault, so it neither trips the breaker nor buys a slower tier the
/// caller has no time left for.
///
/// Returns `None` when `method`'s engine has no fused path (it is not
/// diffusion-backed); the caller then falls back to per-job
/// [`recover_guarded`].
pub fn recover_cohort_guarded(
    lanes: &[CohortLane<'_>],
    method: &RecoverMethod,
    engines: &mut EngineCache,
    tel: &Telemetry,
) -> Option<Vec<Result<Image, CohortFailure>>> {
    // Capability probe: only a diffusion-backed engine can fuse lanes.
    engines
        .engine(method)?
        .as_any()?
        .downcast_ref::<DiffusionEngine>()?;
    let policy = engines.policy.clone();

    if !policy.fallback {
        let primary = run_cohort_primary(lanes, method, engines, tel);
        return Some(
            primary
                .into_iter()
                .map(|result| match result {
                    Ok(image) => Ok(image),
                    Err(EstimateError::DeadlineExceeded { phase }) => {
                        Err(CohortFailure::Deadline(phase))
                    }
                    Err(err) => Err(CohortFailure::Error(JobError::permanent(format!(
                        "recovery ({}) failed with --no-fallback: {err}",
                        method.name()
                    )))),
                })
                .collect(),
        );
    }

    let mut out: Vec<Option<Result<Image, CohortFailure>>> =
        lanes.iter().map(|_| None).collect();
    if policy.breaker.allow() {
        let primary = run_cohort_primary(lanes, method, engines, tel);
        for (slot, result) in out.iter_mut().zip(primary) {
            match result {
                Ok(image) => {
                    policy.breaker.record_success();
                    tel.counter(names::CTR_ESTIMATOR_PRIMARY_OK).inc();
                    *slot = Some(Ok(image));
                }
                Err(EstimateError::DeadlineExceeded { phase }) => {
                    *slot = Some(Err(CohortFailure::Deadline(phase)));
                }
                Err(err) => {
                    policy.breaker.record_failure();
                    tel.counter(names::CTR_ESTIMATOR_PRIMARY_FAIL).inc();
                    tel.warn(format!(
                        "cohort lane recovery ({}) failed ({err}); degrading to baseline",
                        method.name()
                    ));
                }
            }
        }
    } else {
        for _ in lanes {
            tel.counter(names::CTR_ESTIMATOR_BREAKER_SHORT_CIRCUIT).inc();
        }
    }
    tel.gauge(names::GAUGE_BREAKER_STATE).set(policy.breaker.state().as_gauge());
    // Lanes the primary did not resolve walk the sequential ladder's lower
    // tiers one by one, under their own trace context.
    for (lane, slot) in lanes.iter().zip(out.iter_mut()) {
        if slot.is_some() {
            continue;
        }
        let _trace = lane.trace.map(dcdiff_telemetry::install_trace);
        let baseline = catch_unwind(AssertUnwindSafe(|| {
            engines
                .engine(&RecoverMethod::Tip2006)
                // analysis: allow(no-panic) — engine() is None only for MLD; this unwind is caught by the enclosing catch_unwind and falls through to the flat tier
                .expect("tip2006 is object-backed")
                .recover(lane.dropped)
        }));
        *slot = Some(Ok(match baseline {
            Ok(image) => {
                tel.counter(names::CTR_ESTIMATOR_FALLBACK_BASELINE).inc();
                image
            }
            Err(_) => {
                tel.counter(names::CTR_ESTIMATOR_FALLBACK_FLAT).inc();
                lane.dropped.to_image()
            }
        }));
    }
    Some(
        out.into_iter()
            // analysis: allow(no-panic) — every lane is resolved by the primary match or the ladder loop above
            .map(|slot| slot.expect("every cohort lane resolves"))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_cache_reuses_per_config() {
        let mut cache = EngineCache::new();
        assert!(cache.engine(&RecoverMethod::Tip2006).is_some());
        assert!(cache.engine(&RecoverMethod::Tip2006).is_some());
        assert!(cache.engine(&RecoverMethod::Icip).is_some());
        assert_eq!(cache.misses, 2);
        assert_eq!(cache.hits, 1);
        assert!(cache
            .engine(&RecoverMethod::Mld { threshold: 10.0, sweeps: 5 })
            .is_none());
    }

    #[test]
    fn diffusion_engine_recovers_and_projects() {
        let mut cache = EngineCache::new();
        let method = RecoverMethod::Diffusion { ddim_steps: 2 };
        let dropped = dropped_coeffs();
        let engine = cache.engine(&method).expect("diffusion is object-backed");
        assert_eq!(engine.name(), "diffusion");
        let image = recover_with(&dropped, &method, &mut cache);
        assert_eq!(image.dims(), (32, 32));
        // The cache keys on ddim_steps: same count hits, different misses.
        cache.engine(&method).unwrap();
        assert_eq!(cache.misses, 1);
        assert!(cache.hits >= 1);
        let projected = cache
            .engine(&method)
            .unwrap()
            .recover_coefficients(&dropped);
        assert_eq!(projected.to_image().dims(), (32, 32));
    }

    #[test]
    fn diffusion_engine_clamps_illegal_step_counts() {
        // Zero steps would panic inside DcDiff::recover_with; the engine
        // clamps to a legal count instead.
        let engine = DiffusionEngine::new(0);
        assert_eq!(engine.options.ddim_steps, 1);
        let huge = DiffusionEngine::new(usize::MAX);
        assert_eq!(huge.options.ddim_steps, DcDiffConfig::default().diffusion_steps);
    }

    /// Test double standing in for a broken/mis-deployed recovery engine:
    /// panics on every call and counts how often it was even asked.
    struct PanickingRecovery(std::sync::Arc<std::sync::atomic::AtomicUsize>);

    impl DcRecovery for PanickingRecovery {
        fn name(&self) -> &'static str {
            "panicking-test-double"
        }

        fn recover(&self, dropped: &CoeffImage) -> Image {
            self.recover_coefficients(dropped).to_image()
        }

        fn recover_coefficients(&self, _dropped: &CoeffImage) -> CoeffImage {
            self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            panic!("injected engine failure");
        }
    }

    fn dropped_coeffs() -> CoeffImage {
        dropped_coeffs_filled(100.0)
    }

    fn dropped_coeffs_filled(level: f32) -> CoeffImage {
        let image = Image::filled(32, 32, dcdiff_image::ColorSpace::Rgb, level);
        JpegEncoder::new(50).to_coefficients(&image).drop_dc(DcDropMode::KeepCorners)
    }

    fn silence_panics<T>(f: impl FnOnce() -> T) -> T {
        // The injected engines panic by design; keep test output readable.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(prev);
        out
    }

    #[test]
    fn panicking_primary_degrades_to_baseline() {
        silence_panics(|| {
            let tel = Telemetry::new();
            let calls = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
            let mut cache = EngineCache::new();
            cache.inject(RecoverMethod::Icip, Box::new(PanickingRecovery(calls.clone())));
            let dropped = dropped_coeffs();
            let image =
                recover_guarded(&dropped, &RecoverMethod::Icip, &mut cache, &tel).unwrap();
            assert_eq!(image.dims(), (32, 32));
            assert_eq!(calls.load(std::sync::atomic::Ordering::SeqCst), 1);
            assert_eq!(tel.counter("estimator.primary_fail").get(), 1);
            assert_eq!(tel.counter("estimator.fallback_baseline").get(), 1);
            assert_eq!(tel.counter("estimator.fallback_flat").get(), 0);
        });
    }

    #[test]
    fn panicking_baseline_degrades_to_flat_dc() {
        silence_panics(|| {
            let tel = Telemetry::new();
            let calls = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
            let mut cache = EngineCache::new();
            // Both the selected method AND the baseline tier are broken.
            cache.inject(RecoverMethod::Tip2006, Box::new(PanickingRecovery(calls.clone())));
            let dropped = dropped_coeffs();
            let image =
                recover_guarded(&dropped, &RecoverMethod::Tip2006, &mut cache, &tel).unwrap();
            assert_eq!(image.dims(), (32, 32));
            assert_eq!(tel.counter("estimator.fallback_flat").get(), 1);
        });
    }

    #[test]
    fn breaker_short_circuits_after_consecutive_failures() {
        silence_panics(|| {
            let tel = Telemetry::new();
            let calls = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
            let policy = RecoveryPolicy {
                fallback: true,
                breaker: Arc::new(CircuitBreaker::new(2, Duration::from_secs(3600))),
            };
            let mut cache = EngineCache::with_policy(policy);
            cache.inject(RecoverMethod::Icip, Box::new(PanickingRecovery(calls.clone())));
            let dropped = dropped_coeffs();
            for _ in 0..4 {
                recover_guarded(&dropped, &RecoverMethod::Icip, &mut cache, &tel).unwrap();
            }
            // Two failures trip the breaker; the last two jobs never touch
            // the primary engine and go straight to the baseline tier.
            assert_eq!(calls.load(std::sync::atomic::Ordering::SeqCst), 2);
            assert_eq!(tel.counter("estimator.breaker_short_circuit").get(), 2);
            assert_eq!(tel.counter("estimator.fallback_baseline").get(), 4);
            assert_eq!(tel.gauge("breaker.state").get(), 2, "gauge reports open");
        });
    }

    #[test]
    fn no_fallback_surfaces_a_permanent_error() {
        silence_panics(|| {
            let tel = Telemetry::new();
            let calls = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
            let mut cache = EngineCache::with_policy(RecoveryPolicy::no_fallback());
            cache.inject(RecoverMethod::Icip, Box::new(PanickingRecovery(calls)));
            let dropped = dropped_coeffs();
            let err =
                recover_guarded(&dropped, &RecoverMethod::Icip, &mut cache, &tel).unwrap_err();
            assert_eq!(err.class, crate::job::ErrorClass::Permanent);
            assert!(err.message.contains("--no-fallback"), "{}", err.message);
            assert!(err.message.contains("injected engine failure"), "{}", err.message);
        });
    }

    #[test]
    fn healthy_method_does_not_degrade() {
        let tel = Telemetry::new();
        let mut cache = EngineCache::new();
        let dropped = dropped_coeffs();
        let image = recover_guarded(&dropped, &RecoverMethod::Tip2006, &mut cache, &tel).unwrap();
        assert_eq!(image.dims(), (32, 32));
        assert_eq!(tel.counter("estimator.primary_ok").get(), 1);
        assert_eq!(tel.counter("estimator.fallback_baseline").get(), 0);
        assert_eq!(tel.gauge("breaker.state").get(), 0, "gauge reports closed");
    }

    #[test]
    fn cohort_lanes_match_the_sequential_engine_bit_exactly() {
        let tel = Telemetry::new();
        let mut cache = EngineCache::new();
        let method = RecoverMethod::Diffusion { ddim_steps: 2 };
        // The sampler publishes cohort telemetry through the process-global
        // handle; sample before/after so parallel tests only help the delta.
        let widths_before = dcdiff_telemetry::global()
            .histogram("diffusion.batch.width")
            .snapshot()
            .count;
        let inputs = [dropped_coeffs_filled(80.0), dropped_coeffs_filled(160.0)];
        // Sequential reference: each stream recovered alone.
        let solo: Vec<Image> = inputs
            .iter()
            .map(|dropped| recover_with(dropped, &method, &mut cache))
            .collect();
        let lanes: Vec<CohortLane<'_>> = inputs
            .iter()
            .map(|dropped| CohortLane { dropped, deadline: None, trace: None })
            .collect();
        let fused = recover_cohort_guarded(&lanes, &method, &mut cache, &tel)
            .expect("diffusion engines have a fused path");
        for (lane, reference) in fused.into_iter().zip(&solo) {
            let image = lane.expect("healthy lane recovers");
            assert_eq!(&image, reference, "cohort lane diverged from width-1 output");
        }
        assert_eq!(tel.counter("estimator.primary_ok").get(), 2);
        assert_eq!(tel.counter("estimator.fallback_baseline").get(), 0);
        let widths = dcdiff_telemetry::global().histogram("diffusion.batch.width").snapshot();
        assert!(widths.count > widths_before, "fused steps must observe cohort width");
        assert!(widths.max >= 2, "both lanes shared each forward");
    }

    #[test]
    fn cohort_path_is_none_for_non_diffusion_methods() {
        let tel = Telemetry::new();
        let mut cache = EngineCache::new();
        let dropped = dropped_coeffs();
        let lanes = [CohortLane { dropped: &dropped, deadline: None, trace: None }];
        assert!(recover_cohort_guarded(&lanes, &RecoverMethod::Tip2006, &mut cache, &tel)
            .is_none());
        assert!(recover_cohort_guarded(
            &lanes,
            &RecoverMethod::Mld { threshold: 10.0, sweeps: 5 },
            &mut cache,
            &tel
        )
        .is_none());
    }

    #[test]
    fn expired_cohort_lane_is_evicted_without_aborting_batch_mates() {
        let tel = Telemetry::new();
        let mut cache = EngineCache::new();
        let method = RecoverMethod::Diffusion { ddim_steps: 2 };
        let survivor_input = dropped_coeffs_filled(120.0);
        let doomed_input = dropped_coeffs_filled(60.0);
        let reference = recover_with(&survivor_input, &method, &mut cache);
        let lanes = [
            CohortLane { dropped: &survivor_input, deadline: None, trace: None },
            CohortLane {
                dropped: &doomed_input,
                // Already expired: evicted at the first cooperative check.
                deadline: Some(Instant::now() - Duration::from_secs(1)),
                trace: None,
            },
        ];
        let mut fused = recover_cohort_guarded(&lanes, &method, &mut cache, &tel)
            .expect("diffusion engines have a fused path");
        let doomed = fused.pop().unwrap();
        let survivor = fused.pop().unwrap();
        assert!(
            matches!(doomed, Err(CohortFailure::Deadline(_))),
            "expired lane must report eviction, got {doomed:?}"
        );
        assert_eq!(survivor.expect("survivor recovers"), reference);
        // Eviction is the lane's budget, not an engine fault: no breaker
        // failure, no fallback tier.
        assert_eq!(tel.counter("estimator.primary_fail").get(), 0);
        assert_eq!(tel.counter("estimator.fallback_baseline").get(), 0);
    }

    #[test]
    fn missing_input_is_permanent() {
        let mut cache = EngineCache::new();
        let job = Job::Metrics {
            reference: "/nonexistent/ref.ppm".into(),
            test: "/nonexistent/test.ppm".into(),
        };
        let err = execute(&job, &mut cache, &Telemetry::new()).unwrap_err();
        assert_eq!(err.class, crate::job::ErrorClass::Permanent);
        assert!(err.message.contains("/nonexistent/ref.ppm"), "{}", err.message);
    }
}
