//! SIGTERM/SIGINT → graceful-drain flag, in pure std.
//!
//! The handler does exactly one async-signal-safe thing — a relaxed atomic
//! store — and the serving loop polls [`shutdown_requested`]. `libc` is not
//! available in this build environment, so on Unix we declare the C
//! `signal(2)` entry point ourselves; std already links the symbol.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Whether a shutdown signal (or [`request_shutdown`]) has been observed.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}

/// Trip the shutdown flag programmatically (used by `/admin/drain` and by
/// tests; exactly what the signal handler does).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

/// Reset the flag — test-only, so one process can exercise several drains.
pub fn reset_for_tests() {
    SHUTDOWN.store(false, Ordering::Relaxed);
}

#[cfg(unix)]
mod imp {
    use super::SHUTDOWN;
    use std::os::raw::c_int;
    use std::sync::atomic::Ordering;

    const SIGINT: c_int = 2;
    const SIGTERM: c_int = 15;

    extern "C" {
        // `signal(2)` from the platform C library, which std itself links.
        // The handler type is a plain C function pointer, so no sighandler_t
        // integer casts are needed on either side of the call.
        fn signal(signum: c_int, handler: extern "C" fn(c_int)) -> usize;
    }

    extern "C" fn on_signal(_signum: c_int) {
        // Only async-signal-safe work is allowed here: one atomic store.
        SHUTDOWN.store(true, Ordering::Relaxed);
    }

    pub fn install() -> bool {
        // SAFETY: `signal` is the C-library entry point with the declared ABI;
        // `on_signal` lives for the whole program and only stores an atomic.
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
        true
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() -> bool {
        false
    }
}

/// Install SIGTERM/SIGINT handlers that trip the shutdown flag.
///
/// Returns `false` on platforms without Unix signals, where only
/// [`request_shutdown`] (the `/admin/drain` endpoint) can trigger a drain.
pub fn install() -> bool {
    imp::install()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programmatic_shutdown_trips_and_resets() {
        reset_for_tests();
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
        reset_for_tests();
        assert!(!shutdown_requested());
    }

    #[cfg(unix)]
    #[test]
    fn install_succeeds_on_unix() {
        assert!(install());
    }
}
