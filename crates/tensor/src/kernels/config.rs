//! Kernel tuning knobs: thread count and cache/register block sizes.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Depth block: one packed `mr x KC` A strip plus one `KC x nr` B strip
/// (a few KiB each; `mr`/`nr` come from the runtime-selected microkernel)
/// stay L1-resident through the microkernel.
pub const KC: usize = 256;
/// Row block: the packed `MC x KC` A block (256 KiB) targets L2.
pub const MC: usize = 256;
/// Column block: the packed `KC x NC` B block (512 KiB) targets L2/L3.
pub const NC: usize = 512;

/// Minimum FLOPs (2·m·k·n) before a GEMM is worth sharding across the
/// pool: below this the dispatch latency dominates the kernel time.
pub const PAR_FLOP_THRESHOLD: usize = 1 << 21;

/// 0 = uninitialised; resolved lazily by [`configured_threads`].
static THREADS: AtomicUsize = AtomicUsize::new(0);

fn detect_threads() -> usize {
    if let Ok(raw) = std::env::var("DCDIFF_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// The kernel layer's thread budget: `DCDIFF_THREADS` when set to a
/// positive integer, otherwise `std::thread::available_parallelism`.
pub fn configured_threads() -> usize {
    let cached = THREADS.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let detected = detect_threads();
    // Racing initialisers compute the same value; last write wins.
    THREADS.store(detected, Ordering::Relaxed);
    detected
}

/// Override the thread budget (benchmarks sweeping 1..cores). Affects the
/// whole process; not intended for concurrent test use. The worker pool is
/// sized at first use by `max(budget, hardware cores)`, so sweeping above
/// the hardware core count after the pool exists caps at whichever was
/// larger when it was created.
pub fn set_threads(threads: usize) {
    THREADS.store(threads.max(1), Ordering::Relaxed);
}

/// 0 = uninitialised (read `DCDIFF_QUANTISED` on first query), 1 = off,
/// 2 = on.
static QUANTISED: AtomicUsize = AtomicUsize::new(0);

fn detect_quantised() -> bool {
    match std::env::var("DCDIFF_QUANTISED") {
        Ok(raw) => matches!(raw.trim(), "1" | "true" | "f16"),
        Err(_) => false,
    }
}

/// Whether forward-pass GEMMs should use the f16-storage path
/// ([`super::hgemm`]) when autograd is off. Defaults to the
/// `DCDIFF_QUANTISED` environment variable (`1`/`true`/`f16` enable it);
/// [`set_quantised_inference`] overrides per process.
///
/// This knob never affects gradient computation: the dispatch in
/// [`super::gemm_infer`] additionally requires the autograd tape to be
/// disabled, so training always runs full f32.
pub fn quantised_inference() -> bool {
    match QUANTISED.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            let on = detect_quantised();
            // Racing initialisers read the same env; last write wins.
            QUANTISED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
    }
}

/// Force quantised inference on or off (overrides `DCDIFF_QUANTISED`).
/// Affects the whole process; benches and the accuracy gate flip this
/// around paired runs.
pub fn set_quantised_inference(on: bool) {
    QUANTISED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Snapshot of the kernel configuration, recorded into bench JSON so perf
/// numbers stay attributable across machines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelConfig {
    /// Thread budget in effect (env override or detected cores).
    pub threads: usize,
    /// Detected hardware parallelism (regardless of override).
    pub cpu_cores: usize,
    /// Microkernel selected for this CPU (e.g. `avx2_fma_6x16`).
    pub isa: &'static str,
    /// Micro-tile rows of the selected microkernel.
    pub mr: usize,
    /// Micro-tile columns of the selected microkernel.
    pub nr: usize,
    /// Depth block.
    pub kc: usize,
    /// Row block.
    pub mc: usize,
    /// Column block.
    pub nc: usize,
    /// FLOP threshold below which GEMMs stay single-threaded.
    pub par_flop_threshold: usize,
    /// Whether forward GEMMs run the f16-storage path under no-grad.
    pub quantised: bool,
    /// f16 microkernel selected for this CPU (e.g. `avx2_f16c_6x16`).
    pub f16_isa: &'static str,
}

impl KernelConfig {
    /// The configuration currently in effect.
    pub fn current() -> Self {
        let (isa, mr, nr) = super::gemm::microkernel_info();
        let (f16_isa, _, _) = super::f16::hgemm_info();
        KernelConfig {
            threads: configured_threads(),
            cpu_cores: std::thread::available_parallelism()
                .map_or(1, std::num::NonZeroUsize::get),
            isa,
            mr,
            nr,
            kc: KC,
            mc: MC,
            nc: NC,
            par_flop_threshold: PAR_FLOP_THRESHOLD,
            quantised: quantised_inference(),
            f16_isa,
        }
    }

    /// Render as a JSON object (for embedding in bench artifacts).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"threads\": {}, \"cpu_cores\": {}, \"isa\": \"{}\", \"mr\": {}, \"nr\": {}, \
             \"kc\": {}, \"mc\": {}, \"nc\": {}, \"par_flop_threshold\": {}, \
             \"quantised\": {}, \"f16_isa\": \"{}\"}}",
            self.threads,
            self.cpu_cores,
            self.isa,
            self.mr,
            self.nr,
            self.kc,
            self.mc,
            self.nc,
            self.par_flop_threshold,
            self.quantised,
            self.f16_isa
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_are_at_least_one() {
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn config_json_names_every_knob() {
        let json = KernelConfig::current().to_json();
        for key in [
            "threads",
            "cpu_cores",
            "isa",
            "mr",
            "nr",
            "kc",
            "mc",
            "nc",
            "par_flop_threshold",
            "quantised",
            "f16_isa",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
