//! Masked-Laplacian refinement of a generated DC map.
//!
//! The paper imposes the masked Laplacian distribution constraint through
//! the `L_m` training loss of a large pretrained diffusion model. Our
//! from-scratch model is far smaller, so the same constraint is also
//! enforced explicitly at inference (see `DESIGN.md`): the per-block DC
//! offsets minimise
//!
//! `E(o) = Σ_edges Σ_pairs m · ((ac_a + o_a) − (ac_b + o_b))²
//!        + λ Σ_b (o_b − o_gen_b)²`
//!
//! where `m ∈ {0, 1}` is the Eq. 3 hard mask on both boundary pixels
//! (pairs in high-frequency regions contribute nothing — this is what
//! kills error propagation), `o_gen` is the diffusion model's estimate
//! acting as a prior, and the four corner anchors are hard constraints.
//! The energy is a convex quadratic solved by Gauss–Seidel sweeps.

use dcdiff_jpeg::{CoeffImage, BLOCK};

/// Which mechanisms of the refinement energy are active (see
/// [`refine_dc_offsets_with`]). The defaults enable everything; the
/// `ablation_refine` experiment binary toggles them individually.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefineConfig {
    /// Slope-agreement-damped trend extrapolation across boundaries.
    pub trend: bool,
    /// Soft down-weighting of high-activity pixel pairs.
    pub activity: bool,
    /// Robust masking of pairs far from the edge's median residual.
    pub consensus: bool,
}

impl Default for RefineConfig {
    fn default() -> Self {
        Self {
            trend: true,
            activity: true,
            consensus: true,
        }
    }
}

/// Refine the DC levels of `generated` (a [`crate::project_dc`] result)
/// against the masked Laplacian energy.
///
/// * `dropped` — the received coefficients (anchors + exact AC);
/// * `generated` — coefficients whose DC levels hold the diffusion
///   estimate;
/// * `threshold` — the Eq. 3 mask threshold `T`;
/// * `prior_weight` — λ tying the solution to the generated estimate;
/// * `sweeps` — Gauss–Seidel iterations.
///
/// # Panics
///
/// Panics if the two coefficient images have different geometry or
/// `sweeps` is zero.
pub fn refine_dc_offsets(
    dropped: &CoeffImage,
    generated: &CoeffImage,
    threshold: f32,
    prior_weight: f32,
    sweeps: usize,
) -> CoeffImage {
    refine_dc_offsets_with(
        dropped,
        generated,
        threshold,
        prior_weight,
        sweeps,
        RefineConfig::default(),
    )
}

/// [`refine_dc_offsets`] with individual energy mechanisms toggled (used
/// by the refinement design ablation).
///
/// # Panics
///
/// As for [`refine_dc_offsets`].
pub fn refine_dc_offsets_with(
    dropped: &CoeffImage,
    generated: &CoeffImage,
    threshold: f32,
    prior_weight: f32,
    sweeps: usize,
    config: RefineConfig,
) -> CoeffImage {
    assert!(sweeps > 0, "at least one sweep required");
    assert_eq!(dropped.channels(), generated.channels(), "channel mismatch");
    let mut out = generated.clone();
    for c in 0..dropped.channels() {
        let plane = dropped.plane(c);
        let gen_plane = generated.plane(c);
        assert_eq!(
            (plane.blocks_x(), plane.blocks_y()),
            (gen_plane.blocks_x(), gen_plane.blocks_y()),
            "block grid mismatch"
        );
        let qtable = dropped.qtable(c);
        let q0 = qtable.values()[0] as f32;
        let dc_step = q0 / 8.0;
        let (bw, bh) = (plane.blocks_x(), plane.blocks_y());
        let n = bw * bh;
        let ac = plane.ac_pixels(qtable);

        // prior (generated) offsets, clamped to the representable pixel
        // range so a degenerate generator cannot poison the solve
        let mut offsets: Vec<f32> = (0..n)
            .map(|i| (gen_plane.dc(i % bw, i / bw) as f32 * dc_step).clamp(-140.0, 140.0))
            .collect();
        let prior = offsets.clone();
        let mut fixed = vec![false; n];
        // the four corner DCs are always transmitted (KeepCorners), so
        // they anchor the solve even when their value is zero — without
        // this, a plane whose corners are zero (e.g. neutral chroma)
        // would have an unconstrained global offset
        for (bx, by) in [(0, 0), (bw - 1, 0), (0, bh - 1), (bw - 1, bh - 1)] {
            let i = by * bw + bx;
            offsets[i] = plane.dc(bx, by) as f32 * dc_step;
            fixed[i] = true;
        }

        // masked edges
        struct Edge {
            a: usize,
            b: usize,
            weight: f32,
            bias: f32, // Σ m (ac_a − ac_b) over active pairs
        }
        let column = |b: usize, x: usize| -> [f32; BLOCK] {
            std::array::from_fn(|y| ac[b][y * BLOCK + x])
        };
        let row = |b: usize, y: usize| -> [f32; BLOCK] {
            std::array::from_fn(|x| ac[b][y * BLOCK + x])
        };
        let mut edges = Vec::with_capacity(2 * n);
        for by in 0..bh {
            for bx in 0..bw {
                let a = by * bw + bx;
                if bx + 1 < bw {
                    let b = by * bw + bx + 1;
                    let ea = column(a, BLOCK - 1);
                    let ea2 = column(a, BLOCK - 2);
                    let eb = column(b, 0);
                    let eb2 = column(b, 1);
                    let (weight, bias) = edge_statistics(&ea, &ea2, &eb, &eb2, threshold, config);
                    if weight > 0.0 {
                        edges.push(Edge { a, b, weight, bias });
                    }
                }
                if by + 1 < bh {
                    let b = (by + 1) * bw + bx;
                    let ea = row(a, BLOCK - 1);
                    let ea2 = row(a, BLOCK - 2);
                    let eb = row(b, 0);
                    let eb2 = row(b, 1);
                    let (weight, bias) = edge_statistics(&ea, &ea2, &eb, &eb2, threshold, config);
                    if weight > 0.0 {
                        edges.push(Edge { a, b, weight, bias });
                    }
                }
            }
        }
        let mut adj: Vec<Vec<(usize, f32, f32)>> = vec![Vec::new(); n];
        for e in &edges {
            adj[e.a].push((e.b, e.weight, -e.bias));
            adj[e.b].push((e.a, e.weight, e.bias));
        }

        // Gauss–Seidel on the normal equations
        for _ in 0..sweeps {
            for i in 0..n {
                if fixed[i] {
                    continue;
                }
                let mut num = prior_weight * prior[i];
                let mut den = prior_weight;
                for &(j, w, d) in &adj[i] {
                    num += w * offsets[j] + d;
                    den += w;
                }
                if den > 0.0 {
                    offsets[i] = num / den;
                }
            }
        }

        let coeff = out.plane_mut(c);
        for by in 0..bh {
            for bx in 0..bw {
                let i = by * bw + bx;
                if !fixed[i] {
                    let level = (offsets[i] / dc_step).round() as i32;
                    coeff.set_dc(bx, by, level);
                }
            }
        }
    }
    out
}


/// Per-edge boundary statistics combining the three mechanisms the
/// recovery literature identified, all tuned against the masked
/// Laplacian model of Fig. 4:
///
/// 1. **adaptive trend** — when the one-sided slopes on both sides of
///    the boundary agree, the expected pixel step is their mean
///    (SmartCom's trend extrapolation); disagreement (an edge) damps the
///    trend smoothly;
/// 2. **activity weighting** — pairs in high-gradient regions violate
///    the Laplacian prior and are soft-downweighted (ICIP-2022's
///    direction selectivity);
/// 3. **masked consensus** — the Eq. 3 idea as a robust vote: pairs
///    whose detrended residual deviates more than the threshold `T`
///    from the edge's median residual are the Fig. 4(a) "abrupt change"
///    pixels and lose their weight.
///
/// Returns the edge's total weight (normalised to at most 1) and the
/// weighted residual sum, such that `bias / weight` is the robust
/// estimate of `o_b − o_a`.
fn edge_statistics(
    ea: &[f32; BLOCK],
    ea2: &[f32; BLOCK],
    eb: &[f32; BLOCK],
    eb2: &[f32; BLOCK],
    threshold: f32,
    config: RefineConfig,
) -> (f32, f32) {
    const SLOPE_SIGMA2: f32 = 25.0;
    let mut residuals = [0.0f32; BLOCK];
    let mut activity = [0.0f32; BLOCK];
    for k in 0..BLOCK {
        let slope_a = ea[k] - ea2[k];
        let slope_b = eb2[k] - eb[k];
        let agreement = 1.0 / (1.0 + (slope_a - slope_b).powi(2) / SLOPE_SIGMA2);
        let trend = if config.trend {
            agreement * 0.5 * (slope_a + slope_b)
        } else {
            0.0
        };
        residuals[k] = ea[k] - eb[k] + trend;
        let act = slope_a.abs() + slope_b.abs();
        activity[k] = if config.activity {
            1.0 / (1.0 + act * act / SLOPE_SIGMA2)
        } else {
            1.0
        };
    }
    let mut sorted = residuals;
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite residuals"));
    let median = sorted[BLOCK / 2];
    // noise-adaptive trim: on noisy (texture) edges the residual spread is
    // wide and trimming at a fixed T would destroy the averaging the
    // estimate needs, so the effective threshold grows with the median
    // absolute deviation
    let mut devs = [0.0f32; BLOCK];
    for k in 0..BLOCK {
        devs[k] = (residuals[k] - median).abs();
    }
    devs.sort_by(|a, b| a.partial_cmp(b).expect("finite residuals"));
    let mad = devs[BLOCK / 2];
    // `threshold` keeps the paper's T semantics (default 10) but acts as
    // a scale on the noise-adaptive trim: T/10 × max(10, 1.5·MAD)
    let t_eff = (threshold / crate::mask::DEFAULT_THRESHOLD * (1.5 * mad).max(10.0)).max(0.25);
    let t2 = t_eff * t_eff;
    let mut weight = 0.0f32;
    let mut bias = 0.0f32;
    for k in 0..BLOCK {
        let d = residuals[k] - median;
        let consensus = if config.consensus {
            1.0 / (1.0 + d * d / t2)
        } else {
            1.0
        };
        let w = activity[k] * consensus;
        weight += w;
        bias += w * residuals[k];
    }
    (weight / BLOCK as f32, bias / BLOCK as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::project_dc;
    use dcdiff_data::{SceneGenerator, SceneKind};
    use dcdiff_image::{ColorSpace, Image};
    use dcdiff_jpeg::{ChromaSampling, DcDropMode};
    use dcdiff_metrics::psnr;

    fn setup(kind: SceneKind, seed: u64) -> (CoeffImage, CoeffImage, Image) {
        let img = SceneGenerator::new(kind, 64, 64).generate(seed);
        let coeffs = CoeffImage::from_image(&img, 50, ChromaSampling::Cs444);
        let dropped = coeffs.drop_dc(DcDropMode::KeepCorners);
        let reference = coeffs.to_image();
        (coeffs, dropped, reference)
    }

    #[test]
    fn refinement_improves_a_gray_prior() {
        // prior: all DC zero (mid-gray) — refinement alone must pull the
        // offsets towards consistency with the anchors
        let (_, dropped, reference) = setup(SceneKind::Smooth, 3);
        let before = psnr(&reference, &dropped.to_image());
        let refined = refine_dc_offsets(&dropped, &dropped, 10.0, 0.005, 300);
        let after = psnr(&reference, &refined.to_image());
        assert!(after > before + 5.0, "{after} vs {before}");
    }

    #[test]
    fn better_prior_gives_better_result() {
        // refinement must be monotone in prior quality: an oracle prior
        // can only help relative to a gray (all-zero) prior
        let (coeffs, dropped, reference) = setup(SceneKind::Natural, 4);
        let oracle = project_dc(&dropped, &reference);
        let _ = &coeffs;
        let with_oracle = refine_dc_offsets(&dropped, &oracle, 10.0, 0.25, 150);
        let with_gray = refine_dc_offsets(&dropped, &dropped, 10.0, 0.25, 150);
        let p_oracle = psnr(&reference, &with_oracle.to_image());
        let p_gray = psnr(&reference, &with_gray.to_image());
        assert!(
            p_oracle >= p_gray - 0.2,
            "oracle prior {p_oracle} dB must not lose to gray prior {p_gray} dB"
        );
        // and a strong prior weight preserves the oracle almost exactly
        let tight = refine_dc_offsets(&dropped, &oracle, 10.0, 50.0, 150);
        let p_tight = psnr(&reference, &tight.to_image());
        assert!(p_tight > 34.0, "high-trust oracle degraded to {p_tight} dB");
    }

    #[test]
    fn anchors_are_hard_constraints() {
        let (coeffs, dropped, _) = setup(SceneKind::Urban, 5);
        let refined = refine_dc_offsets(&dropped, &dropped, 10.0, 0.05, 50);
        let p = refined.plane(0);
        let o = coeffs.plane(0);
        let (mx, my) = (p.blocks_x() - 1, p.blocks_y() - 1);
        for (bx, by) in [(0, 0), (mx, 0), (0, my), (mx, my)] {
            if o.dc(bx, by) != 0 {
                assert_eq!(p.dc(bx, by), o.dc(bx, by));
            }
        }
    }

    #[test]
    fn tight_threshold_disables_edges() {
        // with T = 0 almost no pairs are active, so the result stays at
        // the prior (plus anchors)
        let (_, dropped, _) = setup(SceneKind::Texture, 6);
        let refined = refine_dc_offsets(&dropped, &dropped, 0.0, 1.0, 50);
        let p = refined.plane(0);
        let mut unchanged = 0;
        let mut total = 0;
        for by in 0..p.blocks_y() {
            for bx in 0..p.blocks_x() {
                total += 1;
                if p.dc(bx, by) == dropped.plane(0).dc(bx, by) {
                    unchanged += 1;
                }
            }
        }
        assert!(
            unchanged * 10 >= total * 7,
            "T=0 should mostly freeze the prior: {unchanged}/{total}"
        );
    }

    #[test]
    fn refinement_beats_soft_weights_on_hard_edges() {
        // urban scenes: hard masking should outperform no masking
        let (_, dropped, reference) = setup(SceneKind::Urban, 7);
        let masked = refine_dc_offsets(&dropped, &dropped, 10.0, 0.02, 200);
        let unmasked = refine_dc_offsets(&dropped, &dropped, f32::INFINITY, 0.02, 200);
        let pm = psnr(&reference, &masked.to_image());
        let pu = psnr(&reference, &unmasked.to_image());
        assert!(
            pm > pu - 0.8,
            "masked {pm} should not lose badly to unmasked {pu}"
        );
        let _ = ColorSpace::Rgb;
    }
}
