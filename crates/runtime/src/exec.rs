//! Job execution: one function per [`Job`] kind, mirroring the CLI
//! sub-commands byte-for-byte, plus the per-worker [`EngineCache`] that lets
//! a micro-batch of Recover jobs reuse one constructed method object instead
//! of rebuilding state per image (the CLI's one-shot behaviour).

use dcdiff_baselines::{DcRecovery, Icip2022, SmartCom2019, Tip2006};
use dcdiff_core::refine_dc_offsets;
use dcdiff_image::{read_pgm, read_ppm, write_pgm, write_ppm, Image};
use dcdiff_jpeg::{
    encode_coefficients, encode_coefficients_optimized, encode_coefficients_with_restarts,
    CoeffImage, DcDropMode, JpegDecoder, JpegEncoder,
};
use dcdiff_metrics::{psnr, ssim};
use dcdiff_telemetry::Telemetry;

use crate::job::{CodingOpts, Job, JobError, JobOutput, RecoverMethod};

/// Read a PPM or PGM image based on the file extension (CLI-compatible).
fn read_image(path: &str) -> Result<Image, JobError> {
    let loaded = if path.to_ascii_lowercase().ends_with(".pgm") {
        read_pgm(path)
    } else {
        read_ppm(path)
    };
    loaded.map_err(|e| classify_image_error(path, &e))
}

/// Write a PPM or PGM image based on the file extension (CLI-compatible).
fn write_image(path: &str, image: &Image) -> Result<(), JobError> {
    let written = if path.to_ascii_lowercase().ends_with(".pgm") {
        write_pgm(path, image)
    } else {
        write_ppm(path, image)
    };
    written.map_err(|e| classify_image_error(path, &e))
}

/// Image-crate errors render as strings; keep the path and treat them as
/// permanent unless the message clearly names a transient I/O condition.
fn classify_image_error(path: &str, err: &impl std::fmt::Display) -> JobError {
    JobError::permanent(format!("{path}: {err}"))
}

fn read_bytes(path: &str) -> Result<Vec<u8>, JobError> {
    std::fs::read(path).map_err(|e| {
        let mut err = JobError::from_io(&e);
        err.message = format!("{path}: {}", err.message);
        err
    })
}

fn write_bytes(path: &str, bytes: &[u8]) -> Result<(), JobError> {
    std::fs::write(path, bytes).map_err(|e| {
        let mut err = JobError::from_io(&e);
        err.message = format!("{path}: {}", err.message);
        err
    })
}

/// Entropy-code `coeffs` under the shared coding options.
fn code(coeffs: &CoeffImage, opts: &CodingOpts) -> Result<Vec<u8>, JobError> {
    let coded = if opts.optimize {
        encode_coefficients_optimized(coeffs)
    } else if opts.restart > 0 {
        encode_coefficients_with_restarts(coeffs, opts.restart)
    } else {
        encode_coefficients(coeffs)
    };
    coded.map_err(|e| JobError::permanent(e.to_string()))
}

/// Per-worker cache of constructed recovery objects, keyed by method config.
///
/// The statistical baselines are stateless once built, so one instance can
/// serve every image in a batch — and every later batch on the same worker.
#[derive(Default)]
pub struct EngineCache {
    engines: Vec<(RecoverMethod, Box<dyn DcRecovery>)>,
    /// Batch jobs served by an already-constructed engine.
    pub hits: u64,
    /// Engine constructions.
    pub misses: u64,
}

impl EngineCache {
    /// Fresh, empty cache.
    pub fn new() -> Self {
        EngineCache::default()
    }

    /// The engine for `method`, constructing it on first use. `None` for
    /// [`RecoverMethod::Mld`], which is a pure function rather than an
    /// object.
    pub fn engine(&mut self, method: &RecoverMethod) -> Option<&dyn DcRecovery> {
        if matches!(method, RecoverMethod::Mld { .. }) {
            return None;
        }
        if let Some(i) = self.engines.iter().position(|(m, _)| m.same_config(method)) {
            self.hits += 1;
            return Some(self.engines[i].1.as_ref());
        }
        let engine: Box<dyn DcRecovery> = match method {
            RecoverMethod::Tip2006 => Box::new(Tip2006::new()),
            RecoverMethod::SmartCom => Box::new(SmartCom2019::new()),
            RecoverMethod::Icip => Box::new(Icip2022::new()),
            RecoverMethod::Mld { .. } => unreachable!("handled above"),
        };
        self.misses += 1;
        self.engines.push((*method, engine));
        Some(self.engines.last().expect("just pushed").1.as_ref())
    }
}

/// Execute one job, using (and warming) `engines` for Recover work.
///
/// Sub-phases (read, transform, entropy-code, write) are wrapped in `tel`
/// spans; with tracing disabled each span is a no-op.
///
/// # Errors
///
/// Returns a classified [`JobError`]; only I/O interruptions are transient.
pub fn execute(
    job: &Job,
    engines: &mut EngineCache,
    tel: &Telemetry,
) -> Result<JobOutput, JobError> {
    match job {
        Job::Encode { input, output, quality, sampling, opts } => {
            if !(1..=100).contains(quality) {
                return Err(JobError::permanent("--quality must be 1..=100"));
            }
            let read = tel.span("encode.read");
            let image = read_image(input)?;
            drop(read);
            let dct = tel.span("encode.dct");
            let encoder = JpegEncoder::new(*quality).with_sampling(*sampling);
            let mut coeffs = encoder.to_coefficients(&image);
            drop(dct);
            if opts.drop_dc {
                let _drop_dc = tel.span("encode.drop_dc");
                coeffs = coeffs.drop_dc(DcDropMode::KeepCorners);
            }
            let entropy = tel.span("encode.entropy");
            let bytes = code(&coeffs, opts)?;
            drop(entropy);
            let _write = tel.span("encode.write");
            write_bytes(output, &bytes)?;
            Ok(JobOutput::Encoded { bytes: bytes.len() })
        }
        Job::Transcode { input, output, opts } => {
            let read = tel.span("transcode.read");
            let bytes = read_bytes(input)?;
            drop(read);
            let decode = tel.span("transcode.entropy_decode");
            let mut coeffs = JpegDecoder::decode_coefficients(&bytes)
                .map_err(|e| JobError::permanent(format!("{input}: {e}")))?;
            drop(decode);
            if opts.drop_dc {
                let _drop_dc = tel.span("transcode.drop_dc");
                coeffs = coeffs.drop_dc(DcDropMode::KeepCorners);
            }
            let encode = tel.span("transcode.entropy_encode");
            let out = code(&coeffs, opts)?;
            drop(encode);
            let _write = tel.span("transcode.write");
            write_bytes(output, &out)?;
            Ok(JobOutput::Transcoded { bytes_in: bytes.len(), bytes_out: out.len() })
        }
        Job::Recover { input, output, method } => {
            let read = tel.span("recover.read");
            let bytes = read_bytes(input)?;
            drop(read);
            let decode = tel.span("recover.entropy_decode");
            let dropped = JpegDecoder::decode_coefficients(&bytes)
                .map_err(|e| JobError::permanent(format!("{input}: {e}")))?;
            drop(decode);
            let estimate = tel.span("recover.estimate");
            let image = recover_with(&dropped, method, engines);
            drop(estimate);
            let _write = tel.span("recover.write");
            write_image(output, &image)?;
            Ok(JobOutput::Recovered { output: output.clone() })
        }
        Job::Metrics { reference, test } => {
            let read = tel.span("metrics.read");
            let reference_img = read_image(reference)?;
            let test_img = read_image(test)?;
            drop(read);
            if reference_img.dims() != test_img.dims() {
                return Err(JobError::permanent(format!(
                    "size mismatch: {}x{} vs {}x{}",
                    reference_img.width(),
                    reference_img.height(),
                    test_img.width(),
                    test_img.height()
                )));
            }
            let _compare = tel.span("metrics.compare");
            Ok(JobOutput::Metrics {
                psnr: f64::from(psnr(&reference_img, &test_img)),
                ssim: f64::from(ssim(&reference_img, &test_img)),
            })
        }
    }
}

/// Recover `dropped` with `method`, reusing a cached engine when one exists.
///
/// This is the exact computation `dcdiff recover` performs, factored out so
/// the batch path and the sequential CLI path cannot drift apart.
pub fn recover_with(
    dropped: &CoeffImage,
    method: &RecoverMethod,
    engines: &mut EngineCache,
) -> Image {
    match method {
        RecoverMethod::Mld { threshold, sweeps } => {
            // Masked-Laplacian refinement with a neutral prior — identical
            // constants to the CLI `recover --method mld` path.
            refine_dc_offsets(dropped, dropped, *threshold, 5e-4, (*sweeps).max(1)).to_image()
        }
        _ => engines
            .engine(method)
            .expect("non-MLD methods are object-backed")
            .recover(dropped),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_cache_reuses_per_config() {
        let mut cache = EngineCache::new();
        assert!(cache.engine(&RecoverMethod::Tip2006).is_some());
        assert!(cache.engine(&RecoverMethod::Tip2006).is_some());
        assert!(cache.engine(&RecoverMethod::Icip).is_some());
        assert_eq!(cache.misses, 2);
        assert_eq!(cache.hits, 1);
        assert!(cache
            .engine(&RecoverMethod::Mld { threshold: 10.0, sweeps: 5 })
            .is_none());
    }

    #[test]
    fn missing_input_is_permanent() {
        let mut cache = EngineCache::new();
        let job = Job::Metrics {
            reference: "/nonexistent/ref.ppm".into(),
            test: "/nonexistent/test.ppm".into(),
        };
        let err = execute(&job, &mut cache, &Telemetry::new()).unwrap_err();
        assert_eq!(err.class, crate::job::ErrorClass::Permanent);
        assert!(err.message.contains("/nonexistent/ref.ppm"), "{}", err.message);
    }
}
