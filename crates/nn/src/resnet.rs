use dcdiff_tensor::serial::{Checkpoint, CheckpointError};
use dcdiff_tensor::{Rng, Tensor};

use crate::blocks::ResBlock;
use crate::layers::{Conv2d, Linear};
use crate::module::{scoped, Module};

/// Configuration of a small residual CNN ([`ResNet`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResNetConfig {
    /// Input image channels.
    pub in_channels: usize,
    /// Width of the first stage.
    pub base_channels: usize,
    /// Channel multiplier per stage; the input is average-pooled 2× after
    /// each stage except the last.
    pub stage_mults: Vec<usize>,
    /// Output dimension of the linear head.
    pub out_dim: usize,
}

impl Default for ResNetConfig {
    fn default() -> Self {
        Self {
            in_channels: 3,
            base_channels: 16,
            stage_mults: vec![1, 2, 4],
            out_dim: 2,
        }
    }
}

/// A compact residual CNN: conv stem, one residual block per stage with
/// 2× average pooling between stages, global average pooling and a linear
/// head.
///
/// DCDiff uses this architecture twice: as the frequency-modulation
/// parameter predictor (FMPP, §III-D — `out_dim = 2` with a sigmoid
/// applied downstream) and as the remote-sensing classifier of Table V.
/// The TII-2021 baseline's residual corrector also reuses the blocks.
#[derive(Debug)]
pub struct ResNet {
    config: ResNetConfig,
    stem: Conv2d,
    stages: Vec<ResBlock>,
    head: Linear,
}

impl ResNet {
    /// Build a ResNet from `config`.
    ///
    /// # Panics
    ///
    /// Panics if `stage_mults` is empty.
    pub fn new(config: ResNetConfig, rng: &mut Rng) -> Self {
        assert!(!config.stage_mults.is_empty(), "need at least one stage");
        let stem = Conv2d::new(config.in_channels, config.base_channels, 3, 1, 1, rng);
        let mut stages = Vec::with_capacity(config.stage_mults.len());
        let mut prev = config.base_channels;
        for &m in &config.stage_mults {
            let c = m * config.base_channels;
            stages.push(ResBlock::new(prev, c, None, rng));
            prev = c;
        }
        let head = Linear::new(prev, config.out_dim, rng);
        Self {
            config,
            stem,
            stages,
            head,
        }
    }

    /// The configuration the network was built with.
    pub fn config(&self) -> &ResNetConfig {
        &self.config
    }

    /// Forward pass: `[N, C, H, W] -> [N, out_dim]` raw scores.
    ///
    /// # Panics
    ///
    /// Panics if the spatial size is not divisible by `2^(stages-1)`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let mut h = self.stem.forward(x);
        let last = self.stages.len() - 1;
        for (i, stage) in self.stages.iter().enumerate() {
            h = stage.forward(&h, None);
            if i < last {
                h = h.avg_pool2();
            }
        }
        self.head.forward(&h.global_avg_pool())
    }
}

impl Module for ResNet {
    fn params(&self) -> Vec<Tensor> {
        let mut p = self.stem.params();
        for s in &self.stages {
            p.extend(s.params());
        }
        p.extend(self.head.params());
        p
    }

    fn save(&self, prefix: &str, ckpt: &mut Checkpoint) {
        self.stem.save(&scoped(prefix, "stem"), ckpt);
        for (i, s) in self.stages.iter().enumerate() {
            s.save(&scoped(prefix, &format!("stage{i}")), ckpt);
        }
        self.head.save(&scoped(prefix, "head"), ckpt);
    }

    fn load(&self, prefix: &str, ckpt: &Checkpoint) -> Result<(), CheckpointError> {
        self.stem.load(&scoped(prefix, "stem"), ckpt)?;
        for (i, s) in self.stages.iter().enumerate() {
            s.load(&scoped(prefix, &format!("stage{i}")), ckpt)?;
        }
        self.head.load(&scoped(prefix, "head"), ckpt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcdiff_tensor::optim::Adam;
    use dcdiff_tensor::seeded_rng;

    fn tiny() -> ResNetConfig {
        ResNetConfig {
            in_channels: 1,
            base_channels: 8,
            stage_mults: vec![1, 2],
            out_dim: 2,
        }
    }

    #[test]
    fn forward_shape() {
        let mut rng = seeded_rng(0);
        let net = ResNet::new(tiny(), &mut rng);
        let x = Tensor::zeros(vec![3, 1, 8, 8]);
        assert_eq!(net.forward(&x).shape(), &[3, 2]);
    }

    #[test]
    fn learns_a_separable_toy_task() {
        // classify "bright" vs "dark" images
        let mut rng = seeded_rng(1);
        let net = ResNet::new(tiny(), &mut rng);
        let mut opt = Adam::new(net.params(), 0.01);
        for _ in 0..60 {
            let mut data = Vec::new();
            let mut labels = Vec::new();
            for i in 0..8 {
                let bright = i % 2 == 0;
                let base = if bright { 0.8 } else { -0.8 };
                for _ in 0..64 {
                    data.push(base + 0.1 * (rand::Rng::gen::<f32>(&mut rng) - 0.5));
                }
                labels.push(usize::from(bright));
            }
            let x = Tensor::from_vec(vec![8, 1, 8, 8], data);
            opt.zero_grad();
            net.forward(&x).softmax_cross_entropy(&labels).backward();
            opt.step();
        }
        // evaluate
        let mut correct = 0;
        for case in 0..10 {
            let bright = case % 2 == 0;
            let base = if bright { 0.8 } else { -0.8 };
            let x = Tensor::from_vec(vec![1, 1, 8, 8], vec![base; 64]);
            let scores = net.forward(&x).to_vec();
            let pred = usize::from(scores[1] > scores[0]);
            if pred == usize::from(bright) {
                correct += 1;
            }
        }
        assert!(correct >= 9, "resnet failed to learn toy task: {correct}/10");
    }

    #[test]
    fn checkpoint_round_trip_preserves_outputs() {
        let mut rng = seeded_rng(2);
        let n1 = ResNet::new(tiny(), &mut rng);
        let n2 = ResNet::new(tiny(), &mut rng);
        let mut ckpt = Checkpoint::new();
        n1.save("net", &mut ckpt);
        n2.load("net", &ckpt).unwrap();
        let x = Tensor::randn(vec![2, 1, 8, 8], 1.0, &mut rng);
        assert_eq!(n1.forward(&x).to_vec(), n2.forward(&x).to_vec());
    }
}
