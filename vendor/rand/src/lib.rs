//! Vendored, std-only stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, implementing exactly the API subset the DCDiff workspace uses:
//!
//! * [`Rng`] — `gen`, `gen_range`, `gen_bool`
//! * [`SeedableRng`] — `seed_from_u64`
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator
//! * [`seq::SliceRandom`] — `shuffle`, `choose`
//!
//! The build container has no registry access, so the workspace vendors this
//! shim instead of the real crate. The generator is **not** the same stream
//! as upstream `StdRng` (which is ChaCha12); everything in the workspace only
//! relies on per-seed determinism, never on a specific stream.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of a primitive type from the standard distribution
    /// (uniform over the type's range; floats uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seeding support, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1) with full mantissa coverage.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via SplitMix64.
    ///
    /// Drop-in for the upstream `StdRng` type name; the stream differs from
    /// upstream (documented at the crate level).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the recommended xoshiro seeding procedure.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.

    use super::RngCore;

    /// Slice shuffling and choice, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly pick a reference to one element (`None` when empty).
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&f), "{f}");
            let d = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&d), "{d}");
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..6);
            assert!((3..6).contains(&v));
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "{hits}");
    }
}
