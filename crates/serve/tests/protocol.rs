//! End-to-end protocol tests for `dcdiff serve`: happy-path recovery,
//! content negotiation, admission control, fairness, drain, and the
//! untrusted-bytes edge cases (truncated bodies, oversized payloads,
//! malformed requests, abrupt disconnects).
//!
//! Every server binds `127.0.0.1:0` with its own spool directory, so the
//! tests run in parallel. Deterministic load is produced with the
//! `x-ingest-stall-ms` fault-injection header instead of timing guesses.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use dcdiff_image::{Image, Plane};
use dcdiff_jpeg::{encode_coefficients, DcDropMode, JpegEncoder};
use dcdiff_runtime::{RecoverMethod, RuntimeConfig};
use dcdiff_serve::{Client, DeadlineClass, ServeConfig, Server};

/// A DC-dropped JPEG stream of a smooth gradient, the canonical DCDiff
/// receiver input.
fn dropped_jpeg(width: usize, height: usize) -> Vec<u8> {
    let plane = Plane::from_fn(width, height, |x, y| {
        64.0 + (x as f32 / width.max(1) as f32) * 96.0 + (y as f32 / height.max(1) as f32) * 48.0
    });
    let image = Image::from_gray(plane);
    let coeffs = JpegEncoder::new(75)
        .to_coefficients(&image)
        .drop_dc(DcDropMode::KeepCorners);
    encode_coefficients(&coeffs).expect("encode test stream")
}

fn test_config(tag: &str) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        spool_dir: std::env::temp_dir()
            .join(format!("dcdiff-serve-test-{tag}-{}", std::process::id())),
        runtime: RuntimeConfig {
            workers: 1,
            queue_cap: 8,
            ..RuntimeConfig::default()
        },
        // Fast deterministic method; MLD sweep counts are a latency knob
        // the bench exercises, not these protocol tests.
        method: RecoverMethod::Tip2006,
        ..ServeConfig::default()
    }
}

fn start(tag: &str) -> (Server, Client) {
    start_with(test_config(tag))
}

/// Tests that install the process-wide telemetry handle must not overlap:
/// per-DDIM-step and cohort telemetry flow through the global handle, and a
/// concurrent install would siphon another test's spans into the wrong sink.
static GLOBAL_TELEMETRY: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn start_with(cfg: ServeConfig) -> (Server, Client) {
    let server = Server::bind(cfg).expect("bind loopback server");
    let client = Client::new(server.local_addr().to_string());
    (server, client)
}

#[test]
fn recover_roundtrip_full_image_and_dc_plane() {
    let (server, client) = start("roundtrip");
    let jpeg = dropped_jpeg(64, 48);

    let full = client.recover(&jpeg, None, false).expect("full roundtrip");
    assert_eq!(full.status, 200, "body: {:?}", String::from_utf8_lossy(&full.body));
    assert_eq!(full.header("content-type"), Some("image/x-portable-pixmap"));
    assert_eq!(full.body.get(..2), Some(&b"P6"[..]));

    let plane = client.recover(&jpeg, Some("interactive"), true).expect("dc-plane roundtrip");
    assert_eq!(plane.status, 200);
    assert_eq!(plane.header("content-type"), Some("image/x-portable-graymap"));
    // 64x48 → 8x6 blocks.
    assert_eq!(plane.body.get(..10), Some(&b"P5\n8 6\n255"[..]));
    assert!(plane.body.len() < full.body.len());

    let health = client.get("/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    let metrics = client.get("/metrics").expect("metrics");
    let text = String::from_utf8_lossy(&metrics.body).into_owned();
    assert!(text.contains("serve.accepted"), "metrics: {text}");
    assert!(text.contains("serve.request_wall_us"), "metrics: {text}");

    let report = server.drain();
    let stats = report.stats.expect("runtime stats");
    assert_eq!(stats.completed, 2);
    assert_eq!(report.abandoned_connections, 0);
}

#[test]
fn rejects_bad_requests_without_dying() {
    let (server, client) = start("badreq");
    let addr = server.local_addr();

    // Not a JPEG: no SOI marker.
    let resp = client.recover(b"plain text", None, false).expect("non-jpeg send");
    assert_eq!(resp.status, 422);
    // Unknown deadline class.
    let resp = client.recover(&dropped_jpeg(16, 16), Some("warp-speed"), false).expect("class send");
    assert_eq!(resp.status, 400);
    // Unknown endpoint.
    assert_eq!(client.get("/nope").expect("404 get").status, 404);

    // Oversized payload is refused from the Content-Length alone — the
    // connection never uploads the body (MAX_DECODE_PIXELS-style guard).
    let mut raw = TcpStream::connect(addr).expect("connect");
    raw.write_all(b"POST /recover HTTP/1.1\r\ncontent-length: 999999999\r\n\r\n")
        .expect("send oversized head");
    let mut buf = Vec::new();
    raw.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    let _ = raw.read_to_end(&mut buf);
    let text = String::from_utf8_lossy(&buf).into_owned();
    assert!(text.starts_with("HTTP/1.1 413"), "got: {text}");

    // Missing Content-Length entirely.
    let mut raw = TcpStream::connect(addr).expect("connect");
    raw.write_all(b"POST /recover HTTP/1.1\r\n\r\n").expect("send bare head");
    let mut buf = Vec::new();
    raw.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    let _ = raw.read_to_end(&mut buf);
    let text = String::from_utf8_lossy(&buf).into_owned();
    assert!(text.starts_with("HTTP/1.1 411"), "got: {text}");

    // Garbage request line.
    let mut raw = TcpStream::connect(addr).expect("connect");
    raw.write_all(b"NONSENSE\r\n\r\n").expect("send garbage");
    let mut buf = Vec::new();
    raw.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    let _ = raw.read_to_end(&mut buf);
    let text = String::from_utf8_lossy(&buf).into_owned();
    assert!(text.starts_with("HTTP/1.1 400"), "got: {text}");

    // After all that abuse the server still serves.
    assert_eq!(client.get("/healthz").expect("healthz").status, 200);
    let report = server.drain();
    assert_eq!(report.stats.expect("stats").submitted, 0, "nothing reached the queue");
}

#[test]
fn truncated_body_drops_the_connection_only() {
    let (server, client) = start("truncated");

    let mut raw = TcpStream::connect(server.local_addr()).expect("connect");
    raw.write_all(b"POST /recover HTTP/1.1\r\ncontent-length: 4096\r\n\r\n\xFF\xD8just-a-stub")
        .expect("send partial body");
    raw.shutdown(std::net::Shutdown::Write).expect("half-close");
    let mut buf = Vec::new();
    raw.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    let _ = raw.read_to_end(&mut buf);
    // No response is owed for a request that never finished arriving.
    assert!(buf.is_empty(), "unexpected response: {:?}", String::from_utf8_lossy(&buf));

    // The failure was contained to that connection.
    assert_eq!(client.get("/healthz").expect("healthz").status, 200);
    let metrics = String::from_utf8_lossy(&client.get("/metrics").expect("metrics").body).into_owned();
    assert!(metrics.contains("serve.disconnects"), "metrics: {metrics}");
    server.drain();
}

#[test]
fn client_disconnect_mid_response_is_survivable() {
    let (server, client) = start("disconnect");
    let jpeg = dropped_jpeg(32, 32);

    // Fire a valid slow request and slam the connection shut immediately.
    let mut raw = TcpStream::connect(server.local_addr()).expect("connect");
    let head = format!(
        "POST /recover HTTP/1.1\r\ncontent-length: {}\r\nx-ingest-stall-ms: 300\r\nx-deadline-class: bulk\r\n\r\n",
        jpeg.len()
    );
    raw.write_all(head.as_bytes()).expect("send head");
    raw.write_all(&jpeg).expect("send body");
    drop(raw);

    // The job still runs to completion; the server shrugs off the dead
    // socket and keeps serving.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let metrics = String::from_utf8_lossy(&client.get("/metrics").expect("metrics").body).into_owned();
        if metrics.contains("serve.completed") || metrics.contains("serve.disconnects") {
            break;
        }
        assert!(Instant::now() < deadline, "job never finished: {metrics}");
        std::thread::sleep(Duration::from_millis(50));
    }
    assert_eq!(client.get("/healthz").expect("healthz").status, 200);
    let report = server.drain();
    assert_eq!(report.stats.expect("stats").submitted, 1);
}

#[test]
fn fairness_cap_rejects_the_over_quota_client() {
    let mut cfg = test_config("fairness");
    cfg.per_client_inflight = 1;
    let (server, client) = start_with(cfg);
    let jpeg = dropped_jpeg(16, 16);

    // First request parks in ingest for 1.5 s, holding its fairness slot.
    let slow_client = client.clone();
    let slow_jpeg = jpeg.clone();
    let slow = std::thread::spawn(move || {
        slow_client.recover_opts(&slow_jpeg, Some("bulk"), false, Some(Duration::from_millis(1500)))
    });
    std::thread::sleep(Duration::from_millis(400));

    // Same peer IP, second connection: over the in-flight cap.
    let rejected = client.recover(&jpeg, Some("bulk"), false).expect("second request");
    assert_eq!(rejected.status, 429, "body: {:?}", String::from_utf8_lossy(&rejected.body));

    let first = slow.join().expect("slow thread").expect("slow roundtrip");
    assert_eq!(first.status, 200);

    // With the slot released, the same client is admitted again.
    let after = client.recover(&jpeg, Some("bulk"), false).expect("third request");
    assert_eq!(after.status, 200);

    let metrics = String::from_utf8_lossy(&client.get("/metrics").expect("metrics").body).into_owned();
    assert!(metrics.contains("serve.fairness_reject"), "metrics: {metrics}");
    server.drain();
}

#[test]
fn overload_sheds_bulk_before_interactive() {
    let mut cfg = test_config("shed");
    cfg.runtime.queue_cap = 4;
    cfg.per_client_inflight = 16;
    cfg.classes = DeadlineClass::default_ladder();
    let (server, client) = start_with(cfg);
    let jpeg = dropped_jpeg(16, 16);

    // Occupy the single worker, then pack the queue to depth 2 with
    // stalled bulk jobs (bulk admits while depth < ceil(0.5·4) = 2).
    let stall = Some(Duration::from_millis(1200));
    let mut in_flight = Vec::new();
    for _ in 0..3 {
        let c = client.clone();
        let j = jpeg.clone();
        in_flight.push(std::thread::spawn(move || {
            c.recover_opts(&j, Some("bulk"), false, Some(Duration::from_millis(1200)))
        }));
        // Serialise admissions so exactly one is executing and two queue.
        std::thread::sleep(Duration::from_millis(300));
    }

    // Queue depth is now 2: bulk is shed, interactive is still admitted.
    let shed = client.recover_opts(&jpeg, Some("bulk"), false, stall).expect("bulk send");
    assert_eq!(shed.status, 503, "body: {:?}", String::from_utf8_lossy(&shed.body));
    let vip = client.recover_opts(&jpeg, Some("interactive"), false, None);
    // The interactive request is *admitted* (not shed); depending on how
    // long it waited behind the stalled bulk jobs it either completed or
    // hit its own deadline — both are post-admission outcomes.
    let vip = vip.expect("interactive send");
    assert!(
        vip.status == 200 || vip.status == 504,
        "interactive was shed: {} {:?}",
        vip.status,
        String::from_utf8_lossy(&vip.body)
    );

    for t in in_flight {
        let resp = t.join().expect("bulk thread").expect("bulk roundtrip");
        assert_eq!(resp.status, 200, "admitted bulk jobs all complete");
    }

    let metrics = String::from_utf8_lossy(&client.get("/metrics").expect("metrics").body).into_owned();
    assert!(metrics.contains("serve.class.bulk.shed"), "metrics: {metrics}");
    assert!(metrics.contains("serve.class.bulk.admitted"), "metrics: {metrics}");
    server.drain();
}

#[test]
fn drain_completes_in_flight_and_refuses_new_work() {
    let (server, client) = start("drain");
    let jpeg = dropped_jpeg(32, 32);

    // One admitted request that will still be executing when drain starts.
    let slow_client = client.clone();
    let slow_jpeg = jpeg.clone();
    let in_flight = std::thread::spawn(move || {
        slow_client.recover_opts(&slow_jpeg, Some("bulk"), false, Some(Duration::from_millis(1000)))
    });
    std::thread::sleep(Duration::from_millis(300));

    // Trigger drain over the wire.
    let accepted = client.drain().expect("drain request");
    assert_eq!(accepted.status, 202);

    // New work is refused from this point on: either the request is
    // answered 503 (handler saw the flag) or the acceptor is already gone
    // (connection refused).
    if let Ok(resp) = client.recover(&jpeg, None, false) {
        assert_eq!(resp.status, 503, "draining server admitted new work");
    }

    // The admitted request is still owed (and gets) its response.
    let first = in_flight.join().expect("in-flight thread").expect("in-flight roundtrip");
    assert_eq!(first.status, 200, "drain lost an admitted response");

    let report = server.drain();
    let stats = report.stats.expect("stats");
    assert_eq!(stats.completed, 1);
    assert_eq!(report.abandoned_connections, 0);
}

#[test]
fn supplied_trace_id_links_server_side_spans_end_to_end() {
    // The full tentpole chain: a caller-supplied `traceparent` must (a) be
    // echoed back as `x-dcdiff-trace-id` with a Server-Timing breakdown and
    // (b) stamp every server-side span — queue wait, recovery, and the
    // diffusion sampler's per-DDIM-step spans — with the same trace id.
    let _global = GLOBAL_TELEMETRY.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let tel = dcdiff_telemetry::Telemetry::builder().trace_to_vec().build();
    // Per-DDIM-step spans flow through the process-wide handle.
    dcdiff_telemetry::install(tel.clone());
    let mut cfg = test_config("traceprop");
    cfg.method = RecoverMethod::Diffusion { ddim_steps: 2 };
    let server = Server::bind_with(cfg, tel.clone()).expect("bind loopback server");
    let client = Client::new(server.local_addr().to_string());

    let trace_id = "0af7651916cd43dd8448eb211c80319c";
    let traceparent = format!("00-{trace_id}-b7ad6b7169203331-01");
    let jpeg = dropped_jpeg(32, 32);
    let resp = client
        .recover_traced(&jpeg, Some("bulk"), &traceparent)
        .expect("traced roundtrip");
    assert_eq!(resp.status, 200, "body: {:?}", String::from_utf8_lossy(&resp.body));
    assert_eq!(resp.header("x-dcdiff-trace-id"), Some(trace_id));
    let timing = resp.header("server-timing").expect("server-timing header");
    assert!(timing.contains("queue;dur="), "timing: {timing}");
    assert!(timing.contains("exec;dur="), "timing: {timing}");
    assert!(timing.contains("total;dur="), "timing: {timing}");

    server.drain();
    dcdiff_telemetry::install(dcdiff_telemetry::Telemetry::new());
    let text = tel.take_trace_vec().expect("in-memory trace");
    let traced: Vec<_> = text
        .lines()
        .filter_map(|l| dcdiff_telemetry::TraceEvent::parse_line(l).ok())
        .filter(|ev| ev.trace.as_deref() == Some(trace_id))
        .collect();
    let has = |name: &str| traced.iter().any(|ev| ev.name == name);
    assert!(has("serve.request"), "trace: {text}");
    assert!(has("queue.wait"), "trace: {text}");
    assert!(has("recover.estimate"), "trace: {text}");
    assert!(has("recover.ddim_step"), "trace: {text}");
    // Spans outside this request (acceptor reads, drain) never carry it.
    assert!(
        !text
            .lines()
            .filter(|l| l.contains("serve.drain"))
            .any(|l| l.contains(trace_id)),
        "drain span stole the request trace: {text}"
    );
}

#[test]
fn concurrent_diffusion_requests_fuse_into_one_cohort_with_linked_traces() {
    // Satellite of the cross-request DDIM batching tentpole: N concurrent
    // `--method diffusion` requests behind a stalled leader must (a) fuse
    // into one cohort — `diffusion.batch.width` observes more than one lane
    // per shared forward — and (b) keep distinct causal chains: every
    // request's trace id still links `serve.request` through `queue.wait`,
    // `recover.estimate` and its own per-DDIM-step spans.
    let _global = GLOBAL_TELEMETRY.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let tel = dcdiff_telemetry::Telemetry::builder().trace_to_vec().build();
    dcdiff_telemetry::install(tel.clone());
    let mut cfg = test_config("cohort");
    cfg.method = RecoverMethod::Diffusion { ddim_steps: 2 };
    cfg.runtime.diffusion_batch_width = 8;
    let server = Server::bind_with(cfg, tel.clone()).expect("bind loopback server");
    let addr = server.local_addr().to_string();

    // The leader parks the lone worker in its ingest stall; the followers
    // queue behind it and are assembled into one micro-batch when the
    // worker next pops, then fused into a single DDIM cohort.
    let leader_addr = addr.clone();
    let leader = std::thread::spawn(move || {
        Client::new(leader_addr)
            .recover_opts(
                &dropped_jpeg(32, 32),
                Some("bulk"),
                false,
                Some(Duration::from_millis(600)),
            )
            .expect("leader roundtrip")
    });
    // Let the worker pop the leader before the burst arrives.
    std::thread::sleep(Duration::from_millis(150));
    let trace_ids: Vec<String> =
        (0..3u64).map(|i| format!("{:032x}", 0xc0_4042_7000 + i)).collect();
    let followers: Vec<_> = trace_ids
        .iter()
        .map(|tid| {
            let addr = addr.clone();
            let traceparent = format!("00-{tid}-00f067aa0ba902b7-01");
            std::thread::spawn(move || {
                Client::new(addr)
                    .recover_traced(&dropped_jpeg(32, 32), Some("bulk"), &traceparent)
                    .expect("follower roundtrip")
            })
        })
        .collect();

    let leader_resp = leader.join().expect("leader thread");
    assert_eq!(leader_resp.status, 200);
    for (tid, follower) in trace_ids.iter().zip(followers) {
        let resp = follower.join().expect("follower thread");
        assert_eq!(resp.status, 200, "body: {:?}", String::from_utf8_lossy(&resp.body));
        assert_eq!(resp.header("x-dcdiff-trace-id"), Some(tid.as_str()));
    }
    server.drain();
    dcdiff_telemetry::install(dcdiff_telemetry::Telemetry::new());

    // (a) the followers shared forwards: multi-lane widths were observed.
    let widths = tel.histogram("diffusion.batch.width").snapshot();
    assert!(widths.max >= 2, "no shared forward carried more than one lane: {widths:?}");
    assert!(tel.counter("diffusion.batch.cohorts").get() >= 1, "no cohort was formed");

    // (b) per-lane causal chains survive fusion.
    let text = tel.take_trace_vec().expect("in-memory trace");
    for tid in &trace_ids {
        let lane: Vec<_> = text
            .lines()
            .filter_map(|l| dcdiff_telemetry::TraceEvent::parse_line(l).ok())
            .filter(|ev| ev.trace.as_deref() == Some(tid.as_str()))
            .collect();
        let has = |name: &str| lane.iter().any(|ev| ev.name == name);
        assert!(has("serve.request"), "lane {tid} lost serve.request");
        assert!(has("queue.wait"), "lane {tid} lost queue.wait");
        assert!(has("recover.estimate"), "lane {tid} lost recover.estimate");
        assert!(has("recover.ddim_step"), "lane {tid} lost its per-step spans");
    }
}

#[test]
fn prometheus_exposition_windows_diverge_from_cumulative_after_burst() {
    let mut cfg = test_config("promwin");
    cfg.metrics_epoch = Duration::from_millis(50);
    cfg.metrics_windows = vec![Duration::from_millis(300)];
    let (server, client) = start_with(cfg);
    let jpeg = dropped_jpeg(16, 16);

    // Slow phase: requests whose ingest stall dominates the wall clock.
    // Three of them keep the fractional-rank p99 inside the slow bucket
    // even as later scrapes add fast `/metrics` samples to the histogram.
    for _ in 0..3 {
        let slow = client
            .recover_opts(&jpeg, Some("bulk"), false, Some(Duration::from_millis(400)))
            .expect("slow roundtrip");
        assert_eq!(slow.status, 200);
    }

    // Let the slow sample age out of the 300 ms window, then burst.
    std::thread::sleep(Duration::from_millis(450));
    for _ in 0..10 {
        let fast = client.recover(&jpeg, Some("bulk"), false).expect("fast roundtrip");
        assert_eq!(fast.status, 200);
    }

    // JSON stays the default exposition.
    let json = client.get("/metrics").expect("json metrics");
    assert_eq!(json.header("content-type"), Some("application/json"));

    // The windowed p99 must eventually cover only the fast burst while the
    // cumulative p99 still remembers the 600 ms outlier.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let resp = client
            .get_with("/metrics", &[("accept", "text/plain")])
            .expect("prometheus metrics");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("content-type"), Some("text/plain; version=0.0.4"));
        let text = String::from_utf8_lossy(&resp.body).into_owned();
        let samples = dcdiff_telemetry::prometheus::parse(&text).expect("exposition parses");
        let p99 = |window: Option<&str>| {
            samples
                .iter()
                .find(|s| {
                    s.name == "serve_request_wall_us"
                        && s.label("quantile") == Some("0.99")
                        && s.label("window") == window
                })
                .map(|s| s.value)
        };
        let cumulative = p99(None).expect("cumulative p99 present");
        // The slow request alone guarantees a large cumulative p99.
        assert!(cumulative > 100_000.0, "cumulative p99 {cumulative}");
        if let Some(windowed) = p99(Some("300ms")) {
            if windowed > 0.0 && windowed * 4.0 < cumulative {
                break; // window sees only the fast burst
            }
        }
        assert!(
            Instant::now() < deadline,
            "windowed p99 never diverged from cumulative: {text}"
        );
        std::thread::sleep(Duration::from_millis(60));
    }
    server.drain();
}

#[test]
fn default_ladder_class_series_resolve_in_the_name_registry() {
    // Every dynamic `serve.class.<c>.*` series the server can emit for the
    // default ladder must resolve against the telemetry name registry.
    use dcdiff_telemetry::names;
    for class in DeadlineClass::default_ladder() {
        let shed = names::class_shed_counter(&class.name);
        let admitted = names::class_admitted_counter(&class.name);
        assert!(names::is_registered(&shed), "{shed} not registered");
        assert!(names::is_registered(&admitted), "{admitted} not registered");
    }
}

#[test]
fn keep_alive_serves_sequential_requests_on_one_connection() {
    let (server, client) = start("keepalive");

    let mut raw = TcpStream::connect(server.local_addr()).expect("connect");
    raw.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    for _ in 0..3 {
        raw.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").expect("send");
        let mut buf = [0u8; 512];
        let mut got = Vec::new();
        // Read until the body 'ok\n' arrives (head + 3 bytes).
        while !got.ends_with(b"ok\n") {
            let n = raw.read(&mut buf).expect("read keep-alive response");
            assert!(n > 0, "connection closed between keep-alive requests");
            got.extend_from_slice(&buf[..n]);
        }
        let text = String::from_utf8_lossy(&got).into_owned();
        assert!(text.starts_with("HTTP/1.1 200"), "got: {text}");
        assert!(text.contains("connection: keep-alive"), "got: {text}");
    }
    drop(raw);
    assert_eq!(client.get("/healthz").expect("healthz").status, 200);
    server.drain();
}
