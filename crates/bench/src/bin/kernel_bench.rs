//! Benchmark of the `dcdiff-tensor` kernel layer: naive vs blocked vs
//! threaded GEMM, plus the rewritten batched conv2d, on the shapes the
//! DCDiff recover path actually executes (stage-1 encoder/decoder convs at
//! image resolution, U-Net convs and attention products at latent
//! resolution).
//!
//! Usage: `cargo run --release -p dcdiff-bench --bin kernel_bench`
//!
//! Writes `BENCH_kernels.json` to the current directory, embedding the
//! kernel configuration (thread budget, block sizes) so speedups stay
//! attributable across machines. Asserts the blocking/packing win on the
//! largest recover-path GEMM shape unconditionally and the 2-thread
//! scaling only on multi-core hosts.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

use dcdiff_data::DatasetProfile;
use dcdiff_image::ycbcr_to_rgb_rows;
use dcdiff_jpeg::bitstream::{BitReader, BitWriter};
use dcdiff_jpeg::dct::idct;
use dcdiff_jpeg::huffman::HuffmanTable;
use dcdiff_jpeg::simd::{self, Tier};
use dcdiff_jpeg::{JpegDecoder, JpegEncoder, BLOCK_AREA};
use dcdiff_tensor::kernels::{
    gemm_naive, hgemm_info, hgemm_with_threads, set_threads, sgemm_with_threads, KernelConfig,
    Trans,
};
use dcdiff_tensor::Tensor;

/// One GEMM shape from the recover path: `C[m,n] += A[m,k] * B[k,n]`.
struct GemmShape {
    name: &'static str,
    m: usize,
    k: usize,
    n: usize,
}

/// Recover-path GEMM shapes. Convolutions run as rows-layout im2col
/// products `[N*ho*wo, C*kh*kw] x [C*kh*kw, O]`; attention as
/// `[hw, c] x [c, hw]` per sample.
const GEMM_SHAPES: &[GemmShape] = &[
    // stage-1 AC encoder 3x3 conv, 32 channels at 64x64 (the largest
    // single GEMM a recover call issues)
    GemmShape { name: "stage1_conv3x3_c32_64x64", m: 4096, k: 288, n: 32 },
    // same layer's input-gradient product (training path)
    GemmShape { name: "stage1_conv_dx_c32_64x64", m: 4096, k: 32, n: 288 },
    // U-Net level-0 3x3 conv at 12x12 latent, 16 channels
    GemmShape { name: "unet_l0_conv3x3_c16_12x12", m: 144, k: 144, n: 16 },
    // U-Net level-1 3x3 conv at 6x6 latent, 32 channels
    GemmShape { name: "unet_l1_conv3x3_c32_6x6", m: 36, k: 288, n: 32 },
    // bottleneck attention q·kᵀ over 144 latent tokens
    GemmShape { name: "unet_attn_qk_hw144_c32", m: 144, k: 32, n: 144 },
    // square reference point for cross-machine comparison
    GemmShape { name: "square_256", m: 256, k: 256, n: 256 },
];

fn pattern(len: usize, seed: f32) -> Vec<f32> {
    (0..len).map(|i| ((i as f32) * 0.137 + seed).sin()).collect()
}

/// Best-of timing: run `f` until `budget` elapses (at least `min_reps`
/// times) and report the fastest single run.
fn best_time(budget: Duration, min_reps: usize, mut f: impl FnMut()) -> Duration {
    let mut best = Duration::MAX;
    let mut reps = 0usize;
    let start = Instant::now();
    while reps < min_reps || start.elapsed() < budget {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed());
        reps += 1;
        if reps > 10_000 {
            break;
        }
    }
    best
}

fn gflops(flops: usize, t: Duration) -> f64 {
    flops as f64 / t.as_secs_f64() / 1e9
}

struct GemmResult {
    name: &'static str,
    m: usize,
    k: usize,
    n: usize,
    naive_gflops: f64,
    blocked_gflops: f64,
    threaded_gflops: Vec<(usize, f64)>,
    blocked_speedup: f64,
}

fn bench_gemm(shape: &GemmShape, threads: &[usize], budget: Duration) -> GemmResult {
    let GemmShape { name, m, k, n } = *shape;
    let a = pattern(m * k, 1.0);
    let b = pattern(k * n, 2.0);
    let mut c = vec![0.0f32; m * n];
    let flops = 2 * m * k * n;

    let naive = best_time(budget, 3, || {
        c.iter_mut().for_each(|v| *v = 0.0);
        gemm_naive(m, k, n, &a, &b, &mut c);
    });
    let blocked = best_time(budget, 3, || {
        c.iter_mut().for_each(|v| *v = 0.0);
        sgemm_with_threads(1, Trans::N, Trans::N, m, k, n, &a, &b, &mut c);
    });
    let mut threaded = Vec::new();
    for &t in threads {
        let timed = best_time(budget, 3, || {
            c.iter_mut().for_each(|v| *v = 0.0);
            sgemm_with_threads(t, Trans::N, Trans::N, m, k, n, &a, &b, &mut c);
        });
        threaded.push((t, gflops(flops, timed)));
    }
    GemmResult {
        name,
        m,
        k,
        n,
        naive_gflops: gflops(flops, naive),
        blocked_gflops: gflops(flops, blocked),
        threaded_gflops: threaded,
        blocked_speedup: naive.as_secs_f64() / blocked.as_secs_f64(),
    }
}

struct ConvResult {
    name: &'static str,
    desc: String,
    single_ms: f64,
    threaded_ms: f64,
    flops: usize,
}

/// Time the rewritten `Tensor::conv2d` forward at 1 thread and at the full
/// budget (the tensor op picks up the globally configured thread count).
#[allow(clippy::too_many_arguments)]
fn bench_conv(
    name: &'static str,
    nb: usize,
    cin: usize,
    h: usize,
    w: usize,
    co: usize,
    ks: usize,
    pad: usize,
    max_threads: usize,
    budget: Duration,
) -> ConvResult {
    let x = Tensor::from_vec(vec![nb, cin, h, w], pattern(nb * cin * h * w, 0.3));
    let wt = Tensor::from_vec(vec![co, cin, ks, ks], pattern(co * cin * ks * ks, 0.7));
    set_threads(1);
    let single = best_time(budget, 3, || {
        let _ = x.conv2d(&wt, 1, pad);
    });
    set_threads(max_threads);
    let threaded = best_time(budget, 3, || {
        let _ = x.conv2d(&wt, 1, pad);
    });
    let flops = 2 * nb * co * cin * ks * ks * h * w; // stride 1, same padding
    ConvResult {
        name,
        desc: format!("{nb}x{cin}x{h}x{w} -> {co} ch, {ks}x{ks} pad {pad}"),
        single_ms: single.as_secs_f64() * 1e3,
        threaded_ms: threaded.as_secs_f64() * 1e3,
        flops,
    }
}

/// One decode-path stage timed at the forced-scalar reference tier and at
/// the runtime-dispatched tier, reported as input MB/s.
struct DecodeResult {
    name: &'static str,
    bytes: usize,
    scalar_mbps: f64,
    simd_mbps: f64,
    simd_speedup: f64,
}

fn mbps(bytes: usize, t: Duration) -> f64 {
    bytes as f64 / t.as_secs_f64() / 1e6
}

/// Time `f` with the scalar reference pipeline pinned via
/// [`simd::force_scalar`] and again with runtime dispatch, normalising to
/// MB/s over `bytes` of input consumed per run. Leaves dispatch unpinned.
fn bench_decode_stage(
    name: &'static str,
    bytes: usize,
    budget: Duration,
    mut f: impl FnMut(),
) -> DecodeResult {
    simd::force_scalar(true);
    let scalar = best_time(budget, 3, &mut f);
    simd::force_scalar(false);
    let dispatched = best_time(budget, 3, &mut f);
    DecodeResult {
        name,
        bytes,
        scalar_mbps: mbps(bytes, scalar),
        simd_mbps: mbps(bytes, dispatched),
        simd_speedup: scalar.as_secs_f64() / dispatched.as_secs_f64(),
    }
}

/// The decode hot path, stage by stage plus end to end: entropy decode
/// (bitwise vs table-accelerated), the 8x8 iDCT, planar colour
/// conversion, and a full `JpegDecoder::decode` of a Kodak-profile image.
fn bench_decode(budget: Duration) -> Vec<DecodeResult> {
    let mut results = Vec::new();

    // Entropy: a long AC-luma symbol stream with Kraft-weighted symbol
    // frequencies (each code drawn proportional to 2^-len, the implied
    // probability a canonical Huffman code assigns it), deterministically
    // shuffled so the decoder sees a realistic short-code-dominated mix
    // rather than a uniform sweep of the 16-bit tail symbols.
    let table = HuffmanTable::ac_luma();
    let mut syms: Vec<u8> = Vec::new();
    for &v in table.vals() {
        let reps = ((1usize << 16) >> table.code_len(v)).max(1);
        syms.extend(std::iter::repeat_n(v, reps));
    }
    let mut state = 0x243F_6A88u32;
    for i in (1..syms.len()).rev() {
        state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        syms.swap(i, (state as usize) % (i + 1));
    }
    let mut writer = BitWriter::new();
    for &v in &syms {
        table.encode(&mut writer, v);
    }
    let stream = writer.finish();
    let stream_bytes = stream.len();
    results.push(bench_decode_stage("huffman_ac_stream", stream_bytes, budget, || {
        let mut reader = BitReader::new(&stream);
        let mut n = 0usize;
        while let Some(sym) = table.decode(&mut reader) {
            n += 1;
            black_box(sym);
        }
        black_box(n);
    }));

    // iDCT: a working set of dequantised coefficient blocks.
    let blocks: Vec<[f32; BLOCK_AREA]> = (0..2048)
        .map(|i| {
            let mut block = [0.0f32; BLOCK_AREA];
            block.copy_from_slice(&pattern(BLOCK_AREA, i as f32 * 0.61));
            block
        })
        .collect();
    let block_bytes = blocks.len() * BLOCK_AREA * 4;
    results.push(bench_decode_stage("idct_8x8", block_bytes, budget, || {
        for block in &blocks {
            black_box(idct(block));
        }
    }));

    // Colour conversion: planar YCbCr rows the size of a 256x256 plane.
    let n = 1 << 16;
    let y = pattern(n, 0.1);
    let cb = pattern(n, 0.2);
    let cr = pattern(n, 0.3);
    let (mut r, mut g, mut b) = (vec![0.0f32; n], vec![0.0f32; n], vec![0.0f32; n]);
    let row_bytes = 3 * n * 4;
    results.push(bench_decode_stage("ycbcr_to_rgb_rows", row_bytes, budget, || {
        ycbcr_to_rgb_rows(&y, &cb, &cr, &mut r, &mut g, &mut b);
        black_box(&r);
    }));

    // End to end: entropy -> dequant -> iDCT -> colour on a coded image.
    // A large texture-heavy scene keeps real entropy work in the stream
    // and amortises the per-call plane allocations the tiny dataset
    // stand-in profiles would otherwise be dominated by.
    let image =
        DatasetProfile::bsds200().with_count(1).with_dims(512, 512).generate(0x5EED).remove(0);
    let coded = JpegEncoder::new(75).encode(&image).expect("encode bench image");
    let coded_bytes = coded.len();
    results.push(bench_decode_stage("full_decode", coded_bytes, budget, || {
        black_box(JpegDecoder::decode(&coded).expect("decode bench image"));
    }));
    results
}

/// Quantised-inference GEMM: f16-storage/f32-accumulate `hgemm` against
/// the f32 `sgemm` on the same operands, both at one thread.
struct QuantResult {
    name: &'static str,
    m: usize,
    k: usize,
    n: usize,
    f32_gflops: f64,
    f16_gflops: f64,
    f16_speedup: f64,
}

fn bench_quantised(shape: &GemmShape, budget: Duration) -> QuantResult {
    let GemmShape { name, m, k, n } = *shape;
    let a = pattern(m * k, 1.0);
    let b = pattern(k * n, 2.0);
    let mut c = vec![0.0f32; m * n];
    let flops = 2 * m * k * n;
    let f32_t = best_time(budget, 3, || {
        c.iter_mut().for_each(|v| *v = 0.0);
        sgemm_with_threads(1, Trans::N, Trans::N, m, k, n, &a, &b, &mut c);
    });
    let f16_t = best_time(budget, 3, || {
        c.iter_mut().for_each(|v| *v = 0.0);
        hgemm_with_threads(1, Trans::N, Trans::N, m, k, n, &a, &b, &mut c);
    });
    QuantResult {
        name,
        m,
        k,
        n,
        f32_gflops: gflops(flops, f32_t),
        f16_gflops: gflops(flops, f16_t),
        f16_speedup: f32_t.as_secs_f64() / f16_t.as_secs_f64(),
    }
}

fn main() {
    let config = KernelConfig::current();
    let cores = config.cpu_cores;
    let max_threads = config.threads.max(cores);
    // Highest thread count first so the lazily created pool is sized for
    // the whole sweep.
    set_threads(max_threads);

    let budget = Duration::from_millis(
        std::env::args()
            .position(|a| a == "--budget-ms")
            .and_then(|i| std::env::args().nth(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(150),
    );
    println!(
        "kernel_bench: {} shapes, {cores} core(s), thread budget {max_threads}, \
         {} ms per measurement",
        GEMM_SHAPES.len(),
        budget.as_millis()
    );

    let mut thread_sweep = vec![2usize, 4, max_threads];
    thread_sweep.retain(|&t| t <= max_threads);
    thread_sweep.dedup();

    let mut results = Vec::new();
    for shape in GEMM_SHAPES {
        let r = bench_gemm(shape, &thread_sweep, budget);
        let best_threaded =
            r.threaded_gflops.iter().map(|&(_, g)| g).fold(0.0f64, f64::max);
        println!(
            "  {:<28} naive {:6.2}  blocked {:6.2}  best-threaded {:6.2} GFLOP/s  \
             (blocked/naive {:.2}x)",
            r.name, r.naive_gflops, r.blocked_gflops, best_threaded, r.blocked_speedup
        );
        results.push(r);
    }

    let convs = vec![
        bench_conv("stage1_enc_conv", 1, 32, 64, 64, 32, 3, 1, max_threads, budget),
        bench_conv("unet_l0_conv_batch4", 4, 16, 12, 12, 16, 3, 1, max_threads, budget),
    ];
    for c in &convs {
        println!(
            "  conv {:<24} 1-thread {:7.2} ms  {}-thread {:7.2} ms  ({:.2} GFLOP/s single)",
            c.name,
            c.single_ms,
            max_threads,
            c.threaded_ms,
            c.flops as f64 / (c.single_ms / 1e3) / 1e9,
        );
    }
    set_threads(max_threads);

    // Quantised inference: the three shapes that dominate recover-path
    // forwards (stage-1 im2col, U-Net im2col, square reference point).
    let quant_shapes = ["stage1_conv3x3_c32_64x64", "unet_l0_conv3x3_c16_12x12", "square_256"];
    let quantised: Vec<QuantResult> = GEMM_SHAPES
        .iter()
        .filter(|s| quant_shapes.contains(&s.name))
        .map(|s| bench_quantised(s, budget))
        .collect();
    let (f16_isa, _, _) = hgemm_info();
    for q in &quantised {
        println!(
            "  f16  {:<28} f32 {:6.2}  f16 {:6.2} GFLOP/s  (f16/f32 {:.2}x, {f16_isa})",
            q.name, q.f32_gflops, q.f16_gflops, q.f16_speedup
        );
    }

    let decode = bench_decode(budget);
    let decode_tier = simd::active();
    for d in &decode {
        println!(
            "  dec  {:<28} scalar {:8.2}  {} {:8.2} MB/s  (speedup {:.2}x)",
            d.name,
            d.scalar_mbps,
            decode_tier.name(),
            d.simd_mbps,
            d.simd_speedup
        );
    }

    // The acceptance gates: blocking must win on the largest recover-path
    // GEMM everywhere; thread scaling is only assertable with real cores.
    let largest = results
        .iter()
        .max_by_key(|r| 2 * r.m * r.k * r.n)
        .expect("nonempty shape list");
    let two_thread_speedup = largest
        .threaded_gflops
        .iter()
        .find(|&&(t, _)| t == 2)
        .map(|&(_, g)| g / largest.blocked_gflops)
        .unwrap_or(1.0);
    println!(
        "  largest shape {}: blocked/naive {:.2}x, 2-thread/blocked {:.2}x",
        largest.name, largest.blocked_speedup, two_thread_speedup
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"dcdiff-tensor blocked/threaded kernels\",");
    let _ = writeln!(json, "  \"kernel_config\": {},", config.to_json());
    let _ = writeln!(json, "  \"measurement_ms\": {},", budget.as_millis());
    let _ = writeln!(
        json,
        "  \"note\": \"GFLOP/s from best-of repeated runs; naive = seed scalar ikj GEMM with \
         zero-skip branch, blocked = packed register-tiled kernel at 1 thread, threaded = same \
         kernel sharded across the DCDIFF_THREADS pool. Shapes are the rows-layout im2col and \
         attention products the recover path issues. quantised_gemm rows time the f16-storage/\
         f32-accumulate hgemm against f32 sgemm at one thread; decode rows time the forced-scalar \
         reference pipeline against the runtime-dispatched tier as MB/s over input bytes \
         (see PERFORMANCE.md).\","
    );
    json.push_str("  \"gemm\": [\n");
    for (i, r) in results.iter().enumerate() {
        let threaded: Vec<String> = r
            .threaded_gflops
            .iter()
            .map(|(t, g)| format!("{{\"threads\": {t}, \"gflops\": {g:.3}}}"))
            .collect();
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \
             \"naive_gflops\": {:.3}, \"blocked_gflops\": {:.3}, \
             \"blocked_over_naive\": {:.3}, \"threaded\": [{}]}}{}",
            r.name,
            r.m,
            r.k,
            r.n,
            r.naive_gflops,
            r.blocked_gflops,
            r.blocked_speedup,
            threaded.join(", "),
            if i + 1 < results.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"conv2d\": [\n");
    for (i, c) in convs.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"shape\": \"{}\", \"flops\": {}, \
             \"single_thread_ms\": {:.3}, \"threaded_ms\": {:.3}}}{}",
            c.name,
            c.desc,
            c.flops,
            c.single_ms,
            c.threaded_ms,
            if i + 1 < convs.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"f16_isa\": \"{f16_isa}\",");
    json.push_str("  \"quantised_gemm\": [\n");
    for (i, q) in quantised.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \
             \"f32_gflops\": {:.3}, \"f16_gflops\": {:.3}, \"f16_speedup\": {:.3}}}{}",
            q.name,
            q.m,
            q.k,
            q.n,
            q.f32_gflops,
            q.f16_gflops,
            q.f16_speedup,
            if i + 1 < quantised.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"decode_tier\": \"{}\",", decode_tier.name());
    json.push_str("  \"decode\": [\n");
    for (i, d) in decode.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"bytes\": {}, \"scalar_mbps\": {:.3}, \
             \"simd_mbps\": {:.3}, \"simd_speedup\": {:.3}}}{}",
            d.name,
            d.bytes,
            d.scalar_mbps,
            d.simd_mbps,
            d.simd_speedup,
            if i + 1 < decode.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"largest_shape\": \"{}\",", largest.name);
    let _ = writeln!(json, "  \"blocked_over_naive_largest\": {:.3},", largest.blocked_speedup);
    let _ = writeln!(json, "  \"two_thread_over_blocked_largest\": {two_thread_speedup:.3}");
    json.push_str("}\n");
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    println!("wrote BENCH_kernels.json");

    assert!(
        largest.blocked_speedup >= 2.0,
        "blocking/packing must be >= 2x naive on {} (got {:.2}x)",
        largest.name,
        largest.blocked_speedup
    );
    if cores >= 2 {
        assert!(
            two_thread_speedup >= 1.7,
            "2-thread scaling must be >= 1.7x on multi-core hosts (got {two_thread_speedup:.2}x)"
        );
    } else {
        println!("  single-core host: skipping the 2-thread scaling assertion");
    }

    // The SIMD decode acceptance gate only holds where the AVX2 kernels
    // actually run; scalar-tier hosts see the Huffman LUT win alone.
    let full = decode
        .iter()
        .find(|d| d.name == "full_decode")
        .expect("full_decode row");
    if decode_tier == Tier::Avx2Fma {
        assert!(
            full.simd_speedup >= 2.0,
            "SIMD decode must be >= 2x the scalar pipeline on an AVX2 host (got {:.2}x)",
            full.simd_speedup
        );
    } else {
        println!("  scalar-tier host: skipping the 2x decode speedup assertion");
    }
}
