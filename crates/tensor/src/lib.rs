//! A small CPU tensor library with reverse-mode automatic differentiation.
//!
//! This crate is the neural-network substrate for the DCDiff reproduction:
//! the stage-1 autoencoder, the latent-diffusion U-Net, the FMPP predictor,
//! the TII-2021 residual baseline and the downstream classifier are all
//! trained with it. It provides:
//!
//! * [`Tensor`] — an NCHW `f32` tensor with a reverse-mode autograd tape
//!   (micrograd-style: each op records a backward closure over its parents);
//! * [`kernels`] — the blocked, register-tiled, multi-threaded GEMM and
//!   thread-pool layer every dense op dispatches to (`DCDIFF_THREADS`
//!   controls the thread budget);
//! * dense 2-D [`Tensor::matmul`] and batched im2col [`Tensor::conv2d`];
//! * activations, group normalisation, pooling, upsampling, concatenation;
//! * losses (MSE, L1, masked MSE, softmax cross-entropy);
//! * [`optim`] — SGD and Adam;
//! * [`serial`] — a simple named-tensor binary checkpoint format.
//!
//! # Example
//!
//! ```
//! use dcdiff_tensor::Tensor;
//!
//! let x = Tensor::param(vec![1], vec![3.0]);
//! let y = x.mul(&x).add(&x); // y = x^2 + x
//! y.backward();
//! assert_eq!(x.grad_vec(), vec![7.0]); // dy/dx = 2x + 1
//! ```

mod ops;
mod tensor;

pub mod gradcheck;
pub mod kernels;
pub mod optim;
pub mod serial;

pub use tensor::{no_grad, Tensor};

/// Convenience alias for the RNG used across the workspace.
pub type Rng = rand::rngs::StdRng;

/// Create the workspace-standard seeded RNG.
///
/// # Example
///
/// ```
/// use rand::Rng as _;
/// let mut rng = dcdiff_tensor::seeded_rng(7);
/// let _: f32 = rng.gen();
/// ```
pub fn seeded_rng(seed: u64) -> Rng {
    use rand::SeedableRng;
    Rng::seed_from_u64(seed)
}
