//! Synthetic image datasets standing in for the paper's test sets.
//!
//! The paper trains on 300 K OpenImages crops and evaluates on Set5,
//! Set14, Kodak, BSDS200, Urban100 and the Inria aerial benchmark — none
//! of which can be shipped here. This crate generates *procedural*
//! images whose content statistics match what each benchmark contributes
//! to the evaluation:
//!
//! | Profile | Content class | Why it matters for DC recovery |
//! |---|---|---|
//! | `set5` | large smooth regions, soft blobs | easiest case for the Laplacian prior |
//! | `set14` | mixed smooth + texture | moderate difficulty |
//! | `kodak` | natural mixtures with colour gradients | the paper's main ablation set |
//! | `bsds200` | texture-heavy scenes | many Laplacian-violating pixels |
//! | `urban100` | rectilinear structures, sharp edges | strongest error propagation for iterative methods |
//! | `inria` | aerial road/roof grids | the remote-sensing downstream domain |
//!
//! Every generator is deterministic given a seed, and the scene mix is
//! validated by tests asserting natural-image statistics (Laplacian fit
//! of adjacent-pixel differences).
//!
//! Image sizes and per-set counts are scaled down from the paper's
//! (256×256 crops) to keep the full experiment suite runnable on a
//! laptop; the scaling is recorded in `EXPERIMENTS.md`.
//!
//! # Example
//!
//! ```
//! use dcdiff_data::DatasetProfile;
//!
//! let images = DatasetProfile::set5().generate(0);
//! assert_eq!(images.len(), 5);
//! assert_eq!(images[0].dims(), (96, 96));
//! ```

mod aerial;
mod profiles;
mod scenes;

pub use aerial::{AerialClass, AerialDataset};
pub use profiles::{all_profiles, DatasetProfile};
pub use scenes::{SceneKind, SceneGenerator};
